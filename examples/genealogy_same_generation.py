"""Same-generation queries on a family tree — the canonical *many-sided* case.

Example 3.3's same-generation recursion is the paper's running example of a
recursion that is NOT one-sided:

    sg(X, Y) :- parent(X, W), parent(Y, Z), sg(W, Z).
    sg(X, Y) :- person(X), X = Y.        % here: sg0(X, Y), the identity

This example shows what the paper recommends a query processor do in that
case: the detection pipeline refuses to claim one-sidedness, and evaluation
falls back to magic sets — which the library also implements — while plain
semi-naive plus selection serves as the reference.  It also shows the paper's
closing observation: even for a two-sided recursion, a query binding *both*
columns behaves like the one-sided case because both unbounded connected sets
contain a constant.

Run with:  python examples/genealogy_same_generation.py
"""

from __future__ import annotations

from repro import answer_query, detect_one_sided, parse_program, seminaive_query
from repro.baselines import magic_query
from repro.engine import SelectionQuery
from repro.workloads import same_generation_database


def main() -> None:
    program = parse_program(
        """
        sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z).
        sg(X, Y) :- sg0(X, Y).
        """
    )
    outcome = detect_one_sided(program, "sg")
    print(f"detection: {outcome}")
    print()

    # A 4-generation family tree with 3 children per person; p(child, parent).
    database = same_generation_database(branching=3, depth=4)
    print(f"family tree: {len(database.relation('p'))} parent edges, "
          f"{len(database.relation('sg0'))} people")

    # Who is in the same generation as person 17?
    query = SelectionQuery.of("sg", 2, {0: 17})
    chosen = answer_query(program, database, query)
    reference, full_stats = seminaive_query(program, database, "sg", {0: 17})
    assert chosen.answers == reference
    print(f"sg(17, Y)? -> {len(chosen.answers)} answers via {chosen.strategy}")
    print(f"  chosen strategy examined {chosen.stats.tuples_examined} tuples; "
          f"semi-naive + select examined {full_stats.tuples_examined}")

    # The fully bound query sg(13, 17)? — both sides carry a constant, so even
    # the magic-sets evaluation touches very little of the tree.
    bound_both = magic_query(program, database, SelectionQuery.of("sg", 2, {0: 13, 1: 17}))
    print(f"sg(13, 17)? -> {sorted(bound_both.answers)} via {bound_both.strategy}, "
          f"examined {bound_both.stats.tuples_examined} tuples")


if __name__ == "__main__":
    main()
