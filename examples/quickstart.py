"""Quickstart: detect a one-sided recursion and evaluate a selection on it.

This walks through the library's main loop in ~40 lines:

1. write a recursive Datalog definition in the paper's Prolog syntax,
2. build its full A/V graph and apply Theorem 3.1,
3. load some data,
4. answer ``column = constant`` queries with the strategy the paper recommends,
   and compare the work done against plain semi-naive evaluation.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    Database,
    answer_query,
    build_full_av_graph,
    classify,
    describe,
    parse_program,
    seminaive_query,
)


def main() -> None:
    # 1. The canonical one-sided recursion: reachability over an edge relation.
    program = parse_program(
        """
        t(X, Y) :- a(X, Z), t(Z, Y).
        t(X, Y) :- b(X, Y).
        """
    )

    # 2. Detection: Theorem 3.1 on the full A/V graph.
    report = classify(program, "t")
    print("=== detection ===")
    print(describe(build_full_av_graph(program.linear_recursive_rule("t"))))
    print(f"verdict: {report}")
    print()

    # 3. A small database: a long chain plus a few shortcuts.
    edges = [(i, i + 1) for i in range(200)] + [(0, 50), (50, 150)]
    database = Database.from_dict({"a": edges, "b": edges})

    # 4. Query with the one-sided schema (picked automatically) ...
    result = answer_query(program, database, "t(0, Y)?")
    print("=== evaluation ===")
    print(f"t(0, Y)? has {len(result.answers)} answers via {result.strategy}")
    print(f"  work: {result.stats}")

    # ... and compare against evaluate-everything-then-select.
    _answers, full_stats = seminaive_query(program, database, "t", {0: 0})
    print(f"  semi-naive + select would examine {full_stats.tuples_examined} tuples "
          f"(vs {result.stats.tuples_examined} for the one-sided schema)")

    # Selections on the other column use the other direction of the schema.
    backward = answer_query(program, database, "t(X, 200)?")
    print(f"t(X, 200)? has {len(backward.answers)} answers via {backward.strategy}")


if __name__ == "__main__":
    main()
