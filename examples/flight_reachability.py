"""Flight reachability with travel restrictions (Example 4.1 in the wild).

An airline's route map defines reachability as a transitive closure; a
"permissions" relation (visa / alliance restrictions between an origin and a
final destination) must hold for every leg of the itinerary.  That is exactly
the paper's Example 4.1, the *transitive closure with permissions*:

    itinerary(X, Y) :- leg(X, Z), itinerary(Z, Y), allowed(X, Y).
    itinerary(X, Y) :- direct(X, Y).

The recursion is one-sided, so single-airport queries ("where can I get to
from MSN?", "who can reach NRT?") are answered with the Figure 9 schema — but,
as the paper notes, the permission predicate ties both columns together so the
carry cannot be reduced to a single column the way it can for plain
reachability.

Run with:  python examples/flight_reachability.py
"""

from __future__ import annotations

import random

from repro import Database, OneSidedSchema, SelectionQuery, classify, parse_program, seminaive_query

AIRPORTS = [
    "msn", "ord", "jfk", "lhr", "cdg", "fra", "nrt", "sin", "syd", "gru",
    "mex", "yyz", "dxb", "del", "hkg", "icn",
]

ROUTES = [
    ("msn", "ord"), ("ord", "jfk"), ("ord", "lhr"), ("jfk", "lhr"), ("jfk", "cdg"),
    ("lhr", "fra"), ("lhr", "dxb"), ("cdg", "fra"), ("fra", "nrt"), ("fra", "del"),
    ("dxb", "sin"), ("del", "sin"), ("sin", "syd"), ("nrt", "syd"), ("nrt", "hkg"),
    ("hkg", "sin"), ("icn", "nrt"), ("yyz", "lhr"), ("mex", "ord"), ("gru", "cdg"),
    ("ord", "mex"), ("jfk", "gru"), ("sin", "hkg"),
]


def build_database(seed: int = 7, permission_fraction: float = 0.8) -> Database:
    """Routes plus a random origin/destination permission matrix."""
    rng = random.Random(seed)
    database = Database.from_dict({"leg": ROUTES, "direct": ROUTES})
    database.declare("allowed", 2)
    for origin in AIRPORTS:
        for destination in AIRPORTS:
            if rng.random() < permission_fraction:
                database.add_fact("allowed", (origin, destination))
    return database


def main() -> None:
    program = parse_program(
        """
        itinerary(X, Y) :- leg(X, Z), itinerary(Z, Y), allowed(X, Y).
        itinerary(X, Y) :- direct(X, Y).
        """
    )
    report = classify(program, "itinerary")
    print(f"classification: {report}")

    database = build_database()

    # Where can we fly from MSN, respecting the per-leg permission checks?
    query = SelectionQuery.of("itinerary", 2, {0: "msn"})
    schema = OneSidedSchema(program, "itinerary", query)
    print(f"compiled plan: {schema.plan.describe()}")
    result = schema.run(database)
    destinations = sorted(row[1] for row in result.answers)
    print(f"from msn you can reach: {', '.join(destinations)}")
    print(f"  work: {result.stats}")

    # Cross-check against full evaluation + selection.
    reference, full_stats = seminaive_query(program, database, "itinerary", {0: "msn"})
    assert result.answers == reference
    print(f"  (semi-naive + select examined {full_stats.tuples_examined} tuples, "
          f"the schema {result.stats.tuples_examined})")

    # Who can reach NRT?  Selection on the invariant column: backward direction.
    backward = OneSidedSchema(program, "itinerary", SelectionQuery.of("itinerary", 2, {1: "nrt"}))
    print(f"compiled plan: {backward.plan.describe()}")
    arrivals = backward.run(database)
    origins = sorted(row[0] for row in arrivals.answers)
    print(f"nrt is reachable from: {', '.join(origins)}")


if __name__ == "__main__":
    main()
