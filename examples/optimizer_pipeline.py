"""The recursive-query optimizer at work: rewrite, then evaluate.

The paper's conclusion is an engineering recommendation: *recursive query
processors should check for one-sided recursions and use the specialized
algorithms when they apply*.  ``repro.answer`` is that processor — it runs
the pass-based optimizer (redundancy removal, boundedness, sidedness,
bounded-recursion unfolding) and routes each query to the cheapest strategy
the rewrites enable.  This example feeds it a batch of differently-shaped
recursions:

* for each definition it prints the optimizer's per-pass provenance (which
  rewrites fired and why), and
* it then answers one selection query per definition, reporting the chosen
  strategy and how much work it did next to the semi-naive baseline.

Run with:  python examples/optimizer_pipeline.py
"""

from __future__ import annotations

from repro import answer
from repro.analysis import format_table
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    bounded_swap,
    buys_database,
    buys_unoptimized,
    canonical_two_sided,
    edge_database,
    example_3_4,
    layered_dag,
    permissions_database,
    random_graph,
    random_pairs,
    relations_database,
    tc_with_permissions,
    transitive_closure,
)

WORKLOADS = [
    (
        "bounded swap recursion",
        bounded_swap(),
        "t",
        relations_database(
            a=random_pairs(60, 20, seed=8),
            b=random_pairs(40, 20, seed=9),
        ),
        {0: 1},
    ),
    (
        "transitive closure",
        transitive_closure(),
        "t",
        edge_database(layered_dag(6, 5, 2, seed=1)),
        {0: 0},
    ),
    (
        "tc with permissions (Ex 4.1)",
        tc_with_permissions(),
        "t",
        permissions_database(random_graph(12, 30, seed=2), seed=2),
        {0: 0},
    ),
    (
        "Example 3.4",
        example_3_4(),
        "t",
        relations_database(
            e=random_pairs(30, 12, seed=3),
            d=[(v,) for v in range(6)],
            t0=[(i % 12, (i * 5) % 12, (i * 7) % 12) for i in range(15)],
        ),
        {0: 1},
    ),
    (
        "buys (Section 3)",
        buys_unoptimized(),
        "buys",
        buys_database(people=60, items=30, seed=4),
        {0: "person5"},
    ),
    (
        "canonical two-sided",
        canonical_two_sided(),
        "t",
        relations_database(
            a=random_pairs(40, 15, seed=5),
            b=random_pairs(15, 15, seed=6),
            c=random_pairs(40, 15, seed=7),
        ),
        {0: 1},
    ),
]


def main() -> None:
    rows = []
    for name, program, predicate, database, bindings in WORKLOADS:
        query = SelectionQuery.of(predicate, program.arity_of(predicate), bindings)
        chosen = answer(program, database, query)
        provenance = chosen.provenance
        _reference, baseline = seminaive_query(program, database, predicate, bindings)
        if provenance is not None and provenance.unfolded is not None:
            shape = "bounded"
        elif provenance is not None and provenance.one_sided:
            shape = "one-sided"
        else:
            shape = "many-sided"
        rows.append(
            [
                name,
                shape,
                ", ".join(provenance.fired()) if provenance is not None else "-",
                chosen.strategy,
                len(chosen.answers),
                chosen.stats.tuples_examined,
                baseline.tuples_examined,
            ]
        )
        print(f"--- {name} ---")
        if provenance is not None:
            for line in provenance.describe().splitlines():
                print(f"  {line}")
        print()

    print(
        format_table(
            [
                "definition",
                "class",
                "rewrites fired",
                "strategy chosen",
                "answers",
                "tuples examined",
                "semi-naive tuples",
            ],
            rows,
            title="query processor decisions",
        )
    )


if __name__ == "__main__":
    main()
