"""A miniature recursive-query optimizer built from the library's pieces.

The paper's conclusion is an engineering recommendation: *recursive query
processors should check for one-sided recursions and use the specialized
algorithms when they apply*.  This example plays the role of such a processor
for a batch of differently-shaped recursions:

* for each definition it prints the full A/V graph analysis, the redundancy
  removal, the boundedness check and the final verdict (the Theorem 3.4
  pipeline), and
* it then answers one selection query per definition with the strategy the
  verdict selects, reporting how much work each strategy did.

Run with:  python examples/optimizer_pipeline.py
"""

from __future__ import annotations

from repro import answer_query, detect_one_sided
from repro.analysis import format_table
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    buys_database,
    buys_unoptimized,
    canonical_two_sided,
    edge_database,
    example_3_4,
    layered_dag,
    permissions_database,
    random_graph,
    random_pairs,
    relations_database,
    tc_with_permissions,
    transitive_closure,
)

WORKLOADS = [
    (
        "transitive closure",
        transitive_closure(),
        "t",
        edge_database(layered_dag(6, 5, 2, seed=1)),
        {0: 0},
    ),
    (
        "tc with permissions (Ex 4.1)",
        tc_with_permissions(),
        "t",
        permissions_database(random_graph(12, 30, seed=2), seed=2),
        {0: 0},
    ),
    (
        "Example 3.4",
        example_3_4(),
        "t",
        relations_database(
            e=random_pairs(30, 12, seed=3),
            d=[(v,) for v in range(6)],
            t0=[(i % 12, (i * 5) % 12, (i * 7) % 12) for i in range(15)],
        ),
        {0: 1},
    ),
    (
        "buys (Section 3)",
        buys_unoptimized(),
        "buys",
        buys_database(people=60, items=30, seed=4),
        {0: "person5"},
    ),
    (
        "canonical two-sided",
        canonical_two_sided(),
        "t",
        relations_database(
            a=random_pairs(40, 15, seed=5),
            b=random_pairs(15, 15, seed=6),
            c=random_pairs(40, 15, seed=7),
        ),
        {0: 1},
    ),
]


def main() -> None:
    rows = []
    for name, program, predicate, database, bindings in WORKLOADS:
        outcome = detect_one_sided(program, predicate)
        query = SelectionQuery.of(predicate, program.arity_of(predicate), bindings)
        chosen = answer_query(program, database, query)
        _reference, baseline = seminaive_query(program, database, predicate, bindings)
        rows.append(
            [
                name,
                "one-sided" if outcome.one_sided else "many-sided",
                bool(outcome.redundancy and outcome.redundancy.changed),
                chosen.strategy,
                len(chosen.answers),
                chosen.stats.tuples_examined,
                baseline.tuples_examined,
            ]
        )
        print(f"--- {name} ---")
        for note in outcome.notes:
            print(f"  {note}")
        print()

    print(
        format_table(
            [
                "definition",
                "class",
                "rewritten",
                "strategy chosen",
                "answers",
                "tuples examined",
                "semi-naive tuples",
            ],
            rows,
            title="query processor decisions",
        )
    )


if __name__ == "__main__":
    main()
