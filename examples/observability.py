"""Observability walkthrough: metrics, health, status and traces, live.

This boots a :class:`repro.DatalogService`, turns observability on with
``serve_metrics()`` (the service defaults to the free no-op registry — the
HTTP call *is* the opt-in), drives a small read/write workload, and then
plays the operator:

1. scrape ``/metrics`` — the Prometheus text exposition whose
   ``repro_service_*`` values agree with ``service.stats`` by construction,
2. probe ``/healthz`` — flusher alive, storage sound, epochs advancing,
3. read ``/statusz`` — the JSON merge of the service/storage/engine stats,
4. inspect the tracer: flush spans, the slow-query log, and a JSONL export,
5. EXPLAIN a query (``repro.explain`` — the plan, without running it), then
   EXPLAIN ANALYZE it (``query(..., profile=True)`` — the same profile
   filled in by a real run) and read it back from ``/debug/queries``.

Run with:  PYTHONPATH=src python examples/observability.py
"""

from __future__ import annotations

import io
import json
import urllib.request

from repro import Database, DatalogService, explain

PROGRAM = """
reach(X, Y) :- hop(X, Z), reach(Z, Y).
reach(X, Y) :- link(X, Y).
"""


def fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.read().decode()


def main() -> None:
    database = Database.from_dict(
        {
            "hop": [(n, n + 1) for n in range(20)],
            "link": [(20, 21)],
        }
    )
    with DatalogService(PROGRAM, database) as service:
        server = service.serve_metrics()  # port=0 -> ephemeral; also the opt-in
        print(f"exporter listening on http://{server.host}:{server.port}\n")

        # a little traffic so the instruments have something to say
        for _ in range(50):
            service.query("reach(0, Y)?")  # repeated -> epoch-cache hits
        service.insert("hop", (21, 22))
        service.insert("link", (22, 23))
        service.barrier()  # read-your-writes; also forces the flush
        service.query("reach(21, Y)?")

        # 1. /metrics — grep the headline families out of the exposition
        exposition = fetch(server.url("/metrics"))
        print("— /metrics (repro_service_* lines) —")
        for line in exposition.splitlines():
            if line.startswith("repro_service_") and "{" not in line:
                print(f"  {line}")
        print(f"  ... plus histograms/storage/engine families "
              f"({len(exposition.splitlines())} lines total)")

        # the acceptance property: the scrape agrees with the pinned stats
        stats = service.stats
        served = next(
            line for line in exposition.splitlines()
            if line.startswith("repro_service_queries_served_total ")
        )
        assert float(served.split()[1]) == stats.queries_served
        print(f"\n  scrape agrees with ServiceStats: {served} "
              f"== stats.queries_served={stats.queries_served}")

        # 2. /healthz — what a load balancer would poll
        health = json.loads(fetch(server.url("/healthz")))
        print(f"\n— /healthz — status={health['status']}")
        for name, check in health["checks"].items():
            print(f"  [{'ok' if check['ok'] else 'FAIL'}] {name}: {check['detail']}")

        # 3. /statusz — the operator's one-page summary
        status = json.loads(fetch(server.url("/statusz")))
        print(f"\n— /statusz — epoch={status['epoch']}")
        print(f"  service: {status['service']['queries_served']} queries, "
              f"{status['service']['cache_hits']} cache hits, "
              f"{status['service']['flushes']} flushes")
        print(f"  engine:  {status['engine']['tuples_examined']} tuples examined, "
              f"{status['engine']['lookups']} lookups")
        print(f"  flags:   {status['flags']}")

        # 4. traces — flush spans and the JSONL export
        print("\n— tracer —")
        for span in service.tracer.spans("flush"):
            print(f"  {span}")
        buffer = io.StringIO()
        exported = service.tracer.export_jsonl(buffer)
        print(f"  exported {exported} spans as JSONL "
              f"({len(buffer.getvalue())} bytes)")

        # 5a. EXPLAIN — predict the strategy and describe the compiled plans
        #     without touching a single stored tuple
        plan = explain(
            service.session.program, "reach(0, Y)?", service.snapshot().as_database()
        )
        print("\n— EXPLAIN reach(0, Y)? —")
        print("  " + plan.render().replace("\n", "\n  "))

        # 5b. EXPLAIN ANALYZE — the same profile, filled in by a real run:
        #     strategy actually taken, dispatch decisions, timings, stats,
        #     cache outcome, and a trace ID shared with spans and slow-query
        #     records
        result = service.query("reach(5, Y)?", profile=True)
        print("\n— EXPLAIN ANALYZE reach(5, Y)? —")
        print("  " + result.profile.render().replace("\n", "\n  "))

        # 5c. /debug/queries — the flight recorder replays recent profiles
        #     (and lists in-flight queries, live) for any operator with curl
        debug = json.loads(fetch(server.url("/debug/queries")))
        print(f"\n— /debug/queries — {debug['profiles_recorded']} profiles "
              f"recorded, {len(debug['in_flight'])} in flight")
        for profile in debug["recent_profiles"]:
            print(f"  {profile['trace_id']}  {profile['query']}  "
                  f"-> {profile['strategy']} ({profile['outcome']}, "
                  f"cache={profile['cache']})")


if __name__ == "__main__":
    main()
