"""Concurrent serving: many clients, one maintained view, zero read locks.

This drives a :class:`repro.DatalogService` — the thread-safe serving layer
over a maintained materialized view — with a small thread pool:

1. register a recursive reachability program as a service,
2. let writer threads stream single-edge inserts/deletes through the write
   queue (coalesced into a handful of maintenance rounds),
3. let reader threads answer selections against published epoch snapshots
   (repeated queries land in the epoch-keyed result cache),
4. use ``barrier()`` for read-your-writes, and
5. print the service counters that tell the story: flushes vs writes
   (coalescing) and cache hits vs queries.

Run with:  PYTHONPATH=src python examples/concurrent_service.py
"""

from __future__ import annotations

import random
import threading

from repro import Database, DatalogService, FlushPolicy

PEOPLE = 40
FOLLOWS = 90
READERS = 4
QUERIES_PER_READER = 200


def build_database() -> Database:
    rng = random.Random(87)
    database = Database()
    database.declare("follows", 2)
    database.declare("endorses", 2)
    for _ in range(FOLLOWS):
        a, b = rng.sample(range(PEOPLE), 2)
        database.add_fact("follows", (f"p{a}", f"p{b}"))
    for person in range(0, PEOPLE, 5):
        database.add_fact("endorses", (f"p{person}", f"p{(person + 1) % PEOPLE}"))
    return database


def main() -> None:
    # 1. "reaches" is transitive influence over follows, seeded by endorses.
    program = """
        reaches(X, Y) :- follows(X, Z), reaches(Z, Y).
        reaches(X, Y) :- endorses(X, Y).
    """
    service = DatalogService(
        program,
        build_database(),
        readers=READERS,
        flush_policy=FlushPolicy(max_batch=16, max_delay_seconds=0.002),
    )
    print(f"serving: {service}")
    print(f"strategy: {service.snapshot().strategy} (chosen at registration)\n")

    # 2. Writers stream follower churn; no writer waits for maintenance.
    def writer(index: int) -> None:
        rng = random.Random(100 + index)
        for _ in range(60):
            a, b = rng.sample(range(PEOPLE), 2)
            edge = (f"p{a}", f"p{b}")
            if rng.random() < 0.3:
                service.delete("follows", edge)
            else:
                service.insert("follows", edge)

    # 3. Readers answer against whatever epoch is published when they ask.
    def reader(index: int, hits: list) -> None:
        rng = random.Random(200 + index)
        for _ in range(QUERIES_PER_READER):
            person = f"p{rng.randrange(PEOPLE)}"
            result = service.query(f"reaches({person}, Y)?")
            if result.cached:
                hits[index] += 1

    hits = [0] * READERS
    threads = [threading.Thread(target=writer, args=(index,)) for index in range(2)]
    threads += [
        threading.Thread(target=reader, args=(index, hits)) for index in range(READERS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # 4. Read-your-writes: after the barrier, every enqueued write is visible.
    epoch = service.barrier()
    final = service.query("reaches(p0, Y)?")
    print(f"after barrier -> epoch {epoch}: p0 reaches {len(final.answers)} people")
    print(f"final answer strategy: {final.strategy}\n")

    # 5. The counters: coalescing factor and cache effectiveness.
    stats = service.stats
    print("=== service stats ===")
    for key, value in stats.as_dict().items():
        print(f"{key:>22}: {value}")
    print(
        f"\n{stats.writes_applied} writes rode {stats.flushes} flushes "
        f"({stats.maintenance_rounds} maintenance rounds) — "
        f"coalescing factor {stats.coalescing_factor():.1f}x"
    )
    print(
        f"{stats.cache_hits}/{stats.queries_served} queries served from the "
        f"epoch cache ({100 * stats.cache_hit_rate():.0f}%)"
    )
    service.close()


if __name__ == "__main__":
    main()
