"""The paper's `buys` recursion as a product-recommendation pipeline (Section 3).

"A person buys an item if they like it and it is cheap, or if someone they
know buys it (and it is cheap)":

    buys(X, Y) :- likes(X, Y), cheap(Y).
    buys(X, Y) :- knows(X, W), buys(W, Y), cheap(Y).

Written this way the recursion is two-sided, but the ``cheap(Y)`` atom of the
recursive rule is *recursively redundant* (Theorem 3.3): the exit rule already
guarantees every bought item is cheap.  The optimization pipeline removes it,
the optimized definition is one-sided, and per-person or per-item queries run
with the Figure 9 schema.

Run with:  python examples/product_recommendations.py
"""

from __future__ import annotations

from repro import answer_query, classify, detect_one_sided, parse_program, seminaive_query
from repro.core import recursively_redundant_predicates
from repro.workloads import buys_database


def main() -> None:
    program = parse_program(
        """
        buys(X, Y) :- likes(X, Y), cheap(Y).
        buys(X, Y) :- knows(X, W), buys(W, Y), cheap(Y).
        """
    )

    print("=== as written ===")
    print(f"classification: {classify(program, 'buys')}")
    print(f"Theorem 3.3 flags as recursively redundant: {recursively_redundant_predicates(program, 'buys')}")

    print()
    print("=== after the optimization pipeline ===")
    outcome = detect_one_sided(program, "buys")
    print(f"optimized recursive rule: {outcome.optimized.linear_recursive_rule('buys')}")
    print(f"verdict: {outcome}")

    database = buys_database(people=200, items=60, likes_per_person=3, knows_per_person=4, seed=11)

    print()
    print("=== queries ===")
    person_query = answer_query(program, database, "buys(person7, Item)?")
    items = sorted(row[1] for row in person_query.answers)
    print(f"person7 ends up buying {len(items)} items via {person_query.strategy}")
    print(f"  first few: {', '.join(items[:6])}")
    print(f"  work: {person_query.stats}")

    _reference, full_stats = seminaive_query(program, database, "buys", {0: "person7"})
    print(f"  (evaluating all of buys first would examine {full_stats.tuples_examined} tuples, "
          f"the chosen strategy examined {person_query.stats.tuples_examined})")

    item_query = answer_query(program, database, "buys(Person, item3)?")
    print(f"item3 is bought by {len(item_query.answers)} people via {item_query.strategy}")


if __name__ == "__main__":
    main()
