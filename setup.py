"""Setuptools entry point.

The project is configured through ``pyproject.toml``; this file exists so the
package can also be installed in environments where the PEP 660 editable
build path is unavailable (e.g. offline machines without the ``wheel``
package), via ``python setup.py develop`` or legacy ``pip install -e .``.
"""

from setuptools import setup

setup()
