"""Tests for the complete detection pipeline (Theorem 3.4's procedure)."""

from __future__ import annotations

import pytest

from repro.core import detect_one_sided
from repro.datalog import parse_program
from repro.workloads import (
    appendix_a_p,
    buys_optimized,
    buys_unoptimized,
    canonical_two_sided,
    example_3_5,
    nonlinear_tc,
    same_generation,
    same_generation_distinct_parents,
    tc_with_permissions,
    transitive_closure,
)


class TestPositiveCases:
    def test_transitive_closure_detected(self):
        outcome = detect_one_sided(transitive_closure(), "t")
        assert outcome.one_sided
        assert outcome.verdict_is_complete
        assert outcome.uniformly_bounded is False

    def test_buys_detected_after_optimization(self):
        """Section 3: redundancy removal turns the two-sided buys into one-sided form."""
        outcome = detect_one_sided(buys_unoptimized(), "buys")
        assert outcome.one_sided
        assert outcome.redundancy is not None and outcome.redundancy.changed
        assert outcome.optimized == buys_optimized()
        assert any("cheap" in note for note in outcome.notes)

    def test_permissions_recursion_detected(self):
        assert detect_one_sided(tc_with_permissions(), "t").one_sided


class TestNegativeCases:
    def test_canonical_two_sided_refuted_completely(self):
        """Theorem 3.4 applies: no uniformly equivalent one-sided definition exists."""
        outcome = detect_one_sided(canonical_two_sided(), "t")
        assert not outcome.one_sided
        assert outcome.verdict_is_complete
        assert any("Theorem 3.4" in note for note in outcome.notes)

    def test_example_3_5_refuted_completely(self):
        outcome = detect_one_sided(example_3_5(), "t")
        assert not outcome.one_sided
        assert outcome.verdict_is_complete

    def test_distinct_parent_same_generation_refuted_completely(self):
        outcome = detect_one_sided(same_generation_distinct_parents(), "sg")
        assert not outcome.one_sided
        assert outcome.verdict_is_complete

    def test_repeated_predicates_weaken_the_verdict(self):
        """The paper's same-generation rule repeats p, so Theorem 3.4 does not apply."""
        outcome = detect_one_sided(same_generation(), "sg")
        assert not outcome.one_sided
        assert not outcome.verdict_is_complete
        assert any("repeats a nonrecursive predicate" in note for note in outcome.notes)


class TestBoundaryCases:
    def test_bounded_recursion_is_reported(self):
        outcome = detect_one_sided(appendix_a_p(), "p")
        assert outcome.uniformly_bounded is True
        assert any("uniformly bounded" in note for note in outcome.notes)

    def test_nonlinear_recursion_is_out_of_scope(self):
        outcome = detect_one_sided(nonlinear_tc(), "t")
        assert not outcome.one_sided
        assert not outcome.verdict_is_complete
        assert outcome.report is None

    def test_multiple_recursive_rules_out_of_scope(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, Z), t(Z, Y).
            t(X, Y) :- c(X, Z), t(Z, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        outcome = detect_one_sided(program, "t")
        assert not outcome.one_sided
        assert outcome.report is None
        assert "undecidable" in " ".join(outcome.notes)

    def test_str_summarises_outcome(self):
        text = str(detect_one_sided(transitive_closure(), "t"))
        assert "one-sided" in text
        assert "complete" in text
