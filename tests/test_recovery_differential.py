"""Crash/restore differential fuzzing: recovery lands on an adjacent epoch.

The durability layer's tier-1 foothold: seeded kill/restore schedules
(:mod:`repro.testing.recovery`) drive a durable ``DatalogService`` over every
generator family, kill the store at a seeded WAL-append ordinal (before the
append, after it, or tearing the appended frame mid-write), and assert the
recovered service reproduces **exactly**
the adjacent epoch's state — tuple-identical EDB against a shadow replay,
tuple-identical views against from-scratch semi-naive evaluation — never a
torn in-between.  Every schedule also proves WAL replay idempotent (a double
replay changes nothing), continues the mutation script on the recovered
service, and recovers a second time to the same final state.  Any failure
names its seed.
"""

from __future__ import annotations

import pytest

from repro.testing import generate_crash_case, generate_crash_cases, run_crash_case

SEED_COUNT = 24


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_recovery_reproduces_the_adjacent_epoch(seed, tmp_path):
    report = run_crash_case(generate_crash_case(seed), tmp_path)
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)
    assert report.checks >= 4  # recovery, idempotence, continuation, reopen


def test_generation_is_deterministic():
    first = generate_crash_case(11)
    second = generate_crash_case(11)
    assert first.steps == second.steps
    assert first.crash_append == second.crash_append
    assert first.crash_kind == second.crash_kind
    assert first.snapshot_interval == second.snapshot_interval
    assert first.expected == second.expected


def test_batch_covers_every_crash_window_and_compaction():
    cases = generate_crash_cases(SEED_COUNT)
    kinds = {case.crash_kind for case in cases}
    # "torn" schedules recover past a cut frame and then *continue* — the
    # final recovery replays acknowledged records on both sides of the tear
    assert kinds == {"before", "after", "torn"}
    # schedules must include aggressive compaction (snapshot per record) and
    # effectively-disabled compaction (pure WAL replay) so recovery is
    # exercised from both short and long log tails
    intervals = {case.snapshot_interval for case in cases}
    assert 1 in intervals
    assert max(intervals) >= 10_000
    families = {case.base.family for case in cases}
    assert "bounded" in families  # counting maintenance rebuilds
    assert "cyclic" in families  # DRed maintenance rebuilds
