"""Robustness layer tests: retry policy, health machine, timeouts, overload.

These cover the graceful-degradation contract end to end: a transient
storage fault degrades the service to read-only, the background probe heals
it, and every failure mode (retry exhaustion, admission control, query
deadlines, a crashing flusher) fails crisply with a retryable error while
reads keep serving the last published epoch.
"""

from __future__ import annotations

import time
import urllib.error
import urllib.request

import pytest

from repro import (
    Database,
    DatalogService,
    FlushError,
    FlushPolicy,
    MetricsRegistry,
    QueryTimeout,
    RetryPolicy,
    ServiceDegraded,
    ServiceOverloaded,
)
from repro.engine import check_deadline, evaluation_deadline
from repro.faults import FaultAction, FaultPlan, inject
from repro.service import DEGRADED, HEALTHY
from repro.storage import SimulatedCrash, StorageConfig, StorageError, is_transient
from repro.storage.wal import WriteAheadLog  # noqa: F401 - site docs anchor

TC = """
t(X, Y) :- a(X, Z), t(Z, Y).
t(X, Y) :- b(X, Y).
"""

FAST = FlushPolicy(max_batch=1, max_delay_seconds=0.0)


def tc_database():
    return Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})


def quick_retry(**overrides):
    defaults = dict(
        max_attempts=2,
        base_delay_seconds=0.001,
        max_delay_seconds=0.005,
        jitter=0.0,
    )
    defaults.update(overrides)
    return RetryPolicy(**defaults)


def await_healthy(service, deadline=10.0):
    limit = time.monotonic() + deadline
    while time.monotonic() < limit:
        if service.health == HEALTHY and not service._unlogged:
            return
        time.sleep(0.002)
    raise AssertionError(
        f"service never returned to HEALTHY (state {service.health!r}, "
        f"{len(service._unlogged)} unlogged batch(es))"
    )


def metric_value(body, name, **labels):
    for line in body.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest.startswith(" "):
            if labels:
                continue
            return float(rest.strip())
        if rest.startswith("{"):
            body_part, value = rest.rsplit(" ", 1)
            if all(f'{key}="{val}"' in body_part for key, val in labels.items()):
                return float(value)
    return None


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="negative"):
            RetryPolicy(base_delay_seconds=-1.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)

    def test_delay_is_exponential_and_capped_without_jitter(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, multiplier=2.0, max_delay_seconds=0.5, jitter=0.0
        )
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)
        assert policy.delay(4) == pytest.approx(0.5)  # capped
        assert policy.delay(64) == pytest.approx(0.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_seconds=0.1, jitter=0.25, seed=7)
        twin = RetryPolicy(base_delay_seconds=0.1, jitter=0.25, seed=7)
        other = RetryPolicy(base_delay_seconds=0.1, jitter=0.25, seed=8)
        for attempt in range(1, 6):
            delay = policy.delay(attempt)
            assert delay == twin.delay(attempt)  # pure function of (policy, attempt)
            raw = min(0.5, 0.1 * 2.0 ** (attempt - 1))
            assert raw * 0.75 <= delay <= raw * 1.25
        assert any(policy.delay(a) != other.delay(a) for a in range(1, 6))

    def test_retryable_delegates_to_is_transient(self):
        policy = RetryPolicy()
        assert policy.retryable(OSError(28, "No space left on device"))
        assert policy.retryable(TimeoutError("slow disk"))
        assert not policy.retryable(RuntimeError("a bug"))
        assert not policy.retryable(None)


class TestIsTransient:
    def test_walks_the_cause_chain(self):
        wrapped = StorageError("WAL append failed")
        wrapped.__cause__ = OSError(5, "Input/output error")
        assert is_transient(wrapped)

    def test_simulated_crash_is_never_transient(self):
        crash = SimulatedCrash("planted")
        crash.__cause__ = OSError(28, "No space left on device")
        assert not is_transient(crash)

    def test_cyclic_chains_terminate(self):
        first = ValueError("a")
        second = KeyError("b")
        first.__cause__ = second
        second.__context__ = first
        assert not is_transient(first)


# ----------------------------------------------------------------------
# the health machine end to end
# ----------------------------------------------------------------------
class TestHealthMachine:
    def test_transient_fault_degrades_then_probe_heals(self, tmp_path):
        """ENOSPC through retry exhaustion -> DEGRADED -> probe -> HEALTHY.

        The window covers the first two in-loop attempts *and* the probe's
        first re-log, so the run exercises retry, exhaustion, a failed probe
        and a successful one — then the reopened store must hold every
        acknowledged write, including the once-unlogged backlog batch.
        """
        service = DatalogService.open(
            tmp_path,
            TC,
            database=tc_database(),
            storage_config=StorageConfig(fsync=False, snapshot_interval=10_000),
            flush_policy=FAST,
            retry=quick_retry(),
            metrics=MetricsRegistry(),
        )
        plan = FaultPlan().during("wal.append", range(1, 4), FaultAction.enospc())
        try:
            with inject(plan):
                with pytest.raises(FlushError, match="storage append failed"):
                    service.insert("b", (1, 7), wait=True, timeout=10.0)
                await_healthy(service)
            assert plan.hits("wal.append") >= 4  # 2 in-loop + failed probe + success
            robust = service.robustness
            assert robust.retries >= 1
            assert robust.retry_exhaustions == 1
            assert robust.degradations >= 1
            assert robust.recoveries >= 1
            assert robust.probes >= 2  # first probe hit the window, second healed
            assert robust.degraded_seconds > 0.0
            assert service.storage_stats.revivals >= 2
            # the write whose logging failed WAS applied in memory and is now
            # durably re-logged; later writes append normally
            service.insert("b", (2, 8), wait=True, timeout=10.0)
            assert ((1, 7) in service.query("t(X, Y)?").answers)
            rendered = service.metrics.render()
            assert metric_value(rendered, "repro_service_health_state") == 0.0
            assert metric_value(rendered, "repro_service_retries_total") >= 1
            assert metric_value(rendered, "repro_service_recoveries_total") >= 1
            assert metric_value(rendered, "repro_service_degradations_total") >= 1
        finally:
            service.close()
        with DatalogService.open(tmp_path) as reopened:
            answers = reopened.query("t(X, Y)?").answers
            assert (1, 7) in answers and (2, 8) in answers

    def test_degraded_service_stays_readable_and_refuses_writes(self, tmp_path):
        """While degraded: reads serve, writes raise ServiceDegraded, /healthz
        stays green (degraded != dead) with the recovery named in the detail."""
        service = DatalogService.open(
            tmp_path,
            TC,
            database=tc_database(),
            storage_config=StorageConfig(fsync=False, snapshot_interval=10_000),
            flush_policy=FAST,
            # one attempt, slow probe: holds the DEGRADED window open long
            # enough to observe it deterministically
            retry=quick_retry(max_attempts=1, base_delay_seconds=0.5, max_delay_seconds=0.5),
            metrics=MetricsRegistry(),
        )
        try:
            with inject(FaultPlan().at("wal.append", 1, FaultAction.eio())):
                with pytest.raises(FlushError):
                    service.insert("b", (1, 7), wait=True, timeout=10.0)
                assert service.health == DEGRADED
                # reads keep serving the last *published* epoch; the unlogged
                # batch publishes only once recovery re-logs it
                assert service.query("t(X, Y)?").answers == {(1, 4), (2, 4), (3, 4)}
                with pytest.raises(ServiceDegraded, match="safe to retry"):
                    service.insert("b", (9, 9), wait=True, timeout=10.0)
                assert service.robustness.writes_refused >= 1
                report = {name: check for name, check in service._health_checks().items()}
                assert report["storage"][0] is True  # degraded, not dead
                assert "recovery in progress" in report["storage"][1]
                assert metric_value(
                    service.metrics.render(), "repro_service_health_state"
                ) in (1.0, 2.0)
                await_healthy(service)
            service.insert("b", (9, 9), wait=True, timeout=10.0)
        finally:
            service.close()

    def test_non_transient_failure_poisons_without_a_probe(self, tmp_path):
        """A SimulatedCrash under the WAL is not retried and never heals:
        writes are refused with the historical 'refuses further writes'
        error, /healthz goes red, reads still serve."""
        service = DatalogService.open(
            tmp_path,
            TC,
            database=tc_database(),
            storage_config=StorageConfig(fsync=False, snapshot_interval=10_000),
            flush_policy=FAST,
            retry=quick_retry(),
        )
        try:
            crash = FaultAction.error(lambda: SimulatedCrash("injected crash"))
            with inject(FaultPlan().at("wal.append", 1, crash)):
                with pytest.raises(FlushError, match="WAL append failed"):
                    service.insert("b", (1, 7), wait=True, timeout=10.0)
            time.sleep(0.05)  # a probe would have run by now; none may exist
            assert service.health == DEGRADED
            assert service._probe is None
            assert not service._recoverable()
            assert service.robustness.retries == 0  # not worth a single retry
            with pytest.raises(FlushError, match="refuses"):
                service.insert("b", (2, 8), wait=True, timeout=10.0)
            checks = service._health_checks()
            assert checks["storage"][0] is False
            assert "poisoned" in checks["storage"][1]
            # reads survive, serving the last *published* epoch — the poisoned
            # batch never published, so the pre-fault state is what they see
            assert service.query("t(X, Y)?").answers == {(1, 4), (2, 4), (3, 4)}
            assert service.epoch == 0
        finally:
            service.close()

    def test_statusz_reports_the_health_section(self):
        with DatalogService(TC, tc_database(), flush_policy=FAST) as service:
            health = service._status_report()["health"]
            assert health["state"] == HEALTHY
            assert health["recoverable"] is True
            assert health["storage_failed"] is None
            assert health["unlogged_batches"] == 0
            assert health["robustness"]["degradations"] == 0


# ----------------------------------------------------------------------
# query deadlines
# ----------------------------------------------------------------------
class TestQueryTimeout:
    def test_impossible_deadline_raises_and_is_counted(self):
        with DatalogService(
            TC, tc_database(), flush_policy=FAST, metrics=MetricsRegistry()
        ) as service:
            with pytest.raises(QueryTimeout):
                service.query("t(1, Y)?", timeout=0.0)
            assert service.robustness.query_timeouts == 1
            assert metric_value(
                service.metrics.render(),
                "repro_service_query_seconds_count",
                outcome="timeout",
            ) == 1

    def test_submit_deadline_covers_reader_pool_queueing(self):
        with DatalogService(TC, tc_database(), flush_policy=FAST) as service:
            future = service.submit("t(1, Y)?", timeout=0.0)
            with pytest.raises(QueryTimeout):
                future.result(timeout=10.0)
            assert service.robustness.query_timeouts == 1

    def test_generous_deadline_answers_normally(self):
        with DatalogService(TC, tc_database(), flush_policy=FAST) as service:
            result = service.query("t(1, Y)?", timeout=30.0)
            assert result.answers == {(1, 4)}  # 1 -a-> 2 -a-> 3 -b-> 4
            assert service.robustness.query_timeouts == 0

    def test_cooperative_check_fires_inside_an_armed_scope(self):
        with evaluation_deadline(time.monotonic() - 1.0):
            with pytest.raises(QueryTimeout):
                check_deadline()
        check_deadline()  # disarmed outside the scope

    def test_nested_scopes_keep_the_tighter_deadline(self):
        soon = time.monotonic() - 1.0
        with evaluation_deadline(soon):
            with evaluation_deadline(time.monotonic() + 3600.0):
                # the outer (already expired) deadline must still govern
                with pytest.raises(QueryTimeout):
                    check_deadline()


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_full_queue_sheds_writes_but_not_barriers(self):
        policy = FlushPolicy(
            max_batch=1_000_000, max_delay_seconds=3600.0, max_pending=2
        )
        with DatalogService(TC, tc_database(), flush_policy=policy) as service:
            service.insert("b", (1, 7))
            service.insert("b", (2, 8))
            with pytest.raises(ServiceOverloaded, match="max_pending"):
                service.insert("b", (3, 9))
            assert service.robustness.writes_shed == 1
            # the documented backoff move: barriers are exempt, so waiting on
            # one is exactly "retry after the flusher drains"
            service.barrier(timeout=10.0)
            service.insert("b", (3, 9))  # manual policy: flushed by the barrier
            service.barrier(timeout=10.0)
            assert (3, 9) in service.query("t(X, Y)?").answers

    def test_max_pending_validates(self):
        with pytest.raises(ValueError, match="max_pending"):
            FlushPolicy(max_pending=0)


# ----------------------------------------------------------------------
# the flusher survives its own faults
# ----------------------------------------------------------------------
class TestFlusherFaults:
    def test_apply_crash_fails_the_batch_but_not_the_flusher(self):
        """The satellite bugfix: an exception escaping the batch apply used
        to kill the flusher thread silently; now it fails that batch's
        tickets, degrades, heals, and keeps flushing."""
        with DatalogService(TC, tc_database(), flush_policy=FAST) as service:
            original = service._apply
            state = {"crashed": False}

            def flaky(batch):
                if not state["crashed"]:
                    state["crashed"] = True
                    raise RuntimeError("apply exploded")
                return original(batch)

            service._apply = flaky
            with pytest.raises(FlushError, match="apply exploded"):
                service.insert("b", (1, 7), wait=True, timeout=10.0)
            assert service._flusher.is_alive()
            assert service.robustness.flusher_faults == 1
            assert service.robustness.degradations >= 1
            await_healthy(service)
            service.insert("b", (2, 8), wait=True, timeout=10.0)
            assert (2, 8) in service.query("t(X, Y)?").answers

    def test_drain_crash_degrades_instead_of_dying_silently(self):
        service = DatalogService(TC, tc_database(), flush_policy=FAST)
        try:
            def dying_drain(*_args, **_kwargs):
                raise RuntimeError("drain exploded")

            # the flusher re-reads queue.drain each loop iteration: finish
            # one clean flush, then the next drain call explodes
            service.queue.drain = dying_drain
            service.insert("b", (1, 7), wait=True, timeout=10.0)
            deadline = time.monotonic() + 10.0
            while service._flusher.is_alive() and time.monotonic() < deadline:
                time.sleep(0.002)
            assert not service._flusher.is_alive()
            assert service.health == DEGRADED
            assert service.robustness.flusher_faults == 1
            checks = service._health_checks()
            assert checks["flusher_alive"][0] is False
            # reads outlive the flusher; the degradation is visible, not silent
            assert (1, 7) in service.query("t(X, Y)?").answers
        finally:
            service.close()


# ----------------------------------------------------------------------
# close() lifecycle
# ----------------------------------------------------------------------
class TestCloseLifecycle:
    def test_close_is_idempotent(self):
        service = DatalogService(TC, tc_database(), flush_policy=FAST)
        service.close()
        service.close()  # second (and later) calls return immediately
        assert service._closed

    def test_close_shuts_down_the_observability_server(self):
        service = DatalogService(TC, tc_database(), flush_policy=FAST)
        server = service.serve_metrics()
        url = server.url("/metrics")
        with urllib.request.urlopen(url, timeout=10) as response:
            assert response.status == 200
        service.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=1)

    def test_context_manager_exit_tolerates_an_earlier_close(self):
        with DatalogService(TC, tc_database(), flush_policy=FAST) as service:
            service.insert("b", (1, 7), wait=True, timeout=10.0)
            service.close()
        assert service._closed
