"""Unit tests for :mod:`repro.datalog.rules`."""

from __future__ import annotations

import pytest

from repro.datalog import ProgramError, SchemaError, parse_program, parse_rule
from repro.datalog.atoms import Atom
from repro.datalog.rules import Program, Rule, single_linear_recursion
from repro.datalog.terms import Variable
from repro.workloads import nonlinear_tc, transitive_closure


@pytest.fixture
def tc_rule() -> Rule:
    return parse_rule("t(X, Y) :- a(X, Z), t(Z, Y).")


class TestRule:
    def test_str_round_trip(self, tc_rule):
        assert parse_rule(str(tc_rule)) == tc_rule

    def test_is_recursive(self, tc_rule):
        assert tc_rule.is_recursive()
        assert not parse_rule("t(X, Y) :- b(X, Y).").is_recursive()

    def test_is_linear_recursive(self, tc_rule):
        assert tc_rule.is_linear_recursive()
        nonlinear = parse_rule("t(X, Y) :- t(X, Z), t(Z, Y).")
        assert nonlinear.is_recursive()
        assert not nonlinear.is_linear_recursive()

    def test_recursive_atom(self, tc_rule):
        assert tc_rule.recursive_atom() == Atom.of("t", "Z", "Y")

    def test_recursive_atom_rejects_nonlinear(self):
        nonlinear = parse_rule("t(X, Y) :- t(X, Z), t(Z, Y).")
        with pytest.raises(ProgramError):
            nonlinear.recursive_atom()

    def test_nonrecursive_atoms(self, tc_rule):
        assert tc_rule.nonrecursive_atoms() == [Atom.of("a", "X", "Z")]

    def test_head_and_nondistinguished_variables(self, tc_rule):
        assert tc_rule.head_variables() == [Variable("X"), Variable("Y")]
        assert tc_rule.nondistinguished_variables() == {Variable("Z")}

    def test_repeated_nonrecursive_predicates(self):
        repeated = parse_rule("sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z).")
        assert repeated.has_repeated_nonrecursive_predicates()
        assert not parse_rule("t(X, Y) :- a(X, Z), t(Z, Y).").has_repeated_nonrecursive_predicates()

    def test_head_assumption_checks(self):
        assert parse_rule("t(X, X) :- a(X).").head_has_repeated_variables_or_constants()
        assert parse_rule("t(X, 1) :- a(X).").head_has_repeated_variables_or_constants()
        assert not parse_rule("t(X, Y) :- a(X, Y).").head_has_repeated_variables_or_constants()

    def test_is_fact(self):
        assert parse_rule("edge(1, 2).").is_fact
        assert not parse_rule("edge(X, 2).").is_fact


class TestProgram:
    def test_idb_edb_split(self, tc_program):
        assert tc_program.idb_predicates() == {"t"}
        assert tc_program.edb_predicates() == {"a", "b"}

    def test_arity_of(self, tc_program):
        assert tc_program.arity_of("t") == 2
        with pytest.raises(ProgramError):
            tc_program.arity_of("missing")

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(SchemaError):
            parse_program("t(X) :- a(X). t(X, Y) :- a(X, Y).")

    def test_rules_for_and_exit_rules(self, tc_program):
        assert len(tc_program.rules_for("t")) == 2
        assert len(tc_program.exit_rules_for("t")) == 1
        assert len(tc_program.recursive_rules_for("t")) == 1

    def test_linear_recursive_rule(self, tc_program):
        rule = tc_program.linear_recursive_rule("t")
        assert rule.is_linear_recursive()

    def test_linear_recursive_rule_rejects_nonlinear(self):
        with pytest.raises(ProgramError):
            nonlinear_tc().linear_recursive_rule("t")

    def test_is_single_linear_recursion(self, tc_program):
        assert tc_program.is_single_linear_recursion("t")
        assert not nonlinear_tc().is_single_linear_recursion("t")

    def test_mutual_recursion_is_not_single_linear(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            """
        )
        assert not program.is_single_linear_recursion("even")
        assert program.is_recursive_predicate("even")
        assert program.is_recursive_predicate("odd")

    def test_dependency_analysis(self, tc_program):
        assert tc_program.depends_on("t") == {"a", "b", "t"}
        assert tc_program.is_recursive_predicate("t")

    def test_stratum_order_places_dependencies_first(self):
        program = parse_program(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            in_cycle(X) :- reach(X, X).
            """
        )
        order = program.stratum_order()
        assert order.index("reach") < order.index("in_cycle")

    def test_program_equality_ignores_order(self):
        first = parse_program("t(X, Y) :- a(X, Y). t(X, Y) :- b(X, Y).")
        second = parse_program("t(X, Y) :- b(X, Y). t(X, Y) :- a(X, Y).")
        assert first == second
        assert hash(first) == hash(second)

    def test_replace_and_remove_rules(self, tc_program):
        rule = tc_program.linear_recursive_rule("t")
        replacement = parse_rule("t(X, Y) :- a(X, Z), t(Z, Y), extra(X).")
        replaced = tc_program.replace_rule(rule, replacement)
        assert replacement in replaced.rules
        removed = tc_program.without_rule(rule)
        assert rule not in removed.rules
        assert len(removed.rules) == len(tc_program.rules) - 1


class TestSingleLinearRecursionFactory:
    def test_builds_valid_program(self):
        recursive = parse_rule("t(X, Y) :- a(X, Z), t(Z, Y).")
        exit_rule = parse_rule("t(X, Y) :- b(X, Y).")
        program = single_linear_recursion(recursive, exit_rule)
        assert program.is_single_linear_recursion("t")

    def test_rejects_nonrecursive_first_rule(self):
        with pytest.raises(ProgramError):
            single_linear_recursion(parse_rule("t(X, Y) :- b(X, Y)."))

    def test_rejects_mismatched_exit_predicate(self):
        with pytest.raises(ProgramError):
            single_linear_recursion(
                parse_rule("t(X, Y) :- a(X, Z), t(Z, Y)."),
                parse_rule("s(X, Y) :- b(X, Y)."),
            )

    def test_rejects_repeated_head_variables(self):
        with pytest.raises(ProgramError):
            single_linear_recursion(
                parse_rule("t(X, X) :- a(X, Z), t(Z, X)."),
                parse_rule("t(X, Y) :- b(X, Y)."),
            )

    def test_rejects_recursive_exit_rule(self):
        with pytest.raises(ProgramError):
            single_linear_recursion(
                parse_rule("t(X, Y) :- a(X, Z), t(Z, Y)."),
                parse_rule("t(X, Y) :- t(Y, X)."),
            )
