"""Tests for the query front door (:func:`repro.engine.query.answer`)."""

from __future__ import annotations

import pytest

from repro import answer, answer_query, parse_program
from repro.datalog import Database, EvaluationError
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    bounded_guard_tc,
    canonical_two_sided,
    same_generation,
    transitive_closure,
)


@pytest.fixture
def tc_db() -> Database:
    return Database.from_dict({"a": [(i, i + 1) for i in range(6)], "b": [(6, 100)]})


class TestAutoRouting:
    def test_bounded_recursion_routes_to_unfolded(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(1, 2), (3, 4)]})
        result = answer(bounded_guard_tc(), database, "t(1, Y)?")
        assert result.strategy == "unfolded (auto)"
        assert result.answers == {(1, 2)}

    def test_one_sided_recursion_routes_to_schema(self, tc_db):
        result = answer(transitive_closure(), tc_db, "t(0, Y)?")
        assert result.strategy.startswith("one-sided")
        reference, _ = seminaive_query(transitive_closure(), tc_db, "t", {0: 0})
        assert result.answers == reference

    def test_counting_routes_on_two_sided_chain_shape(self):
        program = canonical_two_sided()
        database = Database.from_dict(
            {"a": [(0, 1), (1, 2)], "b": [(2, 3)], "c": [(3, 4), (4, 5)]}
        )
        result = answer(program, database, "t(0, Y)?")
        assert result.strategy == "counting (auto)"
        reference, _ = seminaive_query(program, database, "t", {0: 0})
        assert result.answers == reference

    def test_magic_routes_when_counting_out_of_scope(self):
        program = canonical_two_sided()
        database = Database.from_dict(
            {"a": [(0, 1), (1, 2)], "b": [(2, 3)], "c": [(3, 4), (4, 5)]}
        )
        # column-1 selections are outside the counting implementation's scope
        result = answer(program, database, SelectionQuery.of("t", 2, {1: 4}))
        assert result.strategy == "magic-sets (auto)"
        reference, _ = seminaive_query(program, database, "t", {1: 4})
        assert result.answers == reference

    def test_unbound_query_falls_back_to_seminaive(self):
        program = same_generation()
        database = Database.from_dict({"p": [(1, 0), (2, 0)], "sg0": [(0, 0)]})
        result = answer(program, database, "sg(X, Y)?")
        assert result.strategy == "seminaive (auto)"
        reference, _ = seminaive_query(program, database, "sg")
        assert result.answers == reference

    def test_provenance_reports_the_rewrites(self, tc_db):
        result = answer(transitive_closure(), tc_db, "t(0, Y)?")
        assert result.provenance is not None
        names = [rewrite.pass_name for rewrite in result.provenance.rewrites]
        assert names == [
            "redundancy-removal",
            "boundedness-detection",
            "sidedness-classification",
            "bounded-unfolding",
        ]
        assert "sidedness-classification" in result.provenance.fired()

    def test_idb_exit_layer_gets_correct_answers(self):
        """The cross-product exit layer (Section 4): subsidiary IDB predicates
        must be materialized before the one-sided schema runs."""
        program = parse_program(
            """
            pair(X, Y) :- c(X), d(Y).
            t(X, Y) :- pair(X, Y).
            t(X, Y) :- a(X, W), t(W, Y).
            """
        )
        database = Database.from_dict({"c": [(1,)], "d": [(7,)], "a": [(0, 1)]})
        result = answer(program, database, "t(0, Y)?")
        reference, _ = seminaive_query(program, database, "t", {0: 0})
        assert reference == {(0, 7)}
        assert result.answers == reference


class TestForcedStrategies:
    def test_forced_strategies_match_planner(self, tc_db):
        program = transitive_closure()
        query = SelectionQuery.of("t", 2, {0: 0})
        for strategy in ("naive", "seminaive", "magic", "one-sided"):
            front = answer(program, tc_db, query, strategy=strategy)
            planner = answer_query(program, tc_db, query, strategy=strategy)
            assert front.answers == planner.answers, strategy

    def test_forced_counting_runs_in_scope(self, tc_db):
        result = answer(transitive_closure(), tc_db, "t(0, Y)?", strategy="counting")
        reference, _ = seminaive_query(transitive_closure(), tc_db, "t", {0: 0})
        assert result.answers == reference

    def test_forced_counting_out_of_scope_raises(self, tc_db):
        with pytest.raises(EvaluationError):
            answer(transitive_closure(), tc_db, SelectionQuery.of("t", 2, {1: 3}), strategy="counting")

    def test_unknown_strategy_raises(self, tc_db):
        with pytest.raises(EvaluationError):
            answer(transitive_closure(), tc_db, "t(0, Y)?", strategy="sideways")

    def test_undefined_predicate_returns_empty(self, tc_db):
        result = answer(transitive_closure(), tc_db, "missing(0, Y)?")
        assert result.answers == set()
