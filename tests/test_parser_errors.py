"""Error-path tests for :mod:`repro.datalog.parser`.

The parser reports positions in :class:`ParseError`; inconsistent predicate
arities surface as :class:`SchemaError` when the parsed rules are assembled
into a :class:`Program`.  These paths had no direct tests.
"""

from __future__ import annotations

import pytest

from repro.datalog import (
    ParseError,
    SchemaError,
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
)


class TestMalformedRules:
    def test_missing_body_after_neck(self):
        with pytest.raises(ParseError, match="unexpected end of input"):
            parse_rule("t(X, Y) :-")

    def test_missing_terminator(self):
        with pytest.raises(ParseError, match="unexpected end of input"):
            parse_rule("t(X, Y) :- a(X, Y)")

    def test_unbalanced_parenthesis(self):
        with pytest.raises(ParseError):
            parse_rule("t(X, Y :- a(X, Y).")

    def test_bad_neck_token(self):
        with pytest.raises(ParseError, match="expected ':-'"):
            parse_rule("t(X, Y) a(X, Y).")

    def test_variable_as_predicate_name(self):
        with pytest.raises(ParseError, match="expected a predicate name"):
            parse_rule("T(X, Y) :- a(X, Y).")

    def test_trailing_input_after_rule(self):
        with pytest.raises(ParseError, match="trailing input"):
            parse_rule("t(X, Y) :- a(X, Y). extra")

    def test_unterminated_quoted_constant(self):
        with pytest.raises(ParseError, match="unterminated quoted constant"):
            parse_rule("t(X) :- a(X, 'oops).")

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            parse_rule("t(X) :- a(X) & b(X).")

    def test_error_carries_line_and_column(self):
        with pytest.raises(ParseError) as excinfo:
            parse_program("t(X, Y) :- a(X, Y).\nt(X, Y) ;- b(X, Y).")
        assert "line 2" in str(excinfo.value)


class TestMalformedQueriesAndAtoms:
    def test_query_inside_program_rejected(self):
        with pytest.raises(ParseError, match="queries are not allowed inside a program"):
            parse_program("t(X, Y) :- a(X, Y). t(1, Y)?")

    def test_rule_where_query_expected(self):
        with pytest.raises(ParseError, match="a query must be a single atom"):
            parse_query("t(X, Y) :- a(X, Y).")

    def test_query_where_rule_expected(self):
        with pytest.raises(ParseError, match="found a query where a rule was expected"):
            parse_rule("t(1, Y)?")

    def test_trailing_input_after_atom(self):
        with pytest.raises(ParseError, match="trailing input after atom"):
            parse_atom("t(X, Y) t(Y, Z)")

    def test_trailing_input_after_query(self):
        with pytest.raises(ParseError, match="trailing input after query"):
            parse_query("t(1, Y)? t(2, Z)?")


class TestArityMismatches:
    def test_head_and_body_arity_conflict(self):
        with pytest.raises(SchemaError, match="used with arities"):
            parse_program("t(X, Y) :- a(X). t(X) :- b(X).")

    def test_same_predicate_two_arities_across_rules(self):
        with pytest.raises(SchemaError, match="used with arities"):
            parse_program(
                """
                t(X, Y) :- a(X, Y).
                s(X) :- t(X).
                """
            )

    def test_fact_arity_conflicts_with_rule(self):
        with pytest.raises(SchemaError, match="used with arities"):
            parse_program("a(1, 2). t(X) :- a(X).")

    def test_consistent_arities_parse_fine(self):
        program = parse_program("t(X, Y) :- a(X, Y). t(X, Y) :- b(X, Y).")
        assert program.arity_of("t") == 2
