"""Tests for the magic-sets baseline."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import magic_query, magic_rewrite
from repro.datalog import Database, EvaluationError, parse_program
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    canonical_two_sided,
    edge_database,
    example_3_4,
    random_pairs,
    relations_database,
    same_generation,
    same_generation_database,
    tc_with_permissions,
    transitive_closure,
)


class TestRewriting:
    def test_adorned_and_magic_rules_for_tc(self, tc_program):
        query = SelectionQuery.of("t", 2, {0: 1})
        rewriting = magic_rewrite(tc_program, query)
        rendered = {str(rule) for rule in rewriting.rewritten.rules}
        assert "magic__t__bf(Z) :- magic__t__bf(X), a(X, Z)." in rendered
        assert "t__bf(X, Y) :- magic__t__bf(X), a(X, Z), t__bf(Z, Y)." in rendered
        assert "t__bf(X, Y) :- magic__t__bf(X), b(X, Y)." in rendered
        assert rewriting.seed_predicate == "magic__t__bf"
        assert rewriting.seed_tuple == (1,)

    def test_bound_second_column_adornment(self, tc_program):
        query = SelectionQuery.of("t", 2, {1: 9})
        rewriting = magic_rewrite(tc_program, query)
        assert rewriting.answer_predicate == "t__fb"
        assert ("t", "fb") in rewriting.adorned_predicates

    def test_requires_idb_predicate(self, tc_program):
        with pytest.raises(EvaluationError):
            magic_rewrite(tc_program, SelectionQuery.of("a", 2, {0: 1}))

    def test_requires_bound_column(self, tc_program):
        with pytest.raises(EvaluationError):
            magic_rewrite(tc_program, SelectionQuery.of("t", 2, {}))

    def test_rule_count_reported(self, tc_program):
        rewriting = magic_rewrite(tc_program, SelectionQuery.of("t", 2, {0: 1}))
        assert rewriting.rule_count == 3


class TestEvaluation:
    def test_tc_bound_first_column(self, tc_program, chain_db):
        result = magic_query(tc_program, chain_db, SelectionQuery.of("t", 2, {0: 0}))
        assert result.answers == {(0, 100)}
        assert result.strategy == "magic-sets"
        assert result.stats.extra["magic_rules"] == 3

    def test_tc_bound_second_column(self, tc_program, chain_db):
        result = magic_query(tc_program, chain_db, SelectionQuery.of("t", 2, {1: 100}))
        reference, _ = seminaive_query(tc_program, chain_db, "t", {1: 100})
        assert result.answers == reference

    def test_unbound_query_falls_back_to_seminaive(self, tc_program, chain_db):
        result = magic_query(tc_program, chain_db, SelectionQuery.of("t", 2, {}))
        reference, _ = seminaive_query(tc_program, chain_db, "t")
        assert result.answers == reference
        assert "seminaive" in result.strategy

    def test_magic_restricts_work_on_disconnected_data(self, tc_program):
        connected = [(i, i + 1) for i in range(10)]
        far_away = [(100 + i, 101 + i) for i in range(200)]
        database = edge_database(connected + far_away)
        magic = magic_query(tc_program, database, SelectionQuery.of("t", 2, {0: 0}))
        _full, full_stats = seminaive_query(tc_program, database, "t", {0: 0})
        assert magic.stats.tuples_examined < full_stats.tuples_examined

    def test_same_generation_with_repeated_predicates(self):
        program = same_generation()
        database = same_generation_database(branching=2, depth=4)
        query = SelectionQuery.of("sg", 2, {0: 3})
        result = magic_query(program, database, query)
        reference, _ = seminaive_query(program, database, "sg", {0: 3})
        assert result.answers == reference

    def test_ternary_example_3_4(self, rng):
        program = example_3_4()
        database = relations_database(
            e=random_pairs(20, 8, seed=21),
            d=[(value,) for value in range(4)],
            t0=[(rng.randrange(8), rng.randrange(8), rng.randrange(8)) for _ in range(10)],
        )
        query = SelectionQuery.of("t", 3, {1: 2})
        result = magic_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {1: 2})
        assert result.answers == reference

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([0, 1]), st.integers(0, 7))
    def test_matches_seminaive_on_two_sided_property(self, seed, column, constant):
        program = canonical_two_sided()
        database = relations_database(
            a=random_pairs(15, 8, seed=seed),
            b=random_pairs(6, 8, seed=seed + 1),
            c=random_pairs(15, 8, seed=seed + 2),
        )
        query = SelectionQuery.of("t", 2, {column: constant})
        result = magic_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {column: constant})
        assert result.answers == reference

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 9))
    def test_matches_seminaive_on_permissions_property(self, seed, constant):
        from repro.workloads import permissions_database, random_graph

        program = tc_with_permissions()
        database = permissions_database(random_graph(8, 14, seed=seed), seed=seed)
        query = SelectionQuery.of("t", 2, {0: constant})
        result = magic_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {0: constant})
        assert result.answers == reference
