"""Unit tests for the durable storage layer and the flush-failure bugfixes.

Covers the wire format (tagged values, CRC frames, packed rows), the
segmented WAL (torn tails end replay, reset drops covered segments), atomic
snapshots (corrupt-newest fallback), the ``DurableStore`` orchestration
(genesis, logging, compaction, idempotent replay, crash injection), the
service-level persist/reopen cycle, and the PR's satellite fixes:
per-waiter ``FlushError`` instances, ``close()`` surfacing a stuck flusher,
post-close consistency, and ``as_rows`` input validation.
"""

from __future__ import annotations

import threading

import pytest

from repro import Database, DatalogService, Relation
from repro.engine.domain import Domain
from repro.faults import FaultAction, FaultPlan, inject
from repro.incremental.session import as_rows
from repro.service import FlushError, FlushPolicy, ServiceClosed
from repro.storage import (
    CorruptSnapshotError,
    DurableStore,
    SimulatedCrash,
    StorageConfig,
    StorageError,
    WriteAheadLog,
    frame,
    load_latest_snapshot,
    segment_files,
    snapshot_files,
    split_frames,
    write_snapshot,
)
from repro.storage.format import Reader, Writer

TC = "path(X, Y) :- edge(X, Y).\npath(X, Z) :- path(X, Y), edge(Y, Z).\n"

FAST = FlushPolicy(max_batch=1, max_delay_seconds=0.0)


def fast_config(**overrides) -> StorageConfig:
    defaults = {"fsync": False, "snapshot_interval": 10_000}
    defaults.update(overrides)
    return StorageConfig(**defaults)


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestValueCodec:
    def test_scalars_round_trip(self):
        values = [
            0,
            -1,
            2**62,
            2**100,  # bigint path
            -(2**100),
            3.14,
            "hello",
            "",
            b"\x00\xffbytes",
            True,
            False,
            None,
            ("pickled", frozenset({1})),  # pickle fallback
        ]
        writer = Writer()
        writer.values(values)
        decoded = Reader(writer.getvalue()).values()
        assert decoded == values
        # bool must survive as bool, not collapse into int
        assert decoded[9] is True and decoded[10] is False

    def test_unknown_tag_is_an_error(self):
        with pytest.raises(StorageError, match="tag"):
            Reader(b"\x01\x00\x00\x00Z").values()

    def test_truncated_payload_is_an_error(self):
        writer = Writer()
        writer.values(["abcdef"])
        with pytest.raises(StorageError, match="truncated"):
            Reader(writer.getvalue()[:-3]).values()


class TestFrames:
    def test_round_trip_and_clean_flag(self):
        data = frame(b"one") + frame(b"two") + frame(b"three")
        payloads, clean = split_frames(data)
        assert payloads == [b"one", b"two", b"three"]
        assert clean

    def test_torn_tail_ends_the_scan(self):
        data = frame(b"intact") + frame(b"torn-away")[:-4]
        payloads, clean = split_frames(data)
        assert payloads == [b"intact"]
        assert not clean

    def test_bit_flip_fails_the_checksum(self):
        data = bytearray(frame(b"payload") + frame(b"later"))
        data[10] ^= 0x40  # inside the first payload
        payloads, clean = split_frames(bytes(data))
        assert payloads == []
        assert not clean


class TestPackedRows:
    def test_round_trip_through_a_domain(self):
        domain = Domain()
        relation = Relation.from_valid_rows("r", 2, {("a", 1), ("b", 2), ("a", 2)})
        count, packed = relation.packed_rows(domain.intern)
        assert count == 3 and len(packed) == 3 * 2 * 8
        rebuilt = Relation.from_packed_rows("r", 2, count, packed, domain.decode)
        assert rebuilt.rows() == relation.rows()

    def test_zero_arity_relation(self):
        domain = Domain()
        relation = Relation.from_valid_rows("t", 0, {()})
        count, packed = relation.packed_rows(domain.intern)
        assert (count, packed) == (1, b"")
        assert Relation.from_packed_rows("t", 0, 1, b"", domain.decode).rows() == {()}
        assert Relation.from_packed_rows("t", 0, 0, b"", domain.decode).rows() == set()

    def test_length_mismatch_is_an_error(self):
        with pytest.raises(Exception, match="bytes"):
            Relation.from_packed_rows("r", 2, 3, b"\x00" * 8, Domain().decode)


class TestDomainPersistence:
    def test_export_and_extend_round_trip(self):
        original = Domain()
        for value in ("x", 7, "y", 2.5):
            original.intern(value)
        restored = Domain()
        restored.extend_values(original.export_values(0))
        assert len(restored) == 4
        for code in range(4):
            assert restored.decode(code) == original.decode(code)
        assert restored.intern("x") == original.intern("x")

    def test_incremental_export(self):
        domain = Domain()
        domain.intern("a")
        marker = len(domain)
        domain.intern("b")
        domain.intern("c")
        assert domain.export_values(marker) == ["b", "c"]

    def test_duplicate_extension_is_rejected(self):
        domain = Domain()
        domain.intern("dup")
        with pytest.raises(ValueError, match="already interned"):
            domain.extend_values(["dup"])


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_append_and_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(0)
        wal.append(b"first")
        wal.append(b"second")
        wal.close()
        assert list(WriteAheadLog(tmp_path, fsync=False).replay()) == [b"first", b"second"]

    def test_torn_tail_of_the_newest_segment_ends_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(0)
        wal.append(b"alpha")
        wal.append(b"beta")
        wal.close()
        only = segment_files(tmp_path)[0]
        only.write_bytes(only.read_bytes()[:-4])  # cut "beta" mid-frame
        assert list(WriteAheadLog(tmp_path, fsync=False).replay()) == [b"alpha"]

    def test_torn_sealed_tail_is_skipped_and_later_segments_replay(self, tmp_path):
        # segment 1 ends in a torn append: that record was never acknowledged
        # (fsync-before-acknowledge), and the next process life — which tore
        # it off during recovery — appended *acknowledged* records to segment
        # 2.  Replay must skip the tear and keep going, or those durable,
        # acknowledged records are silently lost.
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(0)
        wal.append(b"alpha")
        wal.append(b"beta")
        wal.append(b"torn-away")
        wal.close()
        first = segment_files(tmp_path)[0]
        first.write_bytes(first.read_bytes()[:-4])  # cut "torn-away" mid-frame
        wal2 = WriteAheadLog(tmp_path, fsync=False)
        wal2.start_segment(2)
        wal2.append(b"gamma")
        wal2.close()
        assert len(segment_files(tmp_path)) == 2
        assert list(WriteAheadLog(tmp_path, fsync=False).replay()) == [
            b"alpha",
            b"beta",
            b"gamma",
        ]

    def test_wide_sequence_numbers_are_found_and_sort_numerically(self, tmp_path):
        # lexicographically "1000000" sorts before "999999"; segment order
        # (and _next_sequence) must parse the fields, not compare strings
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(7)
        wal.append(b"older")
        wal.close()
        seg = segment_files(tmp_path)[0]
        seg.rename(seg.with_name(f"wal-{7:016d}-999999.log"))
        wal2 = WriteAheadLog(tmp_path, fsync=False)
        assert wal2._next_sequence() == 1_000_000
        wal2.start_segment(7)
        wal2.append(b"newer")
        wal2.close()
        assert [path.name for path in segment_files(tmp_path)] == [
            f"wal-{7:016d}-999999.log",
            f"wal-{7:016d}-1000000.log",
        ]
        assert list(WriteAheadLog(tmp_path, fsync=False).replay()) == [
            b"older",
            b"newer",
        ]

    def test_reset_drops_covered_segments(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(0)
        wal.append(b"old")
        wal.reset(5)
        wal.append(b"new")
        wal.close()
        assert len(segment_files(tmp_path)) == 1
        assert list(WriteAheadLog(tmp_path, fsync=False).replay()) == [b"new"]


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
class TestSnapshots:
    def _write(self, directory, epoch, values=("v",)):
        return write_snapshot(
            directory,
            epoch=epoch,
            program_text="p(X) :- q(X).",
            values=list(values),
            relations=[("q", 1, 1, (0).to_bytes(8, "little", signed=True))],
            fsync=False,
        )

    def test_round_trip(self, tmp_path):
        self._write(tmp_path, epoch=3)
        data = load_latest_snapshot(tmp_path)
        assert data.epoch == 3
        assert data.program_text == "p(X) :- q(X)."
        assert data.values == ["v"]
        assert data.relations == [("q", 1, 1, b"\x00" * 8)]

    def test_new_snapshot_supersedes_and_removes_old(self, tmp_path):
        self._write(tmp_path, epoch=1)
        self._write(tmp_path, epoch=9)
        assert [path.name for path in snapshot_files(tmp_path)] == [
            "snapshot-0000000000000009.snap"
        ]
        assert load_latest_snapshot(tmp_path).epoch == 9

    def test_corrupt_newest_falls_back_to_older_intact(self, tmp_path):
        older = self._write(tmp_path, epoch=1)
        saved = older.read_bytes()
        newest = self._write(tmp_path, epoch=2)  # prunes the epoch-1 file
        older.write_bytes(saved)  # restore it, as a crash mid-prune would leave
        newest.write_bytes(newest.read_bytes()[:-6])  # tear the newest
        assert load_latest_snapshot(tmp_path).epoch == 1

    def test_every_snapshot_corrupt_raises(self, tmp_path):
        path = self._write(tmp_path, epoch=4)
        path.write_bytes(b"garbage")
        with pytest.raises(CorruptSnapshotError, match="checksum"):
            load_latest_snapshot(tmp_path)

    def test_empty_directory_is_none(self, tmp_path):
        assert load_latest_snapshot(tmp_path) is None


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------
class TestDurableStore:
    def _seeded(self, tmp_path, **config):
        store = DurableStore(tmp_path, fast_config(**config))
        database = Database()
        database.declare("edge", 2).add_all([(1, 2), (2, 3)])
        store.attach(TC, database, 0)
        return store, database

    def test_fresh_directory_recovers_none(self, tmp_path):
        assert DurableStore(tmp_path, fast_config()).recover() is None

    def test_genesis_log_recover(self, tmp_path):
        store, _db = self._seeded(tmp_path)
        store.log_batch(1, [("insert", "edge", [(3, "x")])])
        store.log_batch(2, [("delete", "edge", [(1, 2)]), ("insert", "edge", [(9, 9)])])
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 2
        assert recovered.snapshot_epoch == 0
        assert recovered.records_replayed == 2
        assert recovered.program_text == TC
        assert recovered.database.relation("edge").rows() == {(2, 3), (3, "x"), (9, 9)}

    def test_replay_is_idempotent(self, tmp_path):
        store, _db = self._seeded(tmp_path)
        store.log_batch(1, [("insert", "edge", [(7, 8)])])
        store.log_batch(2, [("delete", "edge", [(2, 3)])])
        store.close()
        probe = DurableStore(tmp_path, fast_config())
        recovered = probe.recover()
        before = recovered.database.relation("edge").rows()
        epoch, replayed = probe.replay_into(recovered.database, recovered.snapshot_epoch)
        assert epoch == recovered.epoch == 2
        assert recovered.database.relation("edge").rows() == before

    def test_compaction_resets_the_wal(self, tmp_path):
        store, database = self._seeded(tmp_path, snapshot_interval=2)
        store.log_batch(1, [("insert", "edge", [(5, 6)])])
        database.insert_facts("edge", [(5, 6)])
        assert not store.should_compact()
        store.log_batch(2, [("insert", "edge", [(6, 7)])])
        database.insert_facts("edge", [(6, 7)])
        assert store.should_compact()
        store.compact(2, database.relations())
        assert store.stats.compactions == 1
        assert len(segment_files(tmp_path)) == 1  # fresh segment only
        store.log_batch(3, [("delete", "edge", [(1, 2)])])
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.snapshot_epoch == 2
        assert recovered.records_replayed == 1  # only the post-compaction record
        assert recovered.epoch == 3
        assert recovered.database.relation("edge").rows() == {(2, 3), (5, 6), (6, 7)}

    def test_stale_precompaction_records_are_skipped(self, tmp_path):
        """Records at or below the snapshot epoch replay as no-ops."""
        store, database = self._seeded(tmp_path)
        store.log_batch(1, [("insert", "edge", [(5, 6)])])
        database.insert_facts("edge", [(5, 6)])
        # covering snapshot, but a crash "before segment deletion": write the
        # snapshot without resetting the WAL
        store._write_snapshot(1, database.relations())
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.snapshot_epoch == 1
        assert recovered.records_replayed == 0
        assert recovered.database.relation("edge").rows() == {(1, 2), (2, 3), (5, 6)}

    def test_crash_before_append_leaves_nothing(self, tmp_path):
        store, _db = self._seeded(tmp_path)
        store.crash_before_append = 2
        store.log_batch(1, [("insert", "edge", [(4, 4)])])
        with pytest.raises(SimulatedCrash):
            store.log_batch(2, [("insert", "edge", [(5, 5)])])
        with pytest.raises(StorageError, match="dead"):
            store.log_batch(3, [("insert", "edge", [(6, 6)])])
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 1
        assert (4, 4) in recovered.database.relation("edge").rows()
        assert (5, 5) not in recovered.database.relation("edge").rows()

    def test_crash_after_append_is_durable(self, tmp_path):
        store, _db = self._seeded(tmp_path)
        store.crash_after_append = 1
        with pytest.raises(SimulatedCrash):
            store.log_batch(1, [("insert", "edge", [(4, 4)])])
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 1
        assert (4, 4) in recovered.database.relation("edge").rows()

    def test_acknowledged_records_survive_an_earlier_torn_tail(self, tmp_path):
        """The review scenario: tear segment A's tail, append to segment B.

        Recovery drops the torn record and opens a new segment; records
        acknowledged there are durable and a *second* recovery must replay
        them — a torn sealed tail must not swallow the later segments.
        """
        store, _db = self._seeded(tmp_path)
        store.log_batch(1, [("insert", "edge", [(4, 4)])])
        store.log_batch(2, [("insert", "edge", [(5, 5)])])
        store.close()
        last = segment_files(tmp_path)[-1]
        last.write_bytes(last.read_bytes()[:-1])  # record 2 tears mid-append

        second = DurableStore(tmp_path, fast_config())
        recovered = second.recover()
        assert recovered.epoch == 1  # the torn record never happened
        assert (5, 5) not in recovered.database.relation("edge").rows()
        second.attach(TC, recovered.database, recovered.epoch)
        second.log_batch(2, [("insert", "edge", [(6, 6)])])  # acknowledged
        second.close()

        final = DurableStore(tmp_path, fast_config()).recover()
        assert final.epoch == 2
        assert final.records_replayed == 2
        assert final.database.relation("edge").rows() == {
            (1, 2),
            (2, 3),
            (4, 4),
            (6, 6),
        }

    def test_wal_without_snapshot_is_corrupt(self, tmp_path):
        wal = WriteAheadLog(tmp_path, fsync=False)
        wal.start_segment(0)
        wal.append(b"orphan")
        wal.close()
        with pytest.raises(StorageError, match="no snapshot"):
            DurableStore(tmp_path, fast_config()).recover()


class TestStorageErrorPaths:
    """Injected disk failures: torn appends, fsync faults, snapshot faults."""

    def _seeded(self, tmp_path, **config):
        store = DurableStore(tmp_path, fast_config(**config))
        database = Database()
        database.declare("edge", 2).add_all([(1, 2), (2, 3)])
        store.attach(TC, database, 0)
        return store, database

    def test_enospc_tears_the_frame_and_recovery_drops_it(self, tmp_path):
        """ENOSPC mid-frame: partial bytes stay on disk, replay skips them."""
        store, _db = self._seeded(tmp_path)
        segment = segment_files(tmp_path)[-1]
        empty_size = segment.stat().st_size
        with inject(FaultPlan().at("wal.append", 1, FaultAction.torn())):
            with pytest.raises(StorageError, match="append failed") as info:
                store.log_batch(1, [("insert", "edge", [(4, 4)])])
        cause = info.value.__cause__
        assert isinstance(cause, OSError)
        assert store.failure is not None
        # the torn bytes really are in the file — a half-written frame
        assert segment.stat().st_size > empty_size
        with pytest.raises(StorageError, match="dead"):
            store.log_batch(2, [("insert", "edge", [(5, 5)])])
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 0  # the torn record never happened
        assert (4, 4) not in recovered.database.relation("edge").rows()

    def test_revive_reopens_a_fresh_segment_after_a_torn_append(self, tmp_path):
        """revive(): appends never continue after a possibly-torn tail."""
        store, _db = self._seeded(tmp_path)
        with inject(FaultPlan().at("wal.append", 1, FaultAction.torn())):
            with pytest.raises(StorageError):
                store.log_batch(1, [("insert", "edge", [(4, 4)])])
        torn_segment = segment_files(tmp_path)[-1]
        store.revive(0)
        assert store.failure is None
        assert store.stats.revivals == 1
        assert segment_files(tmp_path)[-1] != torn_segment
        store.log_batch(1, [("insert", "edge", [(4, 4)])])
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 1
        assert (4, 4) in recovered.database.relation("edge").rows()

    def test_fsync_failure_after_a_complete_write_is_retryable(self, tmp_path):
        """The frame is fully written when fsync fails; a revived re-append
        duplicates it and replay's epoch guard makes the duplicate a no-op."""
        store, _db = self._seeded(tmp_path, fsync=True)
        batch = [("insert", "edge", [(4, 4)])]
        with inject(FaultPlan().at("wal.fsync", 1, FaultAction.eio())):
            with pytest.raises(StorageError, match="append failed") as info:
                store.log_batch(1, batch)
        assert isinstance(info.value.__cause__, OSError)
        store.revive(0)
        store.log_batch(1, batch)  # the retry a RetryPolicy would issue
        store.close()
        recovered = DurableStore(tmp_path, fast_config(fsync=True)).recover()
        assert recovered.epoch == 1
        assert (4, 4) in recovered.database.relation("edge").rows()

    def test_snapshot_write_failure_postpones_compaction(self, tmp_path):
        """A transient snapshot fault leaves the store alive, WAL-only."""
        store, database = self._seeded(tmp_path, snapshot_interval=1)
        store.log_batch(1, [("insert", "edge", [(4, 4)])])
        database.insert_facts("edge", [(4, 4)])
        assert store.should_compact()
        with inject(FaultPlan().at("snapshot.write", 1, FaultAction.eio())):
            with pytest.raises(StorageError, match="postponed") as info:
                store.compact(1, database.relations())
        assert isinstance(info.value.__cause__, OSError)
        assert store.failure is None  # alive: WAL-only fallback
        assert store.should_compact()  # the backlog still wants compacting
        store.log_batch(2, [("insert", "edge", [(5, 5)])])  # appends still work
        database.insert_facts("edge", [(5, 5)])
        store.compact(2, database.relations())  # next attempt succeeds
        assert store.stats.compactions == 1
        store.close()
        recovered = DurableStore(tmp_path, fast_config()).recover()
        assert recovered.epoch == 2
        assert recovered.snapshot_epoch == 2
        assert (5, 5) in recovered.database.relation("edge").rows()

    def test_revive_refuses_a_simulated_crash(self, tmp_path):
        store, _db = self._seeded(tmp_path)
        store.crash_before_append = 1
        with pytest.raises(SimulatedCrash):
            store.log_batch(1, [("insert", "edge", [(4, 4)])])
        with pytest.raises(StorageError, match="not recoverable"):
            store.revive(0)
        assert store.failure is not None
        store.close()


# ----------------------------------------------------------------------
# the service, made durable
# ----------------------------------------------------------------------
class TestServicePersistence:
    def _open(self, tmp_path, program=None, **config):
        return DatalogService.open(
            tmp_path,
            program,
            storage_config=fast_config(**config),
            flush_policy=FAST,
        )

    def test_persist_and_reopen(self, tmp_path):
        service = self._open(tmp_path, TC)
        for edge in [(1, 2), (2, 3), (3, 4)]:
            service.insert("edge", edge, wait=True)
        service.delete("edge", (1, 2), wait=True)
        answers = service.query("path(X, Y)?").answers
        epoch = service.epoch
        service.close()

        reopened = self._open(tmp_path)
        assert reopened.epoch == epoch == 4
        assert reopened.query("path(X, Y)?").answers == answers
        assert str(reopened.session.program) == str(service.session.program)
        reopened.insert("edge", (4, 5), wait=True)
        assert reopened.epoch == 5
        reopened.close()

    def test_compaction_happens_under_load(self, tmp_path):
        service = self._open(tmp_path, TC, snapshot_interval=3)
        for index in range(8):
            service.insert("edge", (index, index + 1), wait=True)
        assert service.storage_stats.compactions >= 2
        final = service.query("path(X, Y)?").answers
        service.close()
        reopened = self._open(tmp_path)
        assert reopened.epoch == 8
        assert reopened.query("path(X, Y)?").answers == final
        reopened.close()

    def test_fresh_directory_requires_a_program(self, tmp_path):
        with pytest.raises(ValueError, match="program"):
            DatalogService.open(tmp_path)

    def test_explicit_database_over_existing_state_is_refused(self, tmp_path):
        # silently starting a second history would open a low-epoch WAL
        # segment whose records a later recovery's epoch guard drops
        service = self._open(tmp_path, TC)
        service.insert("edge", (1, 2), wait=True)
        service.close()
        fresh = Database()
        fresh.declare("edge", 2).add_all([(9, 9)])
        with pytest.raises(StorageError, match="already holds"):
            DatalogService(
                TC, database=fresh, storage=tmp_path, storage_config=fast_config()
            )
        # recovery (no explicit database) is still the supported reopen path
        reopened = self._open(tmp_path)
        assert reopened.epoch == 1
        assert reopened.query("path(X, Y)?").answers == {(1, 2)}
        reopened.close()

    def test_explicit_database_over_a_fresh_directory_still_works(self, tmp_path):
        seeded = Database()
        seeded.declare("edge", 2).add_all([(1, 2)])
        service = DatalogService(
            TC,
            database=seeded,
            storage=tmp_path,
            storage_config=fast_config(),
            flush_policy=FAST,
        )
        service.insert("edge", (2, 3), wait=True)
        service.close()
        reopened = self._open(tmp_path)
        assert reopened.query("path(X, Y)?").answers == {(1, 2), (2, 3), (1, 3)}
        reopened.close()

    def test_storage_failure_poisons_writes_but_not_reads(self, tmp_path):
        service = self._open(tmp_path, TC)
        service.insert("edge", (1, 2), wait=True)
        service.storage.crash_before_append = 2
        with pytest.raises(FlushError) as info:
            service.insert("edge", (2, 3), wait=True)
        assert isinstance(info.value.__cause__, SimulatedCrash)
        assert isinstance(service.storage_failed, SimulatedCrash)
        # the failed batch stays unpublished; reads keep serving epoch 1
        assert service.epoch == 1
        assert service.query("path(X, Y)?").answers == {(1, 2)}
        # later writes are refused outright: disk would diverge from memory
        with pytest.raises(FlushError, match="refuses"):
            service.insert("edge", (3, 4), wait=True)
        service.close()
        recovered = self._open(tmp_path)
        assert recovered.epoch == 1
        assert recovered.query("path(X, Y)?").answers == {(1, 2)}
        recovered.close()


# ----------------------------------------------------------------------
# satellite fixes: flush failures, close(), as_rows
# ----------------------------------------------------------------------
class TestFlushFailurePropagation:
    def test_each_waiter_gets_its_own_exception(self):
        service = DatalogService(TC, flush_policy=FAST)
        try:
            ticket = service.insert("edge", (1, 2, 3))  # arity error at flush
            outcomes = []
            lock = threading.Lock()

            def wait():
                try:
                    ticket.wait(timeout=10)
                except FlushError as exc:
                    with lock:
                        outcomes.append(exc)

            threads = [threading.Thread(target=wait) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(outcomes) == 4
            # distinct exception objects, one per waiter, sharing one cause
            assert len({id(exc) for exc in outcomes}) == 4
            causes = {id(exc.__cause__) for exc in outcomes}
            assert len(causes) == 1
            for exc in outcomes:
                assert "arity" in str(exc)
                assert exc.ticket is ticket
        finally:
            service.close()


class TestCloseBehavior:
    def test_stuck_flusher_is_surfaced_and_all_tickets_fail(self):
        service = DatalogService(TC, flush_policy=FAST)
        registry_lock = service.session.registry.lock
        registry_lock.acquire()  # wedge the flusher mid-apply
        try:
            blocked = service.insert("edge", (1, 2))
            deadline = 50
            while service.queue.pending() and deadline:
                threading.Event().wait(0.01)
                deadline -= 1
            pending = service.insert("edge", (2, 3))
            with pytest.raises(ServiceClosed, match="did not exit"):
                service.close(timeout=0.2)
            # the queued ticket was failed, not abandoned — and shutdown
            # failures surface as ServiceClosed, not a generic FlushError
            assert pending.done()
            with pytest.raises(ServiceClosed, match="stuck"):
                pending.wait(timeout=1)
            # the ticket the flusher had already drained (the in-flight
            # batch it is stuck applying) is failed too, not left to block
            # its waiters forever
            assert blocked.done()
            with pytest.raises(ServiceClosed, match="stuck"):
                blocked.wait(timeout=1)
        finally:
            registry_lock.release()
        service._flusher.join(timeout=10)
        assert not service._flusher.is_alive()
        # the flusher finished the batch once unwedged, but the outcome a
        # waiter observed is not rewritten: the first resolution wins
        with pytest.raises(ServiceClosed, match="stuck"):
            blocked.wait(timeout=1)

    def test_stuck_flusher_close_still_closes_the_store(self, tmp_path):
        service = DatalogService.open(
            tmp_path, TC, storage_config=fast_config(), flush_policy=FAST
        )
        registry_lock = service.session.registry.lock
        registry_lock.acquire()
        try:
            ticket = service.insert("edge", (1, 2))
            with pytest.raises(ServiceClosed, match="did not exit"):
                service.close(timeout=0.2)
            # the raise path must not leak the WAL handle
            assert service.storage.wal._handle is None
            assert not service.storage.attached
            with pytest.raises(ServiceClosed):
                ticket.wait(timeout=1)
        finally:
            registry_lock.release()
        service._flusher.join(timeout=10)
        assert not service._flusher.is_alive()

    def test_post_close_operations_are_consistent(self):
        service = DatalogService(TC, flush_policy=FAST)
        service.insert("edge", (1, 2), wait=True)
        service.close()
        with pytest.raises(ServiceClosed):
            service.insert("edge", (3, 4))
        with pytest.raises(ServiceClosed):
            service.query("path(X, Y)?")
        with pytest.raises(ServiceClosed):
            service.submit("path(X, Y)?")
        with pytest.raises(ServiceClosed):
            service.barrier()
        service.close()  # idempotent

    def test_clean_close_still_works(self, tmp_path):
        service = DatalogService.open(
            tmp_path, TC, storage_config=fast_config(), flush_policy=FAST
        )
        service.insert("edge", (1, 2), wait=True)
        service.close()
        assert not service._flusher.is_alive()


class TestAsRows:
    def test_single_row_and_row_lists(self):
        assert as_rows((1, 2)) == [(1, 2)]
        assert as_rows([1, 2]) == [(1, 2)]
        assert as_rows([(1, 2), (3, 4)]) == [(1, 2), (3, 4)]
        assert as_rows("solo") == [("solo",)]

    def test_empty_inputs(self):
        assert as_rows([]) == []
        assert as_rows(()) == []
        assert as_rows(iter([])) == []

    def test_generators(self):
        assert as_rows(row for row in [(1, 2), (3, 4)]) == [(1, 2), (3, 4)]
        assert as_rows(value for value in [1, 2]) == [(1,), (2,)]

    def test_mixed_rows_and_scalars_raise_with_the_offender(self):
        with pytest.raises(ValueError, match=r"element 1 is 3"):
            as_rows([(1, 2), 3])
        with pytest.raises(ValueError, match=r"element 1 is 'loose'"):
            as_rows([(1,), "loose"])
        with pytest.raises(ValueError, match="element"):
            as_rows(item for item in [(1, 2), 3])
