"""EXPLAIN ANALYZE profiles, trace-ID propagation, and the flight recorder.

Covers the ``repro.obs.profile`` tentpole at every layer it is surfaced:
``answer(..., profile=True)`` on the engine front door,
``DatalogService.query(..., profile=True)`` (plus 1/N sampling and the
forced profiles for slow / timed-out / errored queries), and the
:class:`FlightRecorder` ring behind ``/debug/queries``.  The acceptance
criterion throughout is agreement with the pinned instrumentation: a
profile's stats are the *same* totals the result reports, and its trace ID
is the one stamped on the query's spans and slow-query records.
"""

from __future__ import annotations

import json

import pytest

from repro import (
    Database,
    DatalogService,
    FlightRecorder,
    FlushPolicy,
    MetricsRegistry,
    QueryProfile,
    QueryTimeout,
    Tracer,
    answer,
    parse_program,
)
from repro.obs.profile import ProfileRecorder

TC = """
t(X, Y) :- a(X, Z), t(Z, Y).
t(X, Y) :- b(X, Y).
"""


def tc_program():
    return parse_program(TC)


def chain_database(length=60):
    return Database.from_dict(
        {"a": [(i, i + 1) for i in range(length)], "b": [(length, length + 1)]}
    )


def manual_flush_policy():
    return FlushPolicy(max_batch=1_000_000, max_delay_seconds=3600.0)


# ----------------------------------------------------------------------
# answer(..., profile=True): the engine front door
# ----------------------------------------------------------------------
class TestAnswerProfile:
    def test_profile_off_by_default(self):
        result = answer(tc_program(), chain_database(), "t(1, Y)?")
        assert result.profile is None

    def test_profile_does_not_change_answers(self):
        plain = answer(tc_program(), chain_database(), "t(1, Y)?")
        profiled = answer(tc_program(), chain_database(), "t(1, Y)?", profile=True)
        assert profiled.answers == plain.answers
        assert profiled.strategy == plain.strategy

    def test_profile_stats_are_the_result_stats(self):
        result = answer(tc_program(), chain_database(), "t(1, Y)?", profile=True)
        profile = result.profile
        assert isinstance(profile, QueryProfile)
        assert profile.outcome == "ok"
        assert profile.strategy == result.strategy
        # the profile carries the evaluation's own stats, not a copy that
        # could drift — that is the acceptance criterion
        assert profile.stats is result.stats
        assert profile.execution_seconds > 0

    def test_trace_id_is_caller_controllable(self):
        result = answer(
            tc_program(), chain_database(), "t(1, Y)?", profile=True,
            trace_id="trace-under-test",
        )
        assert result.profile.trace_id == "trace-under-test"

    def test_default_trace_ids_are_fresh(self):
        first = answer(tc_program(), chain_database(), "t(1, Y)?", profile=True)
        second = answer(tc_program(), chain_database(), "t(1, Y)?", profile=True)
        assert first.profile.trace_id != second.profile.trace_id

    def test_seminaive_profile_records_plans_and_iterations(self):
        result = answer(
            tc_program(), chain_database(), "t(X, Y)?",
            strategy="seminaive", profile=True,
        )
        profile = result.profile
        assert profile.plans, "semi-naive evaluation must record compiled plans"
        assert {plan.dispatch for plan in profile.plans} <= {
            "interpreted", "kernel", "leapfrog"
        }
        for plan in profile.plans:
            assert plan.join_order  # every body atom annotated scan/probe
            assert all("[scan]" in s or "[probe" in s for s in plan.join_order)
        assert profile.iterations, "the fixpoint loop must sample iterations"
        assert all(sample.delta_tuples >= 0 for sample in profile.iterations)
        assert profile.counters["strata_entered"] >= 1
        assert profile.counters["iterations_sampled"] == len(profile.iterations)

    def test_rewrites_come_from_the_optimizer_provenance(self):
        result = answer(tc_program(), chain_database(), "t(1, Y)?", profile=True)
        assert result.provenance is not None
        assert result.profile.rewrites == [
            str(rewrite) for rewrite in result.provenance.rewrites
        ]

    def test_render_and_as_dict_round_trip(self):
        result = answer(
            tc_program(), chain_database(), "t(X, Y)?",
            strategy="seminaive", profile=True, trace_id="render-test",
        )
        text = result.profile.render()
        for section in ("QUERY", "TRACE", "STRATEGY", "TIMING", "PLANS", "STATS"):
            assert section in text
        assert "render-test" in text
        payload = json.loads(json.dumps(result.profile.as_dict(), default=str))
        assert payload["trace_id"] == "render-test"
        assert payload["outcome"] == "ok"
        assert payload["stats"]["lookups"] == result.stats.lookups
        assert len(payload["plans"]) == len(result.profile.plans)


# ----------------------------------------------------------------------
# the recorder's caps (a pathological query cannot grow a profile forever)
# ----------------------------------------------------------------------
class TestRecorderCaps:
    def test_plans_are_capped_and_drops_counted(self):
        recorder = ProfileRecorder("q", max_plans=2)

        class FakeStep:
            predicate = "p"
            probe_columns = ()

        class FakePlan:
            rule = "p(X) :- q(X)."
            steps = (FakeStep(),)

        plans = [FakePlan() for _ in range(5)]
        for plan in plans:
            recorder.record_dispatch(plan, "kernel")
        profile = recorder.build(strategy="test")
        assert len(profile.plans) == 2
        assert profile.counters["plans_dropped"] == 3

    def test_repeat_applications_dedupe_instead_of_growing(self):
        recorder = ProfileRecorder("q", max_plans=2)

        class FakeStep:
            predicate = "p"
            probe_columns = (0,)

        class FakePlan:
            rule = "p(X) :- q(X)."
            steps = (FakeStep(),)

        plan = FakePlan()
        for _ in range(10):
            recorder.record_dispatch(plan, "kernel")
        profile = recorder.build(strategy="test")
        assert len(profile.plans) == 1
        assert profile.plans[0].applications == 10
        assert "plans_dropped" not in profile.counters

    def test_iterations_are_capped_and_drops_counted(self):
        recorder = ProfileRecorder("q", max_iterations=3)
        for iteration in range(10):
            recorder.record_iteration(0, iteration, 5, 0.001)
        profile = recorder.build(strategy="test")
        assert len(profile.iterations) == 3
        assert profile.counters["iterations_dropped"] == 7


# ----------------------------------------------------------------------
# the flight recorder ring + in-flight table
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(0)

    def test_ring_is_bounded_but_the_lifetime_counter_is_not(self):
        flight = FlightRecorder(3)
        for index in range(5):
            flight.record(QueryProfile(query=f"q{index}?", trace_id=f"t{index}"))
        assert len(flight) == 3
        assert flight.profiles_recorded == 5
        assert [p.trace_id for p in flight.profiles()] == ["t2", "t3", "t4"]

    def test_in_flight_rows_report_elapsed_and_deadline_budget(self):
        flight = FlightRecorder()
        import time

        token = flight.begin(
            "trace-1", "t(1, Y)?", deadline=time.perf_counter() + 30.0, epoch=7
        )
        (row,) = flight.in_flight()
        assert row["trace_id"] == "trace-1"
        assert row["query"] == "t(1, Y)?"
        assert row["epoch"] == 7
        assert row["elapsed_seconds"] >= 0
        assert 0 < row["deadline_seconds"] <= 30.0
        flight.end(token)
        flight.end(token)  # idempotent
        assert flight.in_flight() == []
        assert flight.in_flight_count() == 0

    def test_as_dict_is_the_debug_queries_payload(self):
        flight = FlightRecorder(2)
        flight.record(QueryProfile(query="q?", trace_id="t1"))
        payload = json.loads(json.dumps(flight.as_dict(), default=str))
        assert set(payload) == {
            "in_flight", "recent_profiles", "profiles_recorded", "capacity"
        }
        assert payload["capacity"] == 2
        assert payload["profiles_recorded"] == 1
        assert payload["recent_profiles"][0]["trace_id"] == "t1"


# ----------------------------------------------------------------------
# the service layer: profile=True, sampling, forced profiles
# ----------------------------------------------------------------------
class TestServiceProfile:
    @pytest.fixture
    def service(self):
        with DatalogService(
            TC,
            chain_database(),
            flush_policy=manual_flush_policy(),
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        ) as svc:
            yield svc

    def test_query_profile_matches_the_pinned_result_stats(self, service):
        result = service.query("t(1, Y)?", profile=True)
        profile = result.profile
        assert profile is not None
        assert profile.outcome == "ok"
        assert profile.cache == "miss"
        assert profile.epoch == service.epoch
        assert profile.stats is result.result.stats
        assert profile.trace_id.startswith("q-")
        # the profile landed in the flight recorder too
        assert [p.trace_id for p in service.flight.profiles()] == [profile.trace_id]

    def test_cache_hit_profile_reports_the_hit(self, service):
        service.query("t(1, Y)?")
        result = service.query("t(1, Y)?", profile=True)
        profile = result.profile
        assert result.cached
        assert profile.cache == "hit"
        assert profile.strategy.startswith("epoch-cache@")
        assert profile.plans == []  # nothing evaluated

    def test_unprofiled_queries_record_nothing(self, service):
        service.query("t(1, Y)?")
        service.query("t(1, Y)?")
        assert service.query("t(1, Y)?").profile is None
        assert service.flight.profiles() == []
        assert service.flight.profiles_recorded == 0

    def test_profile_sample_records_every_nth_cache_miss(self):
        with DatalogService(
            TC,
            chain_database(),
            flush_policy=manual_flush_policy(),
            profile_sample=2,
        ) as svc:
            for start in range(1, 9):
                svc.query(f"t({start}, Y)?")  # distinct keys: 8 cache misses
            profiles = svc.flight.profiles()
            assert len(profiles) == 4  # every 2nd miss
            assert all(p.sampled for p in profiles)
            assert all(not p.forced for p in profiles)

    def test_cache_hits_are_never_sampled(self):
        with DatalogService(
            TC,
            chain_database(),
            flush_policy=manual_flush_policy(),
            profile_sample=1,  # sample every miss...
        ) as svc:
            for _ in range(5):
                svc.query("t(1, Y)?")
            # ...but only the first query missed; the 4 hits evaluate nothing
            # and cost nothing, so they are exempt from sampling
            assert svc.flight.profiles_recorded == 1
            (profile,) = svc.flight.profiles()
            assert profile.cache == "miss"

    def test_slow_queries_are_force_profiled_with_matching_trace_ids(self):
        with DatalogService(
            TC,
            chain_database(),
            flush_policy=manual_flush_policy(),
            tracer=Tracer(slow_threshold_seconds=0.0),
        ) as svc:
            svc.query("t(1, Y)?")  # threshold 0: everything is "slow"
            (profile,) = svc.flight.profiles()
            assert profile.forced
            assert profile.outcome == "ok"
            (span,) = svc.tracer.slow_spans()
            assert span.name == "slow_query"
            # the slow-query record, the span and the profile share a trace ID
            assert span.attributes["trace_id"] == profile.trace_id
            assert span.attributes["strategy"] == profile.strategy
            assert span.attributes["cache"] == "miss"
            assert span.attributes["epoch"] == profile.epoch

    def test_admission_timeouts_leave_a_forced_timeout_profile(self, service):
        with pytest.raises(QueryTimeout):
            service.query("t(1, Y)?", timeout=0.0)
        (profile,) = service.flight.profiles()
        assert profile.outcome == "timeout"
        assert profile.forced
        assert profile.strategy == "admission"
        assert profile.cache == "none"

    def test_fallback_evaluation_profiles_through_the_engine_hooks(self):
        # same-generation, unbound: the auto ladder routes it to semi-naive,
        # which runs the compiled-plan engine and so feeds the plan hooks
        program = """
        sg(X, Y) :- flat(X, Y).
        sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
        """
        database = Database.from_dict(
            {"flat": [(3, 4)], "up": [(1, 3), (2, 3)], "down": [(4, 5)]}
        )
        with DatalogService(
            program, database, flush_policy=manual_flush_policy()
        ) as svc:
            # drop the materialized view so the query takes the fallback
            # evaluation path (the one the in-flight table tracks)
            svc._snapshot.views.pop("sg")
            result = svc.query("sg(X, Y)?", profile=True)
            profile = result.profile
            assert profile.cache == "miss"
            assert profile.strategy.startswith("seminaive")
            assert "@snapshot" in profile.strategy
            assert profile.plans, "fallback evaluation must record real plans"
            assert profile.stats is result.result.stats
            assert svc.stats.fallback_evaluations == 1
            assert svc.flight.in_flight_count() == 0  # deregistered on exit

    def test_timed_out_fallback_leaves_a_timeout_profile(self):
        closure = """
        t(X, Y) :- a(X, Y).
        t(X, Y) :- a(X, Z), t(Z, Y).
        """
        database = Database.from_dict({"a": [(i, i + 1) for i in range(800)]})
        with DatalogService(
            closure, database, flush_policy=manual_flush_policy()
        ) as svc:
            svc._snapshot.views.pop("t")
            with pytest.raises(QueryTimeout):
                # the full unbound closure is ~320k tuples: the cooperative
                # per-iteration deadline check fires long before it finishes
                svc.query("t(X, Y)?", timeout=0.05)
            (profile,) = svc.flight.profiles()
            assert profile.outcome == "timeout"
            assert profile.cache == "miss"
            assert profile.strategy == "fallback"
            assert svc.flight.in_flight_count() == 0

    def test_statusz_counts_agree_with_the_flight_recorder(self, service):
        service.query("t(1, Y)?", profile=True)
        report = service._status_report()
        assert report["queries"]["profiles_recorded"] == 1
        assert report["queries"]["in_flight"] == 0
        assert report["queries"]["flight_capacity"] == service.flight.capacity
