"""Pinned lookup accounting on the paper's Figure 7 / Figure 8 workloads.

These tests freeze the restricted/unrestricted lookup counts of the one-sided
selection algorithms on small deterministic workloads, so an engine or
storage-layer change cannot silently regress the paper's Property 3 ("never
do an unrestricted lookup on a nonrecursive relation").  The counts are exact
and hand-derivable:

* Figure 7 (Aho–Ullman), ``t(X, 8)?`` on the 8-edge chain ``0 → 1 → ... → 8``
  with ``b = a``: one restricted select on ``b`` plus one restricted semijoin
  against ``a`` per carry value — 9 lookups, 8 tuples examined, 8 iterations.
* Figure 8 (Henschen–Naqvi), ``t(0, Y)?`` on the same chain: two initial
  selects (``a`` and ``b``), one semijoin per loop iteration (8), and the
  final ``seen ⋈ b`` pass (8 values) — 18 lookups, 16 tuples examined.

Crucially the counts must be *identical* when the database is padded with
irrelevant chains: the algorithms only ever probe through the selection
constant, so irrelevant data costs nothing.  Semi-naive evaluation on the
same workload performs unrestricted scans — pinned here as the contrast that
makes the property observable.
"""

from __future__ import annotations

import pytest

from repro.core import aho_ullman_selection, henschen_naqvi_selection, one_sided_query
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import chain, edge_database, transitive_closure

PROGRAM = transitive_closure()
CHAIN_LENGTH = 8  # chain 0 -> 1 -> ... -> 8


def bare_database():
    return edge_database(chain(CHAIN_LENGTH))


def padded_database(segments: int = 50):
    """The chain plus ``segments`` disjoint chains irrelevant to the queries."""
    edges = chain(CHAIN_LENGTH)
    for index in range(segments):
        base = 10_000 + index * (CHAIN_LENGTH + 1)
        edges.extend(chain(CHAIN_LENGTH, start=base))
    return edge_database(edges)


class TestFigure7Accounting:
    @pytest.mark.parametrize("database_factory", [bare_database, padded_database])
    def test_pinned_counts(self, database_factory):
        answers, stats = aho_ullman_selection(database_factory(), CHAIN_LENGTH)
        assert answers == set(range(CHAIN_LENGTH))
        assert stats.unrestricted_lookups == 0  # Property 3
        assert stats.lookups == 9  # 1 select on b + 8 restricted semijoins on a
        assert stats.tuples_examined == 8
        assert stats.iterations == 8

    def test_counts_independent_of_irrelevant_data(self):
        _, bare = aho_ullman_selection(bare_database(), CHAIN_LENGTH)
        _, padded = aho_ullman_selection(padded_database(), CHAIN_LENGTH)
        assert bare.lookups == padded.lookups
        assert bare.tuples_examined == padded.tuples_examined
        assert bare.unrestricted_lookups == padded.unrestricted_lookups == 0


class TestFigure8Accounting:
    @pytest.mark.parametrize("database_factory", [bare_database, padded_database])
    def test_pinned_counts(self, database_factory):
        answers, stats = henschen_naqvi_selection(database_factory(), 0)
        assert answers == set(range(1, CHAIN_LENGTH + 1))
        assert stats.unrestricted_lookups == 0  # Property 3
        # 2 initial selects + 8 loop semijoins + 8 final b-probes (one per seen value)
        assert stats.lookups == 18
        assert stats.tuples_examined == 16
        assert stats.iterations == 8

    def test_counts_independent_of_irrelevant_data(self):
        _, bare = henschen_naqvi_selection(bare_database(), 0)
        _, padded = henschen_naqvi_selection(padded_database(), 0)
        assert bare.lookups == padded.lookups
        assert bare.tuples_examined == padded.tuples_examined
        assert bare.unrestricted_lookups == padded.unrestricted_lookups == 0


class TestOneSidedSchemaAccounting:
    """The generic Figure 9 schema must match the hand transcriptions' economy."""

    def test_backward_selection_matches_figure_7(self):
        result = one_sided_query(PROGRAM, padded_database(), SelectionQuery.of("t", 2, {1: CHAIN_LENGTH}))
        assert result.stats.unrestricted_lookups == 0
        assert result.stats.lookups == 9

    def test_forward_selection_matches_figure_8(self):
        result = one_sided_query(PROGRAM, padded_database(), SelectionQuery.of("t", 2, {0: 0}))
        assert result.stats.unrestricted_lookups == 0
        assert result.stats.lookups == 18


class TestSeminaiveContrast:
    def test_seminaive_performs_unrestricted_scans(self):
        """The baseline's unrestricted count is what Figures 7/8 save."""
        _, stats = seminaive_query(PROGRAM, bare_database(), "t", {1: CHAIN_LENGTH})
        assert stats.unrestricted_lookups > 0
        assert stats.lookups > 18


class TestMaintenanceAccounting:
    """Pinned maintenance counters, extending Fig. 7/8 accounting to updates.

    The counts are exact and hand-derivable on the 0 -> 1 -> ... -> 8 chain
    (``b = a``), whose closure has 36 tuples.  Appending edge (8, 9):
    ``a(8, 9)`` alone derives nothing (no exit fact behind it), then
    ``b(8, 9)`` inserts t(8,9) and closes t(k,9) for every k — 9 tuples.
    Cutting edge (0, 1) afterwards deletes the 8 tuples riding ``a(0, 1)`` —
    t(0,k) for k = 2..9 — none rederivable, then ``b(0, 1)`` kills the
    exit-only t(0,1).
    """

    def test_dred_insert_and_delete_counters_are_exact(self):
        from repro import Session

        session = Session(PROGRAM, bare_database())
        assert len(session.view.derived["t"]) == 36

        session.insert("a", (CHAIN_LENGTH, CHAIN_LENGTH + 1))
        assert session.last_stats.tuples_inserted == 0

        session.insert("b", (CHAIN_LENGTH, CHAIN_LENGTH + 1))
        assert session.last_stats.tuples_inserted == CHAIN_LENGTH + 1  # t(k, 9) for k = 0..8
        # the only unrestricted scans are of the carry itself — one for the
        # seeded b-delta round plus one per closure iteration, never a stored
        # relation (Property 3 carried over to maintenance)
        assert session.last_stats.unrestricted_lookups == session.last_stats.iterations + 1

        session.delete("a", (0, 1))
        assert session.last_stats.tuples_deleted == CHAIN_LENGTH  # t(0, k) for k = 2..9
        assert session.last_stats.tuples_rederived == 0

        session.delete("b", (0, 1))
        assert session.last_stats.tuples_deleted == 1  # t(0, 1) was exit-only
        assert len(session.view.derived["t"]) == 36 + (CHAIN_LENGTH + 1) - CHAIN_LENGTH - 1

    def test_counting_insert_and_delete_counters_are_exact(self):
        from repro import Database, Session
        from repro.workloads import bounded_swap

        session = Session(bounded_swap(), Database.from_dict({"a": [(1, 2)], "b": [(2, 1)]}))
        assert session.view.strategy == "counting"
        assert session.view.derived["t"].rows() == {(1, 2), (2, 1)}

        session.insert("b", (3, 4))
        assert session.last_stats.tuples_inserted == 1  # t(3, 4)
        session.insert("a", (4, 3))
        assert session.last_stats.tuples_inserted == 1  # t(4, 3) = a(4,3) ∧ b(3,4)
        session.delete("b", (3, 4))
        assert session.last_stats.tuples_deleted == 2  # both ride the dead exit fact
        assert session.last_stats.tuples_rederived == 0  # counting never rederives
        assert session.view.derived["t"].rows() == {(1, 2), (2, 1)}
