"""Tests for the strategy-selecting query processor (:mod:`repro.core.planner`)."""

from __future__ import annotations

import pytest

from repro.core import answer_query
from repro.datalog import Database, EvaluationError, NotOneSidedError
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    buys_database,
    buys_unoptimized,
    canonical_two_sided,
    chain,
    edge_database,
    nonlinear_tc,
    relations_database,
    random_pairs,
    tc_with_permissions,
    transitive_closure,
)


class TestStrategySelection:
    def test_one_sided_recursion_uses_the_schema(self, tc_program, chain_db):
        result = answer_query(tc_program, chain_db, "t(0, Y)?")
        assert result.strategy.startswith("one-sided")
        assert result.answers == {(0, 100)}

    def test_two_sided_recursion_falls_back_to_magic(self, two_sided_program):
        database = relations_database(
            a=random_pairs(12, 6, seed=1), b=random_pairs(5, 6, seed=2), c=random_pairs(12, 6, seed=3)
        )
        result = answer_query(two_sided_program, database, "t(1, Y)?")
        assert "magic" in result.strategy
        reference, _ = seminaive_query(two_sided_program, database, "t", {0: 1})
        assert result.answers == reference

    def test_unbound_query_on_two_sided_uses_seminaive(self, two_sided_program):
        database = relations_database(
            a=random_pairs(10, 5, seed=4), b=random_pairs(4, 5, seed=5), c=random_pairs(10, 5, seed=6)
        )
        result = answer_query(two_sided_program, database, "t(X, Y)?")
        assert "seminaive" in result.strategy

    def test_buys_is_optimized_then_answered_one_sided(self):
        """The planner applies the Section 3 optimization before evaluating."""
        program = buys_unoptimized()
        database = buys_database(people=12, items=8, seed=3)
        result = answer_query(program, database, "buys(person0, Y)?")
        assert result.strategy.startswith("one-sided")
        reference, _ = seminaive_query(program, database, "buys", {0: "person0"})
        assert result.answers == reference

    def test_nonlinear_recursion_still_gets_answered(self):
        program = nonlinear_tc()
        database = edge_database(chain(5))
        result = answer_query(program, database, "t(0, Y)?")
        reference, _ = seminaive_query(program, database, "t", {0: 0})
        assert result.answers == reference


class TestForcedStrategies:
    @pytest.mark.parametrize("strategy", ["one-sided", "magic", "seminaive", "naive"])
    def test_all_strategies_agree_on_tc(self, strategy, tc_program, small_graph_db):
        query = SelectionQuery.of("t", 2, {0: 0})
        result = answer_query(tc_program, small_graph_db, query, strategy=strategy)
        reference, _ = seminaive_query(tc_program, small_graph_db, "t", {0: 0})
        assert result.answers == reference

    def test_forced_one_sided_rejects_two_sided(self, two_sided_program):
        database = relations_database(a=[(1, 2)], b=[(2, 3)], c=[(3, 4)])
        with pytest.raises(NotOneSidedError):
            answer_query(two_sided_program, database, "t(1, Y)?", strategy="one-sided")

    def test_unknown_strategy_rejected(self, tc_program, chain_db):
        with pytest.raises(EvaluationError):
            answer_query(tc_program, chain_db, "t(0, Y)?", strategy="quantum")


class TestQueryForms:
    def test_accepts_query_strings_atoms_and_objects(self, tc_program, chain_db):
        from repro.datalog import parse_query

        as_string = answer_query(tc_program, chain_db, "t(0, Y)?")
        as_atom = answer_query(tc_program, chain_db, parse_query("t(0, Y)?"))
        as_query = answer_query(tc_program, chain_db, SelectionQuery.of("t", 2, {0: 0}))
        assert as_string.answers == as_atom.answers == as_query.answers

    def test_permissions_example(self):
        from repro.workloads import permissions_database, random_graph

        program = tc_with_permissions()
        database = permissions_database(random_graph(9, 18, seed=9), seed=9)
        result = answer_query(program, database, "t(1, Y)?")
        reference, _ = seminaive_query(program, database, "t", {0: 1})
        assert result.answers == reference
        assert result.strategy.startswith("one-sided")
