"""Unit tests for :mod:`repro.engine.query`."""

from __future__ import annotations

import pytest

from repro.datalog import EvaluationError, parse_query
from repro.engine.instrumentation import EvaluationStats
from repro.engine.query import QueryResult, SelectionQuery


class TestSelectionQuery:
    def test_of_builds_sorted_bindings(self):
        query = SelectionQuery.of("t", 3, {2: "x", 0: 1})
        assert query.bindings == ((0, 1), (2, "x"))
        assert query.bound_columns() == (0, 2)
        assert query.free_columns() == (1,)

    def test_of_rejects_out_of_range_columns(self):
        with pytest.raises(EvaluationError):
            SelectionQuery.of("t", 2, {5: 1})

    def test_from_atom(self):
        query = SelectionQuery.from_atom(parse_query("t(1, Y)?"))
        assert query.predicate == "t"
        assert query.bindings_dict() == {0: 1}
        assert query.free_columns() == (1,)

    def test_from_atom_all_free(self):
        query = SelectionQuery.from_atom(parse_query("t(X, Y)?"))
        assert query.bindings == ()
        assert query.free_columns() == (0, 1)

    def test_from_atom_rejects_repeated_variables(self):
        with pytest.raises(EvaluationError):
            SelectionQuery.from_atom(parse_query("t(X, X)?"))

    def test_matches_and_select(self):
        query = SelectionQuery.of("t", 2, {0: 1})
        assert query.matches((1, 5))
        assert not query.matches((2, 5))
        assert query.select({(1, 5), (2, 5), (1, 6)}) == {(1, 5), (1, 6)}

    def test_str_shows_constants_and_columns(self):
        assert str(SelectionQuery.of("t", 2, {1: "n0"})) == "t(C0, n0)?"

    def test_hashable(self):
        assert SelectionQuery.of("t", 2, {0: 1}) == SelectionQuery.of("t", 2, {0: 1})
        assert len({SelectionQuery.of("t", 2, {0: 1}), SelectionQuery.of("t", 2, {0: 2})}) == 2


class TestQueryResult:
    def test_len_and_projection(self):
        query = SelectionQuery.of("t", 2, {0: 1})
        result = QueryResult(query, {(1, 5), (1, 6)}, EvaluationStats(), strategy="test")
        assert len(result) == 2
        assert result.projected() == {(5,), (6,)}

    def test_str_mentions_strategy(self):
        query = SelectionQuery.of("t", 2, {0: 1})
        result = QueryResult(query, set(), EvaluationStats(), strategy="one-sided-forward")
        assert "one-sided-forward" in str(result)
