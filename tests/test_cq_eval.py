"""Unit tests for bound-aware conjunctive-query evaluation (:mod:`repro.engine.cq_eval`)."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import parse_atom, parse_rule
from repro.datalog.relation import Relation
from repro.datalog.terms import Variable
from repro.engine.cq_eval import (
    as_relation,
    evaluate_body,
    evaluate_body_project,
    evaluate_rule,
    evaluate_rule_with_delta,
    plan_order,
)
from repro.engine.instrumentation import EvaluationStats


@pytest.fixture
def relations():
    return {
        "a": Relation("a", 2, [(1, 2), (2, 3), (3, 4)]),
        "b": Relation("b", 2, [(4, 5), (2, 9)]),
        "p": Relation("p", 1, [(2,), (3,)]),
    }


def brute_force(atoms, relations, bindings=None):
    """Reference implementation: enumerate every combination of rows."""
    variables = sorted({v for atom in atoms for v in atom.variable_set()}, key=str)
    results = []
    row_choices = [sorted(relations.get(atom.predicate, Relation(atom.predicate, atom.arity)).rows()) for atom in atoms]
    for combination in itertools.product(*row_choices):
        assignment = dict(bindings or {})
        consistent = True
        for atom, row in zip(atoms, combination):
            for arg, value in zip(atom.args, row):
                if isinstance(arg, Variable):
                    if arg in assignment and assignment[arg] != value:
                        consistent = False
                        break
                    assignment[arg] = value
                elif arg.value != value:
                    consistent = False
                    break
            if not consistent:
                break
        if consistent:
            results.append({v: assignment[v] for v in variables if v in assignment})
    return {tuple(sorted(result.items(), key=lambda kv: str(kv[0]))) for result in results}


class TestEvaluateBody:
    def test_single_atom(self, relations):
        atoms = [parse_atom("a(X, Y)")]
        assignments = evaluate_body(atoms, relations)
        assert len(assignments) == 3

    def test_join_two_atoms(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)")]
        assignments = evaluate_body(atoms, relations)
        pairs = {(a[Variable("X")], a[Variable("Y")]) for a in assignments}
        assert pairs == {(3, 5), (1, 9)}

    def test_bindings_restrict_results(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)")]
        assignments = evaluate_body(atoms, relations, {Variable("X"): 3})
        assert len(assignments) == 1
        assert assignments[0][Variable("Y")] == 5

    def test_constants_in_atoms(self, relations):
        assignments = evaluate_body([parse_atom("a(1, Z)")], relations)
        assert [a[Variable("Z")] for a in assignments] == [2]

    def test_repeated_variable_in_atom(self):
        loops = {"e": Relation("e", 2, [(1, 1), (1, 2), (3, 3)])}
        assignments = evaluate_body([parse_atom("e(X, X)")], loops)
        assert {a[Variable("X")] for a in assignments} == {1, 3}

    def test_missing_relation_gives_no_answers(self, relations):
        assert evaluate_body([parse_atom("ghost(X)")], relations) == []

    def test_unsatisfiable_conjunction(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("p(X)"), parse_atom("b(X, Z)")]
        assert evaluate_body(atoms, relations) == []

    def test_matches_brute_force_on_paper_string(self, relations):
        atoms = [parse_atom("a(X, Z0)"), parse_atom("a(Z0, Z1)"), parse_atom("b(Z1, Y)")]
        fast = evaluate_body(atoms, relations)
        fast_set = {tuple(sorted(a.items(), key=lambda kv: str(kv[0]))) for a in fast}
        assert fast_set == brute_force(atoms, relations)

    def test_stats_count_restricted_lookups(self, relations):
        stats = EvaluationStats()
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)")]
        evaluate_body(atoms, relations, {Variable("X"): 1}, stats)
        assert stats.lookups >= 2
        assert stats.unrestricted_lookups == 0

    def test_unbound_first_atom_is_unrestricted(self, relations):
        stats = EvaluationStats()
        evaluate_body([parse_atom("a(X, Y)")], relations, stats=stats)
        assert stats.unrestricted_lookups == 1


class TestPlanOrder:
    def test_bound_atoms_come_first(self, relations):
        atoms = [parse_atom("b(Z, Y)"), parse_atom("a(X, Z)")]
        order = plan_order(atoms, {Variable("X")}, relations)
        assert order[0] == 1  # a(X, Z) has a bound argument

    def test_order_is_a_permutation(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)"), parse_atom("p(X)")]
        order = plan_order(atoms, set(), relations)
        assert sorted(order) == [0, 1, 2]

    def test_constants_count_as_bound(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(4, Y)")]
        order = plan_order(atoms, set(), relations)
        assert order[0] == 1


class TestEvaluateRule:
    def test_head_projection(self, relations):
        rule = parse_rule("reach(X, Y) :- a(X, Z), b(Z, Y).")
        assert evaluate_rule(rule, relations) == {(3, 5), (1, 9)}

    def test_head_constants(self, relations):
        rule = parse_rule("tagged(X, special) :- p(X).")
        assert evaluate_rule(rule, relations) == {(2, "special"), (3, "special")}

    def test_unbound_head_variable_produces_nothing(self, relations):
        rule = parse_rule("weird(X, Q) :- p(X).")
        assert evaluate_rule(rule, relations) == set()

    def test_delta_evaluation_restricts_one_occurrence(self, relations):
        rule = parse_rule("t(X, Y) :- a(X, Z), t(Z, Y).")
        full_t = Relation("t", 2, [(2, 9), (4, 5)])
        delta = Relation("t", 2, [(4, 5)])
        with_delta = evaluate_rule_with_delta(rule, {**relations, "t": full_t}, "t", delta)
        assert with_delta == {(3, 5)}
        without_delta = evaluate_rule_with_delta(rule, {**relations, "t": full_t}, "t", full_t)
        assert without_delta == {(3, 5), (1, 9)}


class TestEvaluateBodyProject:
    def test_projection_onto_variables(self, relations):
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)")]
        projected = evaluate_body_project(atoms, relations, [Variable("Y"), Variable("X")])
        assert projected == {(5, 3), (9, 1)}

    def test_unbound_output_variable_becomes_none(self, relations):
        projected = evaluate_body_project([parse_atom("p(X)")], relations, [Variable("X"), Variable("Missing")])
        assert projected == {(2, None), (3, None)}

    def test_as_relation_wraps_tuples(self):
        relation = as_relation("tmp", 2, {(1, 2), (3, 4)})
        assert relation.arity == 2
        assert set(relation.lookup({0: 1})) == {(1, 2)}


class TestRandomisedAgainstBruteForce:
    @settings(max_examples=30, deadline=None)
    @given(
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=15),
        st.sets(st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=15),
    )
    def test_two_atom_join_matches_brute_force(self, a_rows, b_rows):
        relations = {"a": Relation("a", 2, a_rows), "b": Relation("b", 2, b_rows)}
        atoms = [parse_atom("a(X, Z)"), parse_atom("b(Z, Y)")]
        fast = evaluate_body(atoms, relations)
        fast_set = {tuple(sorted(x.items(), key=lambda kv: str(kv[0]))) for x in fast}
        assert fast_set == brute_force(atoms, relations)
