"""Update-sequence differential fuzzing: views must equal recomputation.

The incremental layer's tier-1 foothold: 28 deterministic seeds spanning
every generator family replay randomized insert/delete scripts through a
``repro.Session`` and assert, after *every* step, that the maintained view is
tuple-for-tuple identical to a from-scratch semi-naive evaluation of the
original program — deletions included, so DRed's over-delete/rederive cycle
and counting's exact decrements are both exercised against ground truth.
Any failure names its seed, so it reproduces with
``generate_update_sequence(seed)``.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    generate_update_sequence,
    generate_update_sequences,
    run_update_batch,
    run_update_sequence,
)

SEED_COUNT = 28  # 4 full passes over the 7 generator families


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_view_matches_recompute_after_every_step(seed):
    report = run_update_sequence(generate_update_sequence(seed))
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)


def test_generation_is_deterministic():
    first = generate_update_sequence(11)
    second = generate_update_sequence(11)
    assert first.base.family == second.base.family
    assert first.steps == second.steps


def test_batch_exercises_both_strategies_and_both_operations():
    """The harness must cover what it claims: counting AND DRed, inserts AND deletes."""
    cases = generate_update_sequences(SEED_COUNT)
    operations = {step.op for case in cases for step in case.steps}
    assert operations == {"insert", "delete"}

    reports, strategies = run_update_batch(cases)
    assert all(report.ok for report in reports)
    assert strategies.get("counting", 0) >= 3  # the bounded family unfolds, then counts
    assert strategies.get("dred", 0) >= SEED_COUNT // 2

    # every check actually ran: initial state plus one per executed step
    for report in reports:
        assert report.checks == len(report.case.steps) + 1


def test_deletions_touch_recursive_views():
    """At least one DRed case must delete from a recursive view's EDB.

    Deleting under recursion is the hard case (mutual support through
    cycles); the batch would be toothless if deletions only ever landed on
    counting views.
    """
    cases = generate_update_sequences(SEED_COUNT)
    reports, _strategies = run_update_batch(cases)
    dred_deletes = [
        report
        for report in reports
        if report.strategy == "dred"
        and any(step.op == "delete" for step in report.case.steps)
    ]
    assert len(dred_deletes) >= 5
