"""Tests for the ``frozen``-variable path of :func:`repro.cq.minimize.minimize`.

``frozen`` lists extra variables the folding must preserve beyond the
distinguished ones; redundancy removal and the unfolding pass use it when a
string will later be recombined with other atoms.  The path previously had
no direct tests.
"""

from __future__ import annotations

from repro.cq.minimize import is_minimal, minimize
from repro.cq.strings import ExpansionString
from repro.datalog import parse_atom
from repro.datalog.terms import Variable

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def two_branch_string() -> ExpansionString:
    """``t(X) :- a(X, Y), a(X, Z)`` — the two branches fold onto each other."""
    return ExpansionString((X,), (parse_atom("a(X, Y)"), parse_atom("a(X, Z)")))


class TestFrozenVariables:
    def test_without_frozen_the_branches_fold(self):
        minimized = minimize(two_branch_string())
        assert len(minimized.atoms) == 1

    def test_freezing_one_variable_keeps_its_atom(self):
        minimized = minimize(two_branch_string(), frozen={Y})
        assert minimized.atoms == (parse_atom("a(X, Y)"),)

    def test_freezing_the_other_variable_keeps_the_other_atom(self):
        minimized = minimize(two_branch_string(), frozen={Z})
        assert minimized.atoms == (parse_atom("a(X, Z)"),)

    def test_freezing_both_variables_blocks_all_folding(self):
        string = two_branch_string()
        assert minimize(string, frozen={Y, Z}) == string

    def test_frozen_variable_absent_from_string_changes_nothing(self):
        string = two_branch_string()
        assert minimize(string, frozen={Variable("Q")}).atoms == minimize(string).atoms

    def test_frozen_preserved_through_longer_chains(self):
        """A frozen midpoint keeps its chain atoms; a free one folds away."""
        chain = ExpansionString(
            (X,),
            (parse_atom("e(X, Y)"), parse_atom("e(Y, Z)"), parse_atom("e(X, W)")),
        )
        free = minimize(chain)
        assert len(free.atoms) == 2  # e(X, W) folds onto e(X, Y)
        frozen = minimize(chain, frozen={Variable("W")})
        assert parse_atom("e(X, W)") in frozen.atoms

    def test_provenance_follows_the_kept_atoms(self):
        from repro.cq.strings import AtomProvenance

        string = ExpansionString(
            (X,),
            (parse_atom("a(X, Y)"), parse_atom("a(X, Z)")),
            (AtomProvenance(0, False), AtomProvenance(1, True)),
        )
        minimized = minimize(string, frozen={Z})
        assert minimized.atoms == (parse_atom("a(X, Z)"),)
        assert minimized.provenance == (AtomProvenance(1, True),)

    def test_is_minimal_ignores_frozen(self):
        assert not is_minimal(two_branch_string())
        assert is_minimal(minimize(two_branch_string()))
