"""Tests for the Section 4 cross-product ([JAN87]) rewriting."""

from __future__ import annotations

import pytest

from repro.core import (
    classify,
    cross_product_rewriting,
    materialize_combined_relation,
    one_sided_query,
)
from repro.datalog import Database, ProgramError, parse_program
from repro.engine import EvaluationStats, SelectionQuery, seminaive_evaluate, seminaive_query
from repro.workloads import canonical_two_sided, chain, transitive_closure


@pytest.fixture
def two_sided_db() -> Database:
    return Database.from_dict(
        {
            "a": chain(4),
            "b": [(4, "z0")],
            "c": [(f"z{i}" if i else "z0", f"z{i + 1}") for i in range(6)],
        }
    )


class TestRewriting:
    def test_combined_rule_shape(self, two_sided_program):
        rewriting = cross_product_rewriting(two_sided_program, "t")
        assert rewriting.combined_rule.head.arity == 4
        assert {a.predicate for a in rewriting.combined_rule.body} == {"a", "c"}
        recursive_rule = rewriting.rewritten.linear_recursive_rule("t")
        assert len(recursive_rule.nonrecursive_atoms()) == 1

    def test_two_sided_rewriting_introduces_cross_product(self, two_sided_program):
        assert cross_product_rewriting(two_sided_program, "t").introduces_cross_product

    def test_one_sided_rewriting_does_not(self, tc_program):
        rewriting = cross_product_rewriting(tc_program, "t")
        assert not rewriting.introduces_cross_product

    def test_rewritten_two_sided_recursion_looks_one_sided(self, two_sided_program):
        """The paper: the rewritten recursion is 'superficially a one-sided recursion'."""
        rewriting = cross_product_rewriting(two_sided_program, "t")
        report = classify(rewriting.rewritten, "t")
        assert report.is_one_sided

    def test_name_collisions_are_avoided(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W), t(W, Z), c(Z, Y).
            t(X, Y) :- b(X, Y).
            a_c_combined(X) :- a(X, X).
            """
        )
        rewriting = cross_product_rewriting(program, "t")
        assert rewriting.combined_predicate != "a_c_combined"

    def test_rejects_rules_without_nonrecursive_atoms(self):
        program = parse_program("t(X, Y) :- t(Y, X). t(X, Y) :- b(X, Y).")
        with pytest.raises(ProgramError):
            cross_product_rewriting(program, "t")


class TestSemantics:
    def test_rewritten_program_is_equivalent(self, two_sided_program, two_sided_db):
        rewriting = cross_product_rewriting(two_sided_program, "t")
        original = seminaive_evaluate(two_sided_program, two_sided_db)["t"].rows()
        rewritten = seminaive_evaluate(rewriting.rewritten, two_sided_db)["t"].rows()
        assert original == rewritten

    def test_materialized_relation_is_the_cross_product(self, two_sided_program, two_sided_db):
        rewriting = cross_product_rewriting(two_sided_program, "t")
        stats = EvaluationStats()
        combined = materialize_combined_relation(rewriting, two_sided_db, stats)
        assert len(combined) == len(two_sided_db.relation("a")) * len(two_sided_db.relation("c"))
        assert stats.unrestricted_lookups >= 1

    def test_property_3_violation_is_measurable(self, two_sided_program, two_sided_db):
        """Evaluating a selection through the rewriting examines all of c."""
        rewriting = cross_product_rewriting(two_sided_program, "t")
        stats = EvaluationStats()
        combined = materialize_combined_relation(rewriting, two_sided_db, stats)
        extended = two_sided_db.copy()
        extended.add_relation(combined)
        query = SelectionQuery.of("t", 2, {0: 0})
        result = one_sided_query(rewriting.rewritten, extended, query, stats=stats)
        reference, _ = seminaive_query(two_sided_program, two_sided_db, "t", {0: 0})
        assert result.answers == reference
        # the combined relation alone is already as large as |a| x |c|
        assert stats.tuples_examined >= len(two_sided_db.relation("c"))
