"""EXPLAIN without executing: ``repro.explain`` plan-only profiles.

The contract under test: ``explain(program, query, database)`` predicts the
strategy the ``auto`` front door picks (it replays the same decision ladder
the rewrites drive), describes the compiled join plans with their predicted
dispatch, reports the optimizer rewrite provenance — and touches no stored
tuple while doing any of it.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro import Database, QueryProfile, answer, explain, parse_program

TC = """
t(X, Y) :- a(X, Z), t(Z, Y).
t(X, Y) :- b(X, Y).
"""

SG = """
sg(X, Y) :- flat(X, Y).
sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).
"""


def tc_database():
    return Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})


def sg_database():
    return Database.from_dict(
        {"flat": [(3, 4)], "up": [(1, 3), (2, 3)], "down": [(4, 5)]}
    )


class TestExplain:
    def test_explain_is_plan_only(self):
        profile = explain(parse_program(TC), "t(1, Y)?", tc_database())
        assert isinstance(profile, QueryProfile)
        assert profile.outcome == "plan-only"
        assert profile.iterations == []
        assert profile.stats.as_dict()["lookups"] == 0
        assert profile.stats.as_dict()["tuples_examined"] == 0

    def test_explain_does_not_touch_the_database(self):
        database = tc_database()
        before = {
            relation.name: set(relation.rows()) for relation in database.relations()
        }
        explain(parse_program(TC), "t(1, Y)?", database)
        after = {
            relation.name: set(relation.rows()) for relation in database.relations()
        }
        assert after == before

    @pytest.mark.parametrize(
        ("program_text", "database_factory", "query"),
        [
            (TC, tc_database, "t(1, Y)?"),
            (TC, tc_database, "t(X, Y)?"),
            (SG, sg_database, "sg(1, Y)?"),
            (SG, sg_database, "sg(X, Y)?"),
        ],
    )
    def test_prediction_matches_what_answer_picks(
        self, program_text, database_factory, query
    ):
        program = parse_program(program_text)
        database = database_factory()
        predicted = explain(program, query, database).strategy
        actual = answer(program, database, query).strategy
        # the prediction names the strategy family; the executed strategy may
        # add a direction suffix (one-sided-forward/-backward)
        family = predicted.split(" (", 1)[0]
        assert actual.startswith(family), f"predicted {predicted!r}, ran {actual!r}"

    def test_plans_describe_join_order_and_dispatch(self):
        profile = explain(parse_program(TC), "t(1, Y)?", tc_database())
        assert profile.plans
        for plan in profile.plans:
            assert plan.dispatch in {"interpreted", "kernel", "leapfrog"}
            assert all("[scan]" in s or "[probe" in s for s in plan.join_order)
        rendered = profile.render()
        assert "PLANS" in rendered
        assert "STRATEGY" in rendered
        assert "TIMING" not in rendered  # nothing ran, so nothing to time

    def test_rewrite_provenance_is_reported(self):
        profile = explain(parse_program(TC), "t(1, Y)?", tc_database())
        assert profile.rewrites
        assert any("sidedness" in line for line in profile.rewrites)

    def test_explain_works_without_a_database(self):
        profile = explain(parse_program(TC), "t(1, Y)?")
        assert profile.outcome == "plan-only"
        assert profile.plans  # join orders fall back to the written order

    def test_explain_of_an_undefined_predicate_still_explains(self):
        # the optimizer cannot run (the predicate has no rules), but explain
        # degrades to the semi-naive prediction instead of raising
        profile = explain(parse_program(TC), "nope(1, Y)?", tc_database())
        assert profile.outcome == "plan-only"
        assert profile.strategy.startswith("seminaive")

    def test_profile_serializes_for_debug_queries(self):
        profile = explain(parse_program(SG), "sg(1, Y)?", sg_database())
        payload = json.loads(json.dumps(profile.as_dict(), default=str))
        assert payload["outcome"] == "plan-only"
        assert payload["plans"]

    def test_explain_is_exported_at_top_level(self):
        assert "explain" in repro.__all__
        assert repro.explain is explain
