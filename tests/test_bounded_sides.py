"""Tests for the Section 5 extension: selections covering every unbounded side.

The paper's conclusion observes that `sg(john, june)?` — a query on the
canonical two-sided recursion that binds *both* columns — can be evaluated
with essentially the one-sided schema, because each unbounded connected set of
the expansion contains a selection constant.  The library implements that
observation: :func:`repro.core.selection_covers_unbounded_sides` detects the
situation and the planner routes such queries to the Figure 9 schema.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import answer_query, selection_covers_unbounded_sides
from repro.datalog import ProgramError
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    canonical_two_sided,
    example_3_5,
    nonlinear_tc,
    random_pairs,
    relations_database,
    same_generation,
    same_generation_database,
    tc_with_permissions,
    transitive_closure,
)


class TestCoverageDetection:
    def test_same_generation_needs_both_columns(self):
        program = same_generation()
        assert selection_covers_unbounded_sides(program, "sg", {0, 1})
        assert not selection_covers_unbounded_sides(program, "sg", {0})
        assert not selection_covers_unbounded_sides(program, "sg", {1})
        assert not selection_covers_unbounded_sides(program, "sg", set())

    def test_canonical_two_sided_needs_both_columns(self):
        program = canonical_two_sided()
        assert selection_covers_unbounded_sides(program, "t", {0, 1})
        assert not selection_covers_unbounded_sides(program, "t", {1})

    def test_one_sided_recursion_head_side_selection_covers(self):
        assert selection_covers_unbounded_sides(transitive_closure(), "t", {0})
        assert selection_covers_unbounded_sides(tc_with_permissions(), "t", {0})
        assert selection_covers_unbounded_sides(tc_with_permissions(), "t", {1})

    def test_example_3_5_single_component_covered_by_either_column(self):
        # Example 3.5 has one component (cycle weight 2) containing both X and Y,
        # so either constant formally covers it — coverage is necessary, not
        # sufficient, for the schema to apply (the schema itself still refuses).
        program = example_3_5()
        assert selection_covers_unbounded_sides(program, "t", {0})
        assert selection_covers_unbounded_sides(program, "t", {1})

    def test_out_of_scope_program_raises(self):
        with pytest.raises(ProgramError):
            selection_covers_unbounded_sides(nonlinear_tc(), "t", {0})


class TestPlannerRoute:
    def test_fully_bound_same_generation_uses_the_schema(self):
        program = same_generation()
        database = same_generation_database(branching=3, depth=4)
        query = SelectionQuery.of("sg", 2, {0: 13, 1: 17})
        result = answer_query(program, database, query)
        reference, reference_stats = seminaive_query(program, database, "sg", {0: 13, 1: 17})
        assert result.answers == reference
        assert "bounded sides" in result.strategy
        assert result.stats.tuples_examined < reference_stats.tuples_examined / 10

    def test_partially_bound_same_generation_still_uses_magic(self):
        program = same_generation()
        database = same_generation_database(branching=2, depth=3)
        result = answer_query(program, database, SelectionQuery.of("sg", 2, {0: 3}))
        assert "magic" in result.strategy

    def test_fully_bound_two_sided_matches_seminaive(self):
        program = canonical_two_sided()
        database = relations_database(
            a=random_pairs(25, 10, seed=51),
            b=random_pairs(10, 10, seed=52),
            c=random_pairs(25, 10, seed=53),
        )
        query = SelectionQuery.of("t", 2, {0: 1, 1: 4})
        result = answer_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {0: 1, 1: 4})
        assert result.answers == reference
        assert "bounded sides" in result.strategy

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 9), st.integers(0, 9))
    def test_fully_bound_queries_agree_with_seminaive_property(self, seed, left, right):
        program = canonical_two_sided()
        database = relations_database(
            a=random_pairs(18, 10, seed=seed),
            b=random_pairs(8, 10, seed=seed + 1),
            c=random_pairs(18, 10, seed=seed + 2),
        )
        query = SelectionQuery.of("t", 2, {0: left, 1: right})
        result = answer_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {0: left, 1: right})
        assert result.answers == reference
