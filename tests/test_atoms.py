"""Unit tests for :mod:`repro.datalog.atoms`."""

from __future__ import annotations

import pytest

from repro.datalog.atoms import Atom, atoms_variables, fact, share_variable
from repro.datalog.terms import Constant, Variable


@pytest.fixture
def a_xz() -> Atom:
    return Atom.of("a", "X", "Z")


class TestConstruction:
    def test_of_coerces_arguments(self, a_xz):
        assert a_xz.predicate == "a"
        assert a_xz.args == (Variable("X"), Variable("Z"))

    def test_of_mixes_constants_and_variables(self):
        atom = Atom.of("b", 1, "Y")
        assert atom.args == (Constant(1), Variable("Y"))

    def test_fact_builds_ground_atom(self):
        ground = fact("edge", (1, 2))
        assert ground.is_ground()
        assert ground.args == (Constant(1), Constant(2))

    def test_str(self, a_xz):
        assert str(a_xz) == "a(X, Z)"
        assert str(Atom("nullary", ())) == "nullary"


class TestQueries:
    def test_arity(self, a_xz):
        assert a_xz.arity == 2

    def test_variables_in_order_with_duplicates(self):
        atom = Atom.of("p", "X", "Y", "X")
        assert atom.variables() == [Variable("X"), Variable("Y"), Variable("X")]
        assert atom.variable_set() == {Variable("X"), Variable("Y")}

    def test_constants(self):
        atom = Atom.of("p", 1, "Y", 2)
        assert atom.constants() == [Constant(1), Constant(2)]

    def test_is_ground(self):
        assert Atom.of("p", 1, 2).is_ground()
        assert not Atom.of("p", 1, "Y").is_ground()

    def test_positions_of(self):
        atom = Atom.of("p", "X", "Y", "X")
        assert atom.positions_of(Variable("X")) == [0, 2]
        assert atom.positions_of(Variable("Z")) == []


class TestTransformations:
    def test_substitute_variables(self, a_xz):
        substituted = a_xz.substitute({Variable("X"): Constant(1)})
        assert substituted == Atom("a", (Constant(1), Variable("Z")))

    def test_substitute_leaves_original_unchanged(self, a_xz):
        a_xz.substitute({Variable("X"): Constant(1)})
        assert a_xz.args[0] == Variable("X")

    def test_substitute_to_other_variable(self, a_xz):
        renamed = a_xz.rename({Variable("Z"): Variable("W")})
        assert renamed == Atom.of("a", "X", "W")

    def test_with_subscript(self, a_xz):
        subscripted = a_xz.with_subscript(3)
        assert subscripted.args == (Variable("X", 3), Variable("Z", 3))

    def test_with_subscript_skips_constants(self):
        atom = Atom.of("p", 1, "Y")
        assert atom.with_subscript(2).args == (Constant(1), Variable("Y", 2))


class TestRelationsBetweenAtoms:
    def test_share_variable_true(self):
        assert share_variable(Atom.of("a", "X", "Z"), Atom.of("t", "Z", "Y"))

    def test_share_variable_false(self):
        assert not share_variable(Atom.of("a", "X", "Z"), Atom.of("c", "W", "Y"))

    def test_share_variable_ignores_constants(self):
        assert not share_variable(Atom.of("a", 1, 2), Atom.of("b", 1, 2))

    def test_atoms_variables_union(self):
        atoms = [Atom.of("a", "X", "Z"), Atom.of("b", "Z", "Y")]
        assert atoms_variables(atoms) == {Variable("X"), Variable("Y"), Variable("Z")}
