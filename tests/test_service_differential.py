"""Concurrent differential fuzzing: every served answer matches its epoch.

The serving layer's tier-1 foothold: seeded reader/writer/barrier thread
schedules (:mod:`repro.testing.concurrent`) drive a ``DatalogService`` over
every generator family and assert, per answered query, tuple-identity with
from-scratch semi-naive evaluation of the exact epoch the reader observed —
plus monotone epochs per reader, a deterministic final state equal to
sequential replay, and agreement with a single-threaded ``Session``.  The
schedules themselves are nondeterministic (that is the point); the checked
property is schedule-independent, and any failure names its seed.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    generate_concurrent_case,
    run_concurrent_batch,
    run_concurrent_case,
)

SEED_COUNT = 14  # two full passes over the 7 generator families


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_every_answer_matches_its_observed_epoch(seed):
    report = run_concurrent_case(generate_concurrent_case(seed))
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)
    # the harness must have verified real traffic against real epochs
    assert report.queries_checked > 0
    assert report.epochs_observed >= 1


def test_generation_is_deterministic():
    first = generate_concurrent_case(7)
    second = generate_concurrent_case(7)
    assert first.base.steps == second.base.steps
    assert first.readers == second.readers
    assert first.barrier_after == second.barrier_after
    assert first.policy == second.policy


def test_batch_exercises_coalescing_and_both_strategies():
    cases = [generate_concurrent_case(seed) for seed in range(SEED_COUNT)]
    reports = run_concurrent_batch(cases)
    assert all(report.ok for report in reports), "\n".join(
        report.summary() for report in reports if not report.ok
    )
    total_writes = sum(report.writes for report in reports)
    total_flushes = sum(report.flushes for report in reports)
    total_rounds = sum(report.maintenance_rounds for report in reports)
    # the write queue must have batched concurrent writers somewhere: strictly
    # fewer flushes AND strictly fewer maintenance rounds than raw writes
    assert 0 < total_flushes < total_writes
    assert total_rounds < total_writes
    # readers must actually have shared cached answers across the batch
    assert sum(report.cache_hits for report in reports) > 0
    # both maintenance strategies served concurrent traffic
    strategies = {case.base.base.family for case in cases}
    assert "bounded" in strategies  # unfolds -> counting maintenance
    assert "cyclic" in strategies  # stays recursive -> DRed maintenance
