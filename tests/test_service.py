"""Unit tests for the concurrent serving layer (repro.service)."""

from __future__ import annotations

import threading

import pytest

from repro import Database, DatalogService, FlushPolicy, Session
from repro.engine.domain import interning_mode
from repro.engine.query import SelectionQuery
from repro.service import EpochCache, WriteTicket, coalesce

TC = """
t(X, Y) :- a(X, Z), t(Z, Y).
t(X, Y) :- b(X, Y).
"""


def tc_database():
    return Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})


def manual_flush_policy():
    """Writes sit on the queue until a barrier forces the flush."""
    return FlushPolicy(max_batch=1_000_000, max_delay_seconds=3600.0)


@pytest.fixture
def service():
    with DatalogService(TC, tc_database(), flush_policy=manual_flush_policy()) as svc:
        yield svc


# ----------------------------------------------------------------------
# registry epochs
# ----------------------------------------------------------------------
class TestRegistryEpochs:
    def test_each_effective_mutation_round_advances_the_epoch(self):
        session = Session(TC, tc_database())
        registry = session.registry
        assert registry.epoch == 0
        session.insert("b", (2, 9))
        assert registry.epoch == 1
        session.delete("b", (2, 9))
        assert registry.epoch == 2

    def test_noop_mutations_do_not_advance_the_epoch(self):
        session = Session(TC, tc_database())
        session.insert("b", (3, 4))  # already present
        session.delete("b", (99, 99))  # absent
        assert session.registry.epoch == 0

    def test_collect_touched_reports_and_resets(self):
        session = Session(TC, tc_database())
        session.insert("b", (2, 9))
        epoch, touched = session.registry.collect_touched()
        assert epoch == 1
        assert touched == {"b", "t"}  # the EDB relation plus the affected view
        _epoch, again = session.registry.collect_touched()
        assert again == set()

    def test_relation_replacement_advances_and_touches(self):
        from repro.datalog.relation import Relation

        session = Session(TC, tc_database())
        session.database.add_relation(Relation("b", 2, [(1, 9)]))
        epoch, touched = session.registry.collect_touched()
        assert epoch == 1
        assert touched == {"b", "t"}


# ----------------------------------------------------------------------
# the epoch-keyed cache
# ----------------------------------------------------------------------
class TestEpochCache:
    def test_hit_only_at_the_cached_epoch(self):
        cache = EpochCache()
        query = SelectionQuery.of("t", 2, {0: 1})
        assert cache.get(0, query) is None
        assert cache.put(0, query, {(1, 4)})
        assert cache.get(0, query) == {(1, 4)}
        assert cache.get(1, query) is None  # different epoch: miss

    def test_advance_invalidates_exactly_the_touched_predicates(self):
        cache = EpochCache()
        on_t = SelectionQuery.of("t", 2, {0: 1})
        on_b = SelectionQuery.of("b", 2, {0: 3})
        cache.put(0, on_t, {(1, 4)})
        cache.put(0, on_b, {(3, 4)})
        dropped = cache.advance(1, {"t", "a"})
        assert dropped == 1
        assert cache.get(1, on_t) is None  # invalidated
        assert cache.get(1, on_b) == {(3, 4)}  # revalidated at the new epoch

    def test_stale_puts_are_rejected(self):
        cache = EpochCache()
        query = SelectionQuery.of("t", 2, {0: 1})
        cache.advance(2, set())
        assert not cache.put(1, query, {(9, 9)})  # a slow reader's old answer
        assert cache.get(2, query) is None

    def test_epoch_must_be_monotone(self):
        cache = EpochCache()
        cache.advance(3, set())
        with pytest.raises(ValueError):
            cache.advance(2, set())

    def test_lru_eviction(self):
        cache = EpochCache(max_entries=2)
        queries = [SelectionQuery.of("t", 2, {0: i}) for i in range(3)]
        cache.put(0, queries[0], {(0, 0)})
        cache.put(0, queries[1], {(1, 1)})
        cache.get(0, queries[0])  # refresh 0 so 1 is the eviction victim
        cache.put(0, queries[2], {(2, 2)})
        assert cache.get(0, queries[0]) is not None
        assert cache.get(0, queries[1]) is None
        assert len(cache) == 2

    def test_returned_sets_are_copies(self):
        cache = EpochCache()
        query = SelectionQuery.of("t", 2, {0: 1})
        cache.put(0, query, {(1, 4)})
        answers = cache.get(0, query)
        answers.add((666, 666))
        assert cache.get(0, query) == {(1, 4)}


# ----------------------------------------------------------------------
# write coalescing
# ----------------------------------------------------------------------
class TestCoalesce:
    def test_last_operation_per_row_wins(self):
        batch = [
            WriteTicket("insert", "b", ((1, 2),)),
            WriteTicket("delete", "b", ((1, 2),)),
            WriteTicket("delete", "b", ((3, 4),)),
            WriteTicket("insert", "b", ((3, 4),)),
        ]
        (group,) = coalesce(batch)
        assert group.relation == "b"
        assert group.deletes == [(1, 2)]
        assert group.inserts == [(3, 4)]

    def test_groups_per_relation_preserving_first_touch_order(self):
        batch = [
            WriteTicket("insert", "b", ((1, 2),)),
            WriteTicket("insert", "a", ((5, 6),)),
            WriteTicket("insert", "b", ((7, 8),)),
        ]
        groups = coalesce(batch)
        assert [group.relation for group in groups] == ["b", "a"]
        assert groups[0].inserts == [(1, 2), (7, 8)]

    def test_duplicate_rows_collapse_and_barriers_are_skipped(self):
        batch = [
            WriteTicket("insert", "b", ((1, 2), (1, 2))),
            WriteTicket("barrier"),
            WriteTicket("insert", "b", ((1, 2),)),
        ]
        (group,) = coalesce(batch)
        assert group.inserts == [(1, 2)]
        assert group.deletes == []


# ----------------------------------------------------------------------
# the service front door
# ----------------------------------------------------------------------
class TestDatalogService:
    def test_coalesced_flush_is_one_maintenance_round(self, service):
        for value in range(5):
            service.insert("b", (2, 100 + value))
        epoch = service.barrier()
        stats = service.stats
        assert stats.writes_applied == 5
        assert stats.flushes == 1
        assert stats.maintenance_rounds == 1  # one insert_facts call for all 5
        assert stats.coalescing_factor() == 5.0
        assert epoch == service.epoch == 1
        assert service.query("t(2, Y)?").answers == {
            (2, 4), (2, 100), (2, 101), (2, 102), (2, 103), (2, 104)
        }

    def test_insert_then_delete_coalesces_to_nothing(self, service):
        service.insert("b", (7, 8))
        service.delete("b", (7, 8))
        service.barrier()
        stats = service.stats
        assert stats.writes_applied == 2
        assert stats.flushes == 1
        assert stats.maintenance_rounds == 0  # the net effect was empty
        assert service.epoch == 0  # nothing changed: no new epoch published
        assert (7, 8) not in service.query("t(X, Y)?").answers

    def test_size_trigger_flushes_without_a_barrier(self):
        policy = FlushPolicy(max_batch=3, max_delay_seconds=3600.0)
        with DatalogService(TC, tc_database(), flush_policy=policy) as svc:
            tickets = [svc.insert("b", (2, 100 + v)) for v in range(3)]
            assert tickets[-1].wait(timeout=10) == 1  # size trigger: no barrier needed
            assert all(ticket.done() for ticket in tickets)

    def test_latency_deadline_flushes_a_lone_write(self):
        policy = FlushPolicy(max_batch=1_000_000, max_delay_seconds=0.01)
        with DatalogService(TC, tc_database(), flush_policy=policy) as svc:
            ticket = svc.insert("b", (2, 200))
            assert ticket.wait(timeout=10) == 1

    def test_snapshot_isolation_across_writes(self, service):
        before = service.query("t(1, Y)?")
        service.insert("b", (1, 50), wait=False)
        service.barrier()
        after = service.query("t(1, Y)?")
        assert before.epoch == 0 and after.epoch == 1
        assert (1, 50) in after.answers and (1, 50) not in before.answers
        # the old snapshot handle still serves its epoch, tuple for tuple
        assert before.snapshot.views["t"].rows() == {(1, 4), (2, 4), (3, 4)}

    def test_cache_hits_and_precise_invalidation(self, service):
        service.query("t(3, Y)?")
        assert service.query("t(3, Y)?").cached
        service.insert("b", (2, 60), wait=False)
        service.barrier()
        fresh = service.query("t(3, Y)?")  # 't' was touched: re-answered
        assert not fresh.cached
        stats = service.stats
        assert stats.cache_hits == 1 and stats.cache_misses == 2

    def test_untouched_predicate_survives_an_epoch_advance(self):
        # 's' rides only on 'c', so a write to 'b' must not evict it: the
        # registry reports per-predicate version changes, not whole views
        program = TC + "s(X, Y) :- c(X, Y).\n"
        database = tc_database()
        database.insert_facts("c", [(10, 11)])
        with DatalogService(program, database, flush_policy=manual_flush_policy()) as svc:
            svc.query("s(10, Y)?")
            svc.insert("b", (2, 70), wait=False)
            svc.barrier()
            # the write touched b/t but not s/c: the cached answer survives
            assert svc.query("s(10, Y)?").cached

    def test_edb_queries_and_unknown_relations(self, service):
        assert service.query("b(3, Y)?").answers == {(3, 4)}
        assert service.query(SelectionQuery.of("ghost", 2, {0: 1})).answers == set()

    def test_submit_runs_on_the_reader_pool(self, service):
        futures = [service.submit("t(1, Y)?") for _ in range(8)]
        answers = {frozenset(f.result(timeout=10).answers) for f in futures}
        assert answers == {frozenset({(1, 4)})}

    def test_write_after_close_raises(self):
        svc = DatalogService(TC, tc_database())
        svc.close()
        with pytest.raises(RuntimeError):
            svc.insert("b", (1, 1))

    def test_flush_failure_propagates_to_the_waiting_client(self, service):
        ticket = service.insert("b", (1, 2, 3))  # arity mismatch
        with pytest.raises(Exception, match="arity"):
            service.barrier(timeout=10)  # rides (and fails with) the bad batch
        with pytest.raises(Exception, match="arity"):
            ticket.wait(timeout=10)
        # the service survives and keeps serving
        assert service.query("t(1, Y)?").answers == {(1, 4)}
        assert service.barrier(timeout=10) == 0  # the queue is clean again

    def test_pinned_counters_for_a_scripted_run(self, service):
        service.query("t(1, Y)?")  # miss -> snapshot lookup
        service.query("t(1, Y)?")  # hit
        service.query("b(3, Y)?")  # miss -> snapshot EDB lookup
        service.insert("b", (2, 80))
        service.insert("b", (2, 81))
        service.delete("b", (3, 4))
        service.barrier()
        service.query("t(1, Y)?")  # miss (t touched)
        stats = service.stats
        assert stats.as_dict() == {
            "queries_served": 4,
            "cache_hits": 1,
            "cache_misses": 3,
            "snapshot_lookups": 3,
            "fallback_evaluations": 0,
            "writes_enqueued": 3,
            "writes_applied": 3,
            "flushes": 1,
            "maintenance_rounds": 2,  # one remove_facts + one insert_facts
            "barriers": 1,
            "epochs_published": 1,
            "queue_depth": 0,  # everything flushed by the barrier
            "cache_entries": 1,  # the post-flush t(1, Y) miss re-primed it
            "coalescing_factor": 3.0,
            "cache_hit_rate": 0.25,
        }

    def test_stats_copy_samples_queue_depth_and_cache_entries(self, service):
        service.query("t(1, Y)?")  # prime one cache entry
        service.insert("b", (7, 70))  # manual policy: sits on the queue
        service.insert("b", (7, 71))
        stats = service.stats
        assert stats.queue_depth == 2
        assert stats.cache_entries == 1
        assert "queue=2" in str(stats) and "cache=1" in str(stats)
        service.barrier()
        assert service.stats.queue_depth == 0


# ----------------------------------------------------------------------
# snapshot safety of fallback evaluation
# ----------------------------------------------------------------------
class TestSnapshotSafety:
    MUTUAL = """
    t(X, Y) :- a(X, Z), t(Z, Y).
    t(X, Y) :- b(X, Y).
    s(X, Y) :- t(Y, X).
    """

    def test_fallback_evaluation_never_mutates_the_snapshot(self):
        # 's' is materialized too, so force the fallback by querying a
        # predicate the program defines but the snapshot does not serve
        program = "t(X, Y) :- a(X, Z), t(Z, Y).\nt(X, Y) :- b(X, Y).\n"
        database = Database.from_dict(
            {"a": [("n1", "n2"), ("n2", "n3")], "b": [("n3", "n4")]}
        )
        with DatalogService(program, database, flush_policy=manual_flush_policy()) as svc:
            snapshot = svc.snapshot()
            frozen_before = {name: set(rel.rows()) for name, rel in snapshot.edb.items()}
            # magic-sets over the snapshot database (strings force interning)
            from repro import answer

            result = answer(svc.session.program, snapshot.as_database(), "t(n1, Y)?")
            assert result.answers == {("n1", "n4")}
            for name, rel in snapshot.edb.items():
                assert set(rel.rows()) == frozen_before[name], name

    def test_fallback_is_snapshot_safe_with_interning_off(self):
        database = Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})
        with DatalogService(TC, database, flush_policy=manual_flush_policy()) as svc:
            snapshot = svc.snapshot()
            from repro import answer

            with interning_mode(False):
                result = answer(svc.session.program, snapshot.as_database(), "t(1, Y)?")
            assert result.answers == {(1, 4)}
            assert snapshot.edb["a"].rows() == {(1, 2), (2, 3)}


# ----------------------------------------------------------------------
# Session.facts (the read accessor satellite)
# ----------------------------------------------------------------------
class TestSessionFacts:
    def test_facts_round_trips_inserts(self):
        session = Session(TC, tc_database())
        assert session.facts("b") == {(3, 4)}
        session.insert("b", (2, 9))
        assert session.facts("b") == {(3, 4), (2, 9)}
        session.delete("b", (3, 4))
        assert session.facts("b") == {(2, 9)}

    def test_facts_on_unknown_relations_is_empty(self):
        session = Session(TC, tc_database())
        assert session.facts("nope") == set()

    def test_facts_returns_a_copy(self):
        session = Session(TC, tc_database())
        rows = session.facts("b")
        rows.add((666, 666))
        assert session.facts("b") == {(3, 4)}


# ----------------------------------------------------------------------
# a quick hammering smoke (the full families live in the differential file)
# ----------------------------------------------------------------------
def test_concurrent_readers_and_writers_smoke():
    policy = FlushPolicy(max_batch=4, max_delay_seconds=0.001)
    with DatalogService(TC, tc_database(), readers=3, flush_policy=policy) as svc:
        errors = []

        def read():
            try:
                for _ in range(40):
                    result = svc.query("t(1, Y)?")
                    assert (1, 4) in result.answers  # never deleted below
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        def write():
            try:
                for value in range(30):
                    svc.insert("b", (2, 1000 + value))
                    if value % 3 == 0:
                        svc.delete("b", (2, 1000 + value))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=read) for _ in range(3)]
        threads.append(threading.Thread(target=write))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        svc.barrier()
        assert not errors
        final = svc.query("t(2, Y)?")
        expected = {(2, 4)} | {
            (2, 1000 + value) for value in range(30) if value % 3 != 0
        }
        assert final.answers == expected
