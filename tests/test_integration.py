"""End-to-end integration tests: every strategy agrees on every canonical workload.

These tests exercise the whole stack the way a user of the library would:
parse a program, detect its class, pick (or force) an evaluation strategy and
compare the answers across strategies.  They are the repository's strongest
regression net because any divergence between the specialized algorithms and
the reference semantics shows up here.
"""

from __future__ import annotations

import pytest

from repro.baselines import counting_query, magic_query
from repro.core import answer_query, detect_one_sided, one_sided_query
from repro.datalog import Database, ReproError, parse_program
from repro.engine import SelectionQuery, naive_query, seminaive_query
from repro.workloads import (
    buys_database,
    buys_unoptimized,
    canonical_two_sided,
    edge_database,
    example_3_4,
    layered_dag,
    permissions_database,
    random_graph,
    random_pairs,
    relations_database,
    same_generation_distinct_parents,
    tc_with_permissions,
    transitive_closure,
)

# (name, program factory, predicate, database factory, queries to try)
SCENARIOS = [
    (
        "transitive_closure",
        transitive_closure,
        "t",
        lambda: edge_database(layered_dag(5, 4, 2, seed=31)),
        [{0: 0}, {1: 17}, {0: 3, 1: 17}],
    ),
    (
        "tc_with_permissions",
        tc_with_permissions,
        "t",
        lambda: permissions_database(random_graph(10, 22, seed=32), seed=32),
        [{0: 0}, {1: 4}],
    ),
    (
        "example_3_4",
        example_3_4,
        "t",
        lambda: relations_database(
            e=random_pairs(22, 9, seed=33),
            d=[(value,) for value in range(5)],
            t0=[(i % 9, (i * 3) % 9, (i * 5) % 9) for i in range(12)],
        ),
        [{0: 1}, {1: 2}, {2: 3}],
    ),
    (
        "buys",
        buys_unoptimized,
        "buys",
        lambda: buys_database(people=18, items=12, seed=34),
        [{0: "person1"}, {1: "item3"}],
    ),
    (
        "canonical_two_sided",
        canonical_two_sided,
        "t",
        lambda: relations_database(
            a=random_pairs(18, 9, seed=35),
            b=random_pairs(7, 9, seed=36),
            c=random_pairs(18, 9, seed=37),
        ),
        [{0: 1}, {1: 5}],
    ),
    (
        "same_generation_distinct",
        same_generation_distinct_parents,
        "sg",
        lambda: relations_database(
            up=random_pairs(16, 8, seed=38),
            down=random_pairs(16, 8, seed=39),
            flat=random_pairs(8, 8, seed=40),
        ),
        [{0: 2}, {1: 6}],
    ),
]


@pytest.mark.parametrize("name, program_factory, predicate, db_factory, queries", SCENARIOS)
def test_strategies_agree(name, program_factory, predicate, db_factory, queries):
    program = program_factory()
    database = db_factory()
    arity = program.arity_of(predicate)
    for bindings in queries:
        query = SelectionQuery.of(predicate, arity, bindings)
        reference, _ = seminaive_query(program, database, predicate, bindings)

        auto = answer_query(program, database, query)
        assert auto.answers == reference, f"{name}: auto strategy diverged on {query}"

        naive, _ = naive_query(program, database, predicate, bindings)
        assert naive == reference, f"{name}: naive diverged on {query}"

        magic = magic_query(program, database, query)
        assert magic.answers == reference, f"{name}: magic diverged on {query}"

        outcome = detect_one_sided(program, predicate)
        if outcome.one_sided:
            schema = one_sided_query(outcome.optimized, database, query)
            assert schema.answers == reference, f"{name}: one-sided schema diverged on {query}"


@pytest.mark.parametrize("name, program_factory, predicate, db_factory, queries", SCENARIOS)
def test_detection_matches_paper_classification(name, program_factory, predicate, db_factory, queries):
    expected_one_sided = {
        "transitive_closure": True,
        "tc_with_permissions": True,
        "example_3_4": True,
        "buys": True,  # after redundancy removal
        "canonical_two_sided": False,
        "same_generation_distinct": False,
    }
    outcome = detect_one_sided(program_factory(), predicate)
    assert outcome.one_sided == expected_one_sided[name]


def test_counting_agrees_where_applicable():
    program = transitive_closure()
    database = edge_database(layered_dag(5, 3, 2, seed=41))
    query = SelectionQuery.of("t", 2, {0: 0})
    reference, _ = seminaive_query(program, database, "t", {0: 0})
    assert counting_query(program, database, query).answers == reference


def test_user_written_program_end_to_end():
    """A scenario written the way the README shows: parse, detect, query."""
    program = parse_program(
        """
        % flights reachable from a hub, with a direct-flight base case
        reachable(City, Dest) :- flight(City, Stop), reachable(Stop, Dest).
        reachable(City, Dest) :- flight(City, Dest).
        """
    )
    database = Database.from_dict(
        {
            "flight": [
                ("msn", "ord"),
                ("ord", "jfk"),
                ("jfk", "cdg"),
                ("cdg", "nrt"),
                ("sfo", "ord"),
            ]
        }
    )
    outcome = detect_one_sided(program, "reachable")
    assert outcome.one_sided
    result = answer_query(program, database, "reachable(msn, Dest)?")
    assert {row[1] for row in result.answers} == {"ord", "jfk", "cdg", "nrt"}
    backwards = answer_query(program, database, "reachable(City, nrt)?")
    assert {row[0] for row in backwards.answers} == {"msn", "ord", "jfk", "cdg", "sfo"}


def test_error_handling_is_uniform():
    """Every public entry point raises ReproError subclasses, never bare exceptions."""
    program = transitive_closure()
    database = edge_database([(1, 2)])
    with pytest.raises(ReproError):
        answer_query(program, database, "t(1, 2, 3)?")
    with pytest.raises(ReproError):
        answer_query(program, database, "t(1, Y)?", strategy="bogus")
