"""Tests for Theorem 3.1 detection (:mod:`repro.core.classify`)."""

from __future__ import annotations

import pytest

from repro.core import classify, is_one_sided, one_sided_component, structural_sidedness
from repro.datalog import ProgramError, parse_program
from repro.workloads import (
    appendix_a_p,
    buys_optimized,
    buys_unoptimized,
    canonical_two_sided,
    example_3_4,
    example_3_5,
    nonlinear_tc,
    same_generation,
    tc_with_permissions,
    transitive_closure,
)


class TestTheorem31OnPaperExamples:
    """Example 3.6 walks through exactly these classifications."""

    @pytest.mark.parametrize(
        "factory, predicate, expected",
        [
            (transitive_closure, "t", True),
            (example_3_4, "t", True),
            (tc_with_permissions, "t", True),
            (buys_optimized, "buys", True),
            (same_generation, "sg", False),
            (example_3_5, "t", False),
            (canonical_two_sided, "t", False),
            (buys_unoptimized, "buys", False),
        ],
    )
    def test_is_one_sided(self, factory, predicate, expected):
        assert is_one_sided(factory(), predicate) is expected

    def test_same_generation_reason_mentions_two_components(self):
        report = classify(same_generation(), "sg")
        assert len(report.nonzero_cycle_components) == 2
        assert "2 components" in report.reason()

    def test_example_3_5_reason_mentions_cycle_weight(self):
        report = classify(example_3_5(), "t")
        assert report.cycle_weights == [2]
        assert "2" in report.reason()

    def test_transitive_closure_report(self):
        report = classify(transitive_closure(), "t")
        assert report.is_one_sided
        assert not report.is_bounded_looking
        assert report.sidedness == 1
        assert "one-sided" in str(report)

    def test_one_sided_component_exposes_the_side(self):
        component = one_sided_component(transitive_closure(), "t")
        assert component is not None
        assert component.cycle_gcd == 1
        assert one_sided_component(same_generation(), "sg") is None


class TestStructuralSidedness:
    @pytest.mark.parametrize(
        "factory, predicate, expected",
        [
            (transitive_closure, "t", 1),
            (same_generation, "sg", 2),
            (canonical_two_sided, "t", 2),
            (example_3_5, "t", 2),
            (example_3_4, "t", 1),
            (appendix_a_p, "p", 1),
        ],
    )
    def test_counts(self, factory, predicate, expected):
        assert structural_sidedness(factory(), predicate) == expected

    def test_bounded_looking_recursion(self):
        program = parse_program(
            """
            t(X, Y) :- marker(X), t(X, Y).
            t(X, Y) :- base(X, Y).
            """
        )
        report = classify(program, "t")
        # the only cycle is the weight-1 loop through X; the marker's component
        # still has it, so the recursion registers one unbounded set of
        # (identical) marker atoms — sidedness 1, not bounded-looking.
        assert report.sidedness == 1

    def test_truly_cycle_free_rule_is_bounded_looking(self):
        program = parse_program(
            """
            t(X, Y) :- a(W, V), t(X, Y).
            t(X, Y) :- base(X, Y).
            """
        )
        report = classify(program, "t")
        assert report.is_bounded_looking
        assert report.sidedness == 0
        assert not report.is_one_sided


class TestScopeChecks:
    def test_rejects_nonlinear_rules(self):
        with pytest.raises(ProgramError):
            classify(nonlinear_tc(), "t")

    def test_rejects_multiple_recursive_rules(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, Z), t(Z, Y).
            t(X, Y) :- c(X, Z), t(Z, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        with pytest.raises(ProgramError):
            classify(program, "t")

    def test_rejects_unknown_predicate(self):
        with pytest.raises(ProgramError):
            classify(transitive_closure(), "missing")

    def test_rejects_mutual_recursion(self):
        program = parse_program(
            """
            t(X, Y) :- s(X, Y).
            s(X, Y) :- a(X, Z), t(Z, Y).
            s(X, Y) :- b(X, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        with pytest.raises(ProgramError):
            classify(program, "t")
