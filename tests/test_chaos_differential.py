"""Chaos differential fuzzing: graceful degradation under injected faults.

The robustness layer's tier-1 foothold: seeded fault schedules
(:mod:`repro.testing.chaos`) drive a durable ``DatalogService`` over the
update-sequence families while the disk fails, tears frames, stalls, or
refuses fsync at seeded injection-site ordinals.  A writer retries each step
until acknowledged; readers issue seeded queries (some with impossible
deadlines) throughout.  Every case asserts: no acknowledged write is lost,
every answered query is tuple-identical to from-scratch evaluation of its
observed epoch snapshot, the service returns to HEALTHY (verified on the
object *and* through the exported health-state gauge), timeouts and refusals
fail crisply (no hangs), and a post-fault close/reopen recovery reproduces
the final state exactly.  Any failure names its seed.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.testing import generate_chaos_case, generate_chaos_cases, run_chaos_case
from repro.testing.chaos import FAULT_KINDS

SEED_COUNT = 24


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_service_degrades_gracefully_and_heals(seed, tmp_path):
    report = run_chaos_case(generate_chaos_case(seed), tmp_path)
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)
    assert report.final_health == "healthy"
    # the recovery shadow check ran and landed on the exact final epoch
    assert report.recovered_epoch == len(report.case.steps)


def test_generation_is_deterministic():
    first = generate_chaos_case(17)
    second = generate_chaos_case(17)
    assert first.steps == second.steps
    assert first.schedule == second.schedule
    assert first.barrier_after == second.barrier_after
    assert first.snapshot_interval == second.snapshot_interval
    assert first.expected == second.expected


def test_batch_covers_every_site_and_fault_kind(tmp_path):
    """Across the seed range, every injection site and action kind must fire.

    Scheduling a fault is not exercising it — a window past the run's last
    append never fires — so coverage is asserted over what actually fired.
    A slightly wider range than the per-seed family keeps this robust to
    which windows land.
    """
    sites: Counter = Counter()
    kinds: Counter = Counter()
    families = set()
    writer_retries = 0
    timeouts = 0
    for case in generate_chaos_cases(32):
        families.add(case.base.base.family)
        scratch = tmp_path / f"seed-{case.seed}"
        scratch.mkdir()
        report = run_chaos_case(case, scratch)
        assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)
        writer_retries += report.writer_retries
        timeouts += report.timeouts_observed
        for site, _ordinal, kind in report.faults_fired:
            sites[site] += 1
            kinds[kind] += 1
    assert set(sites) == set(FAULT_KINDS), f"sites never exercised: {set(FAULT_KINDS) - set(sites)}"
    assert set(kinds) == {"error", "delay", "torn"}
    # degradation was real: some writes were refused/failed and retried, and
    # impossible deadlines actually raised QueryTimeout
    assert writer_retries > 0
    assert timeouts > 0
    assert "cyclic" in families  # DRed maintenance under faults
    assert "bounded" in families  # counting maintenance under faults
