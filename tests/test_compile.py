"""Compiled rule plans must match the interpreted evaluator exactly."""

from __future__ import annotations

import pytest

from repro.datalog import Database
from repro.datalog.atoms import Atom
from repro.datalog.relation import Relation
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine import (
    EvaluationStats,
    compile_delta_variants,
    compile_rule,
    evaluate_rule,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.engine.cq_eval import evaluate_rule_with_delta
from repro.testing import generate_case
from repro.workloads import ALL_CANONICAL, edge_database, layered_dag


def sample_relations():
    database = edge_database(layered_dag(4, 3, 2, seed=11))
    relations = {r.name: r for r in database.relations()}
    relations["t"] = Relation("t", 2, [(0, 1), (1, 5), (2, 4), (5, 7)])
    return relations


class TestCompiledRuleEquivalence:
    def test_matches_interpreted_on_canonical_rules(self):
        relations = sample_relations()
        for name, factory in ALL_CANONICAL.items():
            program = factory()
            for rule in program.rules:
                interpreted = evaluate_rule(rule, relations)
                compiled = compile_rule(rule, relations).evaluate(relations)
                assert compiled == interpreted, f"{name}: {rule}"

    def test_repeated_variable_within_atom(self):
        # t(X) :- e(X, X) — the second occurrence is an in-atom equality check
        rule = Rule(Atom.of("t", "X"), (Atom.of("e", "X", "X"),))
        relations = {"e": Relation("e", 2, [(1, 1), (1, 2), (3, 3)])}
        assert compile_rule(rule, relations).evaluate(relations) == {(1,), (3,)}

    def test_constants_in_body_and_head(self):
        rule = Rule(Atom.of("t", "X", "fixed"), (Atom.of("e", 1, "X"),))
        relations = {"e": Relation("e", 2, [(1, 10), (2, 20), (1, 30)])}
        assert compile_rule(rule, relations).evaluate(relations) == {
            (10, "fixed"),
            (30, "fixed"),
        }

    def test_unbound_head_variable_produces_nothing(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "X"),))
        relations = {"e": Relation("e", 2, [(1, 1)])}
        plan = compile_rule(rule, relations)
        assert not plan.producible
        assert plan.evaluate(relations) == set()

    def test_missing_relation_is_empty(self):
        rule = Rule(Atom.of("t", "X"), (Atom.of("missing", "X"),))
        stats = EvaluationStats()
        assert compile_rule(rule).evaluate({}, stats=stats) == set()
        assert stats.lookups == 1

    def test_bound_variables_fill_initial_slots(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "Y"),))
        relations = {"e": Relation("e", 2, [(1, 10), (2, 20)])}
        x = Variable("X")
        plan = compile_rule(rule, relations, bound=(x,))
        assert plan.evaluate(relations, bindings={x: 1}) == {(1, 10)}
        assert plan.evaluate(relations, bindings={x: 2}) == {(2, 20)}
        with pytest.raises(ValueError):
            plan.evaluate(relations)

    def test_bound_probe_is_restricted(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "Y"),))
        relations = {"e": Relation("e", 2, [(1, 10), (2, 20)])}
        x = Variable("X")
        plan = compile_rule(rule, relations, bound=(x,))
        stats = EvaluationStats()
        plan.evaluate(relations, stats=stats, bindings={x: 1})
        assert stats.unrestricted_lookups == 0


class TestDeltaVariants:
    def test_matches_interpreted_delta_evaluation(self):
        relations = sample_relations()
        rule = Rule(
            Atom.of("t", "X", "Y"),
            (Atom.of("a", "X", "W"), Atom.of("t", "W", "Y")),
        )
        delta = Relation("t", 2, [(1, 5), (5, 7)])
        interpreted = evaluate_rule_with_delta(rule, relations, "t", delta)
        variants = compile_delta_variants(rule, {"t"})
        assert len(variants) == 1
        predicate, occurrence, plan = variants[0]
        assert predicate == "t"
        assert occurrence == 1
        assert plan.order[0] == occurrence  # the delta leads the join order
        compiled = plan.evaluate(relations, overrides={occurrence: delta})
        assert compiled == interpreted

    def test_one_variant_per_occurrence(self):
        # nonlinear rule: two recursive occurrences, two variants
        rule = Rule(
            Atom.of("t", "X", "Y"),
            (Atom.of("t", "X", "Z"), Atom.of("t", "Z", "Y")),
        )
        variants = compile_delta_variants(rule, {"t"})
        assert [(p, o) for p, o, _plan in variants] == [("t", 0), ("t", 1)]

    def test_nonlinear_union_over_occurrences_matches_interpreter(self):
        relations = {"t": Relation("t", 2, [(0, 1), (1, 2), (2, 3)])}
        rule = Rule(
            Atom.of("t", "X", "Y"),
            (Atom.of("t", "X", "Z"), Atom.of("t", "Z", "Y")),
        )
        delta = Relation("t", 2, [(1, 2)])
        interpreted = evaluate_rule_with_delta(rule, relations, "t", delta)
        compiled = set()
        for _predicate, occurrence, plan in compile_delta_variants(rule, {"t"}):
            compiled |= plan.evaluate(relations, overrides={occurrence: delta})
        assert compiled == interpreted


class TestCompiledEnginesAgree:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 11, 23])
    def test_naive_equals_seminaive_on_generated_cases(self, seed):
        case = generate_case(seed)
        naive = naive_evaluate(case.program, case.database)
        semi = seminaive_evaluate(case.program, case.database)
        assert set(naive) == set(semi)
        for predicate in naive:
            assert naive[predicate].rows() == semi[predicate].rows(), predicate

    def test_plans_compiled_once_per_fixpoint(self):
        case = generate_case(0)  # chain family: 1 recursive + 1 exit rule
        stats = EvaluationStats()
        seminaive_evaluate(case.program, case.database, stats)
        # one base plan + one delta variant, regardless of iteration count
        assert stats.plans_compiled == 2
        assert stats.iterations > 2
