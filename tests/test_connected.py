"""Tests for connected-set analysis (Definitions 3.1-3.3, Lemma 3.1 cross-checks)."""

from __future__ import annotations

import pytest

from repro.cq import ExpansionString
from repro.datalog import parse_atom
from repro.datalog.terms import Variable
from repro.expansion import (
    connected_set_growth,
    connected_set_sizes,
    connected_sets,
    estimate_sidedness,
    instances_share_connected_set,
)
from repro.core import structural_sidedness
from repro.workloads import (
    ALL_CANONICAL,
    appendix_a_p,
    buys_optimized,
    buys_unoptimized,
    canonical_two_sided,
    example_3_4,
    example_3_5,
    same_generation,
    tc_with_permissions,
    transitive_closure,
)


def hand_string(head_vars, *atom_texts) -> ExpansionString:
    return ExpansionString(
        tuple(Variable(v) for v in head_vars),
        tuple(parse_atom(text) for text in atom_texts),
    )


class TestConnectedSets:
    def test_example_3_1_single_connected_set(self):
        """a(X, Z0), a(Z0, Z1), b(Z1, Y) is one connected set."""
        string = hand_string("XY", "a(X, Z0)", "a(Z0, Z1)", "b(Z1, Y)")
        assert connected_sets(string) == [[0, 1, 2]]

    def test_example_3_1_two_connected_sets(self):
        """a(X, Y), b(Y, Z), c(W) splits into two connected sets."""
        string = hand_string("XY", "a(X, Y)", "b(Y, Z)", "c(W)")
        groups = connected_sets(string)
        assert len(groups) == 2
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_ground_atoms_are_singletons(self):
        string = hand_string("X", "a(X, 1)", "b(2, 3)")
        assert len(connected_sets(string)) == 2

    def test_exit_atoms_can_be_excluded(self, tc_program):
        from repro.expansion import expand

        string = expand(tc_program, "t", 3)[-1]
        with_exit = connected_sets(string, include_exit=True)
        without_exit = connected_sets(string, include_exit=False)
        assert sum(len(g) for g in with_exit) == sum(len(g) for g in without_exit) + 1

    def test_sizes_sorted_descending(self):
        string = hand_string("XY", "a(X, Y)", "b(Y, Z)", "c(W)", "d(W)")
        assert connected_set_sizes(string, include_exit=True) == [2, 2]

    def test_instances_share_connected_set(self):
        string = hand_string("XY", "a(X, Z0)", "a(Z0, Z1)", "c(W)")
        assert instances_share_connected_set(string, 0, 1)
        assert not instances_share_connected_set(string, 0, 2)


class TestEmpiricalSidedness:
    """Definition 3.3 estimated from expansion prefixes."""

    @pytest.mark.parametrize(
        "factory, expected_k",
        [
            (transitive_closure, 1),
            (example_3_4, 1),
            (tc_with_permissions, 1),
            (buys_optimized, 1),
            (same_generation, 2),
            (canonical_two_sided, 2),
            (example_3_5, 2),
            (buys_unoptimized, 2),
        ],
    )
    def test_matches_paper_classification(self, factory, expected_k):
        program = factory()
        predicate = sorted(program.idb_predicates())[0]
        estimate = estimate_sidedness(program, predicate, depth=10)
        assert estimate.k == expected_k

    def test_growth_table_shape(self, tc_program):
        growth = connected_set_growth(tc_program, "t", 6)
        assert len(growth) == 7
        depths = [depth for depth, _sizes in growth]
        assert depths == sorted(depths)
        largest = [sizes[0] if sizes else 0 for _depth, sizes in growth]
        assert largest == sorted(largest)  # the unbounded set grows monotonically

    def test_counts_by_threshold_monotone(self):
        estimate = estimate_sidedness(canonical_two_sided(), "t", depth=8)
        thresholds = sorted(estimate.counts_by_threshold)
        counts = [estimate.counts_by_threshold[t] for t in thresholds]
        assert all(a >= b for a, b in zip(counts, counts[1:]))


class TestStructuralCrossValidation:
    """Lemma 3.1: the A/V-graph prediction matches the expansions."""

    @pytest.mark.parametrize(
        "name",
        [
            "transitive_closure",
            "example_3_4",
            "example_3_5",
            "tc_with_permissions",
            "canonical_two_sided",
            "same_generation",
            "same_generation_distinct_parents",
            "buys_optimized",
            "buys_unoptimized",
        ],
    )
    def test_empirical_equals_structural(self, name):
        program = ALL_CANONICAL[name]()
        predicate = sorted(program.idb_predicates())[0]
        structural = structural_sidedness(program, predicate)
        empirical = estimate_sidedness(program, predicate, depth=10).k
        assert empirical == structural

    def test_bounded_recursion_grows_only_through_duplicates(self):
        # Example A.1's P: the connected set grows only by repeating c(X1),
        # so the structural count (1) and the definitional count agree, but the
        # recursion is bounded — boundedness is checked separately.
        estimate = estimate_sidedness(appendix_a_p(), "p", depth=8)
        assert estimate.k == 1
        assert structural_sidedness(appendix_a_p(), "p") == 1
