"""Tests for Theorem 3.3 detection and the redundancy-removal optimization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    implied_by_recursive_atom,
    is_one_sided,
    is_recursively_redundant,
    recursively_redundant_predicates,
    remove_recursively_redundant,
)
from repro.datalog import Database, ProgramError, parse_atom, parse_program
from repro.engine import seminaive_query
from repro.workloads import (
    buys_database,
    buys_optimized,
    buys_unoptimized,
    canonical_two_sided,
    example_3_4,
    random_pairs,
    same_generation,
    tc_with_permissions,
    transitive_closure,
)


class TestTheorem33Detection:
    def test_buys_cheap_is_redundant_knows_is_not(self):
        program = buys_unoptimized()
        assert is_recursively_redundant(program, "buys", "cheap")
        assert not is_recursively_redundant(program, "buys", "knows")
        assert recursively_redundant_predicates(program, "buys") == ["cheap"]

    def test_transitive_closure_edge_is_not_redundant(self):
        assert recursively_redundant_predicates(transitive_closure(), "t") == []

    def test_example_3_4_d_is_redundant_e_is_not(self):
        program = example_3_4()
        assert is_recursively_redundant(program, "t", "d")
        assert not is_recursively_redundant(program, "t", "e")

    def test_permissions_predicate_is_redundant(self):
        # p(X, Y) touches only distinguished variables, so every proof needs
        # boundedly many p facts per tuple... but p is re-checked at every
        # level, and the cycle through X is nonzero with the nondistinguished
        # Z on it, so p is NOT recursively redundant.
        program = tc_with_permissions()
        assert not is_recursively_redundant(program, "t", "p")

    def test_pendant_predicate_is_redundant(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W), t(X, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        assert is_recursively_redundant(program, "t", "a")

    def test_rejects_repeated_nonrecursive_predicates(self):
        with pytest.raises(ProgramError):
            is_recursively_redundant(same_generation(), "sg", "p")

    def test_rejects_unknown_body_predicate(self):
        with pytest.raises(ProgramError):
            is_recursively_redundant(transitive_closure(), "t", "zzz")

    def test_rejects_the_recursive_predicate_itself(self):
        with pytest.raises(ProgramError):
            is_recursively_redundant(transitive_closure(), "t", "t")


class TestImpliedByRecursiveAtom:
    def test_cheap_is_implied(self):
        program = buys_unoptimized()
        assert implied_by_recursive_atom(program, "buys", parse_atom("cheap(Y)"))

    def test_knows_is_not_implied(self):
        program = buys_unoptimized()
        assert not implied_by_recursive_atom(program, "buys", parse_atom("knows(X, W)"))

    def test_atom_outside_recursive_call_variables_is_not_implied(self):
        program = canonical_two_sided()
        assert not implied_by_recursive_atom(program, "t", parse_atom("a(X, W)"))

    def test_condition_must_hold_in_every_exit_rule(self):
        program = parse_program(
            """
            t(X, Y) :- likes(X, Y), cheap(Y).
            t(X, Y) :- gift(X, Y).
            t(X, Y) :- knows(X, W), t(W, Y), cheap(Y).
            """
        )
        # the gift exit rule does not establish cheap(Y), so removal is unsound
        assert not implied_by_recursive_atom(program, "t", parse_atom("cheap(Y)"))


class TestRemoval:
    def test_buys_becomes_the_paper_optimized_program(self):
        result = remove_recursively_redundant(buys_unoptimized(), "buys")
        assert result.changed
        assert [str(atom) for atom in result.removed] == ["cheap(Y)"]
        assert result.optimized == buys_optimized()
        assert is_one_sided(result.optimized, "buys")

    def test_nothing_to_remove_returns_same_program(self):
        result = remove_recursively_redundant(transitive_closure(), "t")
        assert not result.changed
        assert result.optimized == result.original

    def test_exact_duplicates_are_removed(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, Z), a(X, Z), t(Z, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        result = remove_recursively_redundant(program, "t")
        assert result.changed
        rule = result.optimized.linear_recursive_rule("t")
        assert [str(a) for a in rule.body].count("a(X, Z)") == 1

    def test_theorem_3_3_candidates_are_reported(self):
        result = remove_recursively_redundant(buys_unoptimized(), "buys")
        assert result.theorem_3_3_candidates == ["cheap"]

    def test_removal_preserves_semantics_on_random_data(self, rng):
        program = buys_unoptimized()
        optimized = remove_recursively_redundant(program, "buys").optimized
        for seed in range(4):
            database = buys_database(people=15, items=10, seed=seed)
            original, _ = seminaive_query(program, database, "buys")
            rewritten, _ = seminaive_query(optimized, database, "buys")
            assert original == rewritten

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_removal_preserves_semantics_property(self, seed):
        program = buys_unoptimized()
        optimized = remove_recursively_redundant(program, "buys").optimized
        rng = random.Random(seed)
        database = Database.from_dict(
            {
                "likes": random_pairs(10, 6, seed=seed) or [(0, 0)],
                "knows": random_pairs(10, 6, seed=seed + 1) or [(0, 1)],
                "cheap": [(value,) for value in range(6) if rng.random() < 0.6] or [(0,)],
            }
        )
        original, _ = seminaive_query(program, database, "buys")
        rewritten, _ = seminaive_query(optimized, database, "buys")
        assert original == rewritten
