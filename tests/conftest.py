"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datalog import Database
from repro.workloads import (
    buys_database,
    canonical_two_sided,
    edge_database,
    layered_dag,
    random_pairs,
    same_generation_database,
    transitive_closure,
)


@pytest.fixture
def rng() -> random.Random:
    """A deterministic random generator for tests that need one."""
    return random.Random(20240616)


@pytest.fixture
def tc_program():
    """The canonical one-sided recursion (transitive closure)."""
    return transitive_closure()


@pytest.fixture
def two_sided_program():
    """The canonical two-sided recursion of Section 4."""
    return canonical_two_sided()


@pytest.fixture
def small_graph_db() -> Database:
    """A small acyclic edge database for the transitive-closure programs."""
    return edge_database(layered_dag(5, 3, 2, seed=7))


@pytest.fixture
def chain_db() -> Database:
    """A 6-node chain with a separate base edge at the end."""
    return Database.from_dict(
        {
            "a": [(i, i + 1) for i in range(6)],
            "b": [(6, 100)],
        }
    )


@pytest.fixture
def cyclic_db() -> Database:
    """A small cyclic edge database (termination tests)."""
    edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
    return Database.from_dict({"a": edges, "b": edges})


def random_edge_db(rng: random.Random, nodes: int = 12, edges: int = 25, seed: int = 0) -> Database:
    """Helper used by tests that build several random databases."""
    return edge_database(random_pairs(edges, nodes, seed=seed if seed else rng.randrange(10**6)))
