"""Tests for expansion generation (Figure 1 and the Appendix A generalization)."""

from __future__ import annotations

import pytest

from repro.datalog import ProgramError, parse_atom, parse_program
from repro.datalog.terms import Constant, Variable
from repro.expansion import expand, expand_general, expansion_prefix_program
from repro.engine import seminaive_evaluate
from repro.datalog import Database
from repro.cq import is_contained_in
from repro.core import one_sidedness_reduction
from repro.workloads import (
    appendix_a_p,
    canonical_two_sided,
    example_3_4,
    same_generation,
    transitive_closure,
)


class TestExpandTransitiveClosure:
    """Example 2.2: the expansion of the canonical one-sided recursion."""

    def test_first_strings_match_example_2_2(self, tc_program):
        strings = expand(tc_program, "t", 2)
        rendered = [str(s) for s in strings]
        assert rendered == [
            "b(X, Y)",
            "a(X, Z_0), b(Z_0, Y)",
            "a(X, Z_0), a(Z_0, Z_1), b(Z_1, Y)",
        ]

    def test_distinguished_variables(self, tc_program):
        strings = expand(tc_program, "t", 1)
        assert strings[0].distinguished == (Variable("X"), Variable("Y"))

    def test_subscript_convention(self, tc_program):
        """A nondistinguished variable W_i first appears on iteration i (Figure 1)."""
        strings = expand(tc_program, "t", 4)
        deepest = strings[-1]
        for atom, provenance in zip(deepest.atoms, deepest.provenance):
            for variable in atom.variable_set():
                if variable.subscript is not None:
                    assert variable.subscript <= provenance.iteration

    def test_provenance_marks_exit_atoms(self, tc_program):
        strings = expand(tc_program, "t", 3)
        for string in strings:
            exit_atoms = [
                atom
                for atom, provenance in zip(string.atoms, string.provenance)
                if provenance.from_exit
            ]
            assert len(exit_atoms) == 1
            assert exit_atoms[0].predicate == "b"

    def test_recursion_depth(self, tc_program):
        strings = expand(tc_program, "t", 3)
        assert [s.recursion_depth() for s in strings] == [0, 1, 2, 3]

    def test_selection_pushes_constant(self, tc_program):
        strings = expand(tc_program, "t", 2, selection={1: "n0"})
        assert str(strings[0]) == "b(X, n0)"
        assert str(strings[2]) == "a(X, Z_0), a(Z_0, Z_1), b(Z_1, n0)"

    def test_string_count(self, tc_program):
        assert len(expand(tc_program, "t", 7)) == 8


class TestExpandOtherRecursions:
    def test_two_sided_strings(self, two_sided_program):
        strings = expand(two_sided_program, "t", 2)
        assert str(strings[1]) == "a(X, W_0), b(W_0, Z_0), c(Z_0, Y)"
        assert str(strings[2]) == "a(X, W_0), a(W_0, W_1), b(W_1, Z_1), c(Z_1, Z_0), c(Z_0, Y)"

    def test_same_generation_strings_match_example_3_3(self):
        strings = expand(same_generation(), "sg", 2)
        assert str(strings[0]) == "sg0(X, Y)"
        # atom order within a conjunction is irrelevant; compare as sets
        assert {str(a) for a in strings[1].atoms} == {"p(X, W_0)", "sg0(W_0, Z_0)", "p(Y, Z_0)"}
        assert {str(a) for a in strings[2].atoms} == {
            "p(X, W_0)",
            "p(W_0, W_1)",
            "sg0(W_1, Z_1)",
            "p(Z_0, Z_1)",
            "p(Y, Z_0)",
        }

    def test_example_3_4_has_disconnected_d_instance(self):
        strings = expand(example_3_4(), "t", 3)
        deepest = strings[-1]
        d_atoms = [atom for atom in deepest.atoms if atom.predicate == "d"]
        assert len(d_atoms) == 3
        # d(Z) shares its variable with nothing else in the string
        z_atoms = [atom for atom in deepest.atoms if Variable("Z") in atom.variable_set()]
        assert z_atoms == [parse_atom("d(Z)")]

    def test_requires_exit_rule(self):
        program = parse_program("t(X, Y) :- a(X, Z), t(Z, Y).")
        with pytest.raises(ProgramError):
            expand(program, "t", 2)

    def test_requires_linear_recursion(self):
        program = parse_program("t(X, Y) :- t(X, Z), t(Z, Y). t(X, Y) :- b(X, Y).")
        with pytest.raises(ProgramError):
            expand(program, "t", 2)


class TestExpansionSemantics:
    """The union of the expansion strings defines the recursive relation."""

    def test_prefix_program_matches_fixpoint_on_small_data(self, tc_program, chain_db):
        strings = expand(tc_program, "t", 8)
        prefix = expansion_prefix_program(strings, "t")
        via_prefix = seminaive_evaluate(prefix, chain_db)["t"].rows()
        via_fixpoint = seminaive_evaluate(tc_program, chain_db)["t"].rows()
        assert via_prefix == via_fixpoint

    def test_each_string_is_sound(self, tc_program, chain_db):
        relations = {r.name: r for r in chain_db.relations()}
        full = seminaive_evaluate(tc_program, chain_db)["t"].rows()
        for string in expand(tc_program, "t", 5):
            assert string.evaluate(relations) <= full


class TestExpandGeneral:
    def test_agrees_with_expand_on_single_rule_programs(self, tc_program):
        specialized = {str(s) for s in expand(tc_program, "t", 3)}
        general = expand_general(tc_program, "t", max_applications=4)
        # expand_general uses generic distinguished names X1, X2; compare shapes
        assert len(general) >= 4
        for string in general:
            predicates = [atom.predicate for atom in string.atoms]
            assert predicates.count("b") == 1
            assert set(predicates) <= {"a", "b"}

    def test_appendix_a_reduction_strings_have_e_chains(self):
        """Lemma A.2: e/b instances form chains ending at the third distinguished variable."""
        reduction = one_sidedness_reduction(appendix_a_p(), "p")
        strings = expand_general(reduction.target, reduction.target_predicate, max_applications=5)
        assert strings, "the generalized expansion should produce EDB-only strings"
        x3 = Variable("X3")
        for string in strings:
            e_atoms = [a for a in string.atoms if a.predicate == reduction.chain_predicate]
            b_atoms = [a for a in string.atoms if a.predicate == reduction.witness_predicate]
            assert len(b_atoms) == 1
            if not e_atoms:
                # no applications of the new recursive rule: b holds X3 directly
                assert b_atoms[0].args == (x3,)
                continue
            # exactly one e atom ends at X3, and the b atom starts the chain
            ends = [a for a in e_atoms if a.args[1] == x3]
            assert len(ends) == 1
            chain_heads = {a.args[0] for a in e_atoms}
            assert b_atoms[0].args[0] in chain_heads

    def test_max_strings_cap(self, tc_program):
        strings = expand_general(tc_program, "t", max_applications=10, max_strings=3)
        assert len(strings) == 3
