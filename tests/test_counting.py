"""Tests for the counting-method baseline."""

from __future__ import annotations

import pytest

from repro.baselines import (
    counting_query,
    counting_without_counts_query,
    detect_chain_shape,
)
from repro.datalog import Database, EvaluationError, ProgramError, parse_program
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    canonical_two_sided,
    chain,
    edge_database,
    layered_dag,
    lemma_4_2_database,
    same_generation,
    transitive_closure,
)


@pytest.fixture
def two_sided_chain_db() -> Database:
    return Database.from_dict(
        {
            "a": chain(5),
            "b": [(5, "z0"), (3, "z0")],
            "c": [(f"z{i}" if i else "z0", f"z{i + 1}") for i in range(8)],
        }
    )


class TestShapeDetection:
    def test_canonical_two_sided_shape(self, two_sided_program):
        shape = detect_chain_shape(two_sided_program, "t")
        assert shape.up_predicate == "a"
        assert shape.down_predicate == "c"

    def test_canonical_one_sided_shape(self, tc_program):
        shape = detect_chain_shape(tc_program, "t")
        assert shape.up_predicate == "a"
        assert shape.down_predicate is None

    def test_rejects_other_shapes(self):
        with pytest.raises(ProgramError):
            detect_chain_shape(same_generation(), "sg")
        ternary = parse_program(
            "t(X, Y, Z) :- a(X, W), t(W, Y, Z). t(X, Y, Z) :- b(X, Y, Z)."
        )
        with pytest.raises(ProgramError):
            detect_chain_shape(ternary, "t")


class TestCountingQuery:
    def test_one_sided_acyclic(self, tc_program):
        database = edge_database(layered_dag(5, 3, 2, seed=13))
        query = SelectionQuery.of("t", 2, {0: 0})
        result = counting_query(tc_program, database, query)
        reference, _ = seminaive_query(tc_program, database, "t", {0: 0})
        assert result.answers == reference

    def test_two_sided_acyclic(self, two_sided_program, two_sided_chain_db):
        query = SelectionQuery.of("t", 2, {0: 0})
        result = counting_query(two_sided_program, two_sided_chain_db, query)
        reference, _ = seminaive_query(two_sided_program, two_sided_chain_db, "t", {0: 0})
        assert result.answers == reference

    def test_two_sided_exact_on_lemma_4_2_family_with_depth_bound(self):
        """Counting keeps the depth index, so unlike the unary-carry algorithm it
        could handle the revisits — but the Lemma 4.2 family is cyclic, so the
        method hits its termination problem instead."""
        database, _target = lemma_4_2_database(3)
        with pytest.raises(EvaluationError):
            counting_query(canonical_two_sided(), database, SelectionQuery.of("t", 2, {0: "v1"}), max_depth=50)

    def test_cyclic_data_raises(self, two_sided_program):
        database = Database.from_dict(
            {"a": [(0, 1), (1, 0)], "b": [(0, "z0")], "c": [("z0", "z1")]}
        )
        with pytest.raises(EvaluationError):
            counting_query(two_sided_program, database, SelectionQuery.of("t", 2, {0: 0}), max_depth=20)

    def test_requires_first_column_binding(self, two_sided_program, two_sided_chain_db):
        with pytest.raises(EvaluationError):
            counting_query(two_sided_program, two_sided_chain_db, SelectionQuery.of("t", 2, {1: "z1"}))

    def test_counting_levels_reported(self, tc_program):
        database = edge_database(chain(6))
        result = counting_query(tc_program, database, SelectionQuery.of("t", 2, {0: 0}))
        assert result.stats.extra["counting_levels"] >= 6


class TestCountingWithoutCounts:
    """The end-of-Section-4 question: drop the counting fields for one-sided recursions."""

    def test_matches_counting_on_one_sided(self, tc_program):
        database = edge_database(layered_dag(4, 3, 2, seed=17))
        query = SelectionQuery.of("t", 2, {0: 0})
        with_counts = counting_query(tc_program, database, query)
        without_counts = counting_without_counts_query(tc_program, database, query)
        assert with_counts.answers == without_counts.answers

    def test_terminates_on_cyclic_data_unlike_counting(self, tc_program, cyclic_db):
        query = SelectionQuery.of("t", 2, {0: 0})
        result = counting_without_counts_query(tc_program, cyclic_db, query)
        reference, _ = seminaive_query(tc_program, cyclic_db, "t", {0: 0})
        assert result.answers == reference

    def test_rejected_on_recursions_with_a_down_chain(self, two_sided_program, two_sided_chain_db):
        with pytest.raises(EvaluationError):
            counting_without_counts_query(
                two_sided_program, two_sided_chain_db, SelectionQuery.of("t", 2, {0: 0})
            )

    def test_unary_state(self, tc_program, chain_db):
        result = counting_without_counts_query(tc_program, chain_db, SelectionQuery.of("t", 2, {0: 0}))
        assert result.stats.extra["carry_arity"] == 1


class TestConstantHeadExitRule:
    """An exit rule with a constant first head argument only fires at that value.

    Regression test: the ascend phase used to add the rule's consequences for
    *every* reached value, yielding answers semi-naive never derives.
    """

    def _program(self):
        return parse_program(
            """
            t(X, Y) :- up(X, W), t(W, Y).
            t(z9, Y) :- e(Y).
            """
        )

    def _database(self):
        return Database.from_dict({"up": [("a", "b")], "e": [("s1",), ("s2",)]})

    def test_unreachable_constant_yields_no_answers(self):
        query = SelectionQuery.of("t", 2, {0: "a"})
        result = counting_without_counts_query(self._program(), self._database(), query)
        reference, _ = seminaive_query(self._program(), self._database(), "t", {0: "a"})
        assert result.answers == reference == set()

    def test_reachable_constant_still_fires(self):
        database = Database.from_dict({"up": [("a", "z9")], "e": [("s1",), ("s2",)]})
        query = SelectionQuery.of("t", 2, {0: "a"})
        result = counting_without_counts_query(self._program(), database, query)
        reference, _ = seminaive_query(self._program(), database, "t", {0: "a"})
        assert result.answers == reference == {("a", "s1"), ("a", "s2")}
