"""Unit tests for the metrics registry (repro.obs.metrics).

Covers the registry/family/child API, the Prometheus text exposition
format's conformance corners (HELP/TYPE lines, label escaping, histogram
``_bucket``/``_sum``/``_count`` invariants) and — the part that actually
bites in a serving layer — concurrent writers hammering counters and
histograms while a scraper renders: totals must come out exact, successive
scrapes must be monotone, and no scrape may ever show a torn histogram
(``_count`` != its ``+Inf`` bucket).
"""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE,
    MetricsRegistry,
    NullRegistry,
    escape_label_value,
    exponential_buckets,
    format_value,
    latency_buckets,
)


def parse_samples(text):
    """exposition text -> {(name, frozenset(label pairs)): float}."""
    samples = {}
    pattern = re.compile(r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{(.*)\})? (\S+)$')
    label_pattern = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = pattern.match(line)
        assert match, f"unparseable sample line: {line!r}"
        name, _, body, value = match.groups()
        labels = frozenset(label_pattern.findall(body)) if body else frozenset()
        samples[(name, labels)] = float(value)
    return samples


# ----------------------------------------------------------------------
# families and children
# ----------------------------------------------------------------------
class TestFamilies:
    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", "Requests.")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_clamps_backwards_motion(self):
        registry = MetricsRegistry()
        counter = registry.counter("bridged_total", "Bridged.")
        counter.set_total(10)
        counter.set_total(7)  # a stale collector read never rewinds
        assert counter.value == 10

    def test_gauge_set_inc_dec_and_callback(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth", "Queue depth.")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 2
        gauge.set_function(lambda: 42)
        assert gauge.value == 42

    def test_labels_resolve_to_stable_children(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind_total", "By kind.", labels=("kind",))
        a = family.labels("read")
        assert family.labels(kind="read") is a
        family.labels("write").inc()
        a.inc(2)
        assert registry.sample_value("by_kind_total", {"kind": "read"}) == 2
        assert registry.sample_value("by_kind_total", {"kind": "write"}) == 1

    def test_labeled_family_rejects_bare_increments_and_bad_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("by_kind_total", "By kind.", labels=("kind",))
        with pytest.raises(ValueError):
            family.inc()
        with pytest.raises(ValueError):
            family.labels()
        with pytest.raises(ValueError):
            family.labels(nope="x")
        with pytest.raises(ValueError):
            registry.counter("bad name", "nope")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "ok", labels=("bad-label",))

    def test_reregistration_returns_the_same_family_or_raises(self):
        registry = MetricsRegistry()
        first = registry.counter("again_total", "Again.")
        assert registry.counter("again_total", "Again.") is first
        with pytest.raises(ValueError):
            registry.gauge("again_total", "A different kind.")
        with pytest.raises(ValueError):
            registry.counter("again_total", "Different labels.", labels=("x",))

    def test_histogram_buckets_are_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h1", "h", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("h2", "h", buckets=(2.0, 1.0))
        hist = registry.histogram("h3", "h", buckets=(1.0, 2.0, float("inf")))
        assert hist.buckets == (1.0, 2.0)  # +Inf is implicit

    def test_default_latency_buckets_are_log_spaced(self):
        bounds = latency_buckets()
        assert bounds[0] == pytest.approx(1e-5)
        assert bounds[-1] == 10.0
        assert list(bounds) == sorted(bounds)
        assert exponential_buckets(1, 4, 3) == (1, 4, 16)


# ----------------------------------------------------------------------
# exposition-format conformance
# ----------------------------------------------------------------------
class TestExposition:
    def test_content_type_pins_format_version(self):
        assert "version=0.0.4" in CONTENT_TYPE
        assert CONTENT_TYPE.startswith("text/plain")

    def test_help_and_type_lines_precede_samples(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "A counter.").inc()
        registry.gauge("g", "A gauge.").set(1)
        registry.histogram("h_seconds", "A histogram.", buckets=(1.0,)).observe(0.5)
        lines = registry.render().splitlines()
        for name, kind in (("c_total", "counter"), ("g", "gauge"), ("h_seconds", "histogram")):
            help_at = lines.index(f"# HELP {name} A {kind}.")
            assert lines[help_at + 1] == f"# TYPE {name} {kind}"

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("esc_total", "Escapes.", labels=("path",))
        family.labels('a"b\\c\nd').inc()
        rendered = registry.render()
        assert 'path="a\\"b\\\\c\\nd"' in rendered
        assert escape_label_value('"') == '\\"'

    def test_help_text_is_escaped(self):
        registry = MetricsRegistry()
        registry.counter("h_total", "line one\nline two \\ slash")
        assert "# HELP h_total line one\\nline two \\\\ slash" in registry.render()

    def test_value_formatting(self):
        assert format_value(5.0) == "5"
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"

    def test_histogram_bucket_sum_count_invariants(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 2.0, 100.0):
            hist.observe(value)
        samples = parse_samples(registry.render())
        bucket = lambda le: samples[("lat_seconds_bucket", frozenset({("le", le)}))]
        # le="0.1" includes the exact-boundary observation (le semantics)
        assert bucket("0.1") == 2
        assert bucket("1") == 3
        assert bucket("10") == 4
        assert bucket("+Inf") == 5
        # cumulative and consistent with _count / _sum
        assert bucket("0.1") <= bucket("1") <= bucket("10") <= bucket("+Inf")
        assert samples[("lat_seconds_count", frozenset())] == bucket("+Inf")
        assert samples[("lat_seconds_sum", frozenset())] == pytest.approx(102.65)

    def test_families_without_samples_still_expose_metadata(self):
        registry = MetricsRegistry()
        registry.counter("empty_total", "No labels resolved yet.", labels=("k",))
        rendered = registry.render()
        assert "# HELP empty_total" in rendered
        assert "# TYPE empty_total counter" in rendered
        assert ("empty_total{" not in rendered)

    def test_collectors_run_per_render(self):
        registry = MetricsRegistry()
        counter = registry.counter("pulled_total", "Pulled from stats.")
        source = {"value": 0}
        registry.register_collector(lambda: counter.set_total(source["value"]))
        source["value"] = 9
        assert parse_samples(registry.render())[("pulled_total", frozenset())] == 9
        source["value"] = 12
        assert registry.sample_value("pulled_total") == 12


# ----------------------------------------------------------------------
# concurrency: writers vs a scraper
# ----------------------------------------------------------------------
class TestConcurrency:
    WRITERS = 8
    ITERATIONS = 2000

    def test_hammered_counters_and_histograms_stay_exact_and_untorn(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", "Ops.", labels=("worker",))
        hist = registry.histogram("size", "Sizes.", buckets=(1.0, 10.0, 100.0))
        start = threading.Barrier(self.WRITERS + 1)
        scrapes = []
        stop = threading.Event()

        def write(index):
            child = counter.labels(str(index % 2))  # contend on shared children
            start.wait()
            for step in range(self.ITERATIONS):
                child.inc()
                hist.observe(float(step % 150))

        def scrape():
            start.wait()
            while not stop.is_set():
                scrapes.append(parse_samples(registry.render()))

        writers = [
            threading.Thread(target=write, args=(index,)) for index in range(self.WRITERS)
        ]
        scraper = threading.Thread(target=scrape)
        for thread in writers + [scraper]:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        scraper.join()

        # final totals are exact: no lost increments, no double counts
        total = self.WRITERS * self.ITERATIONS
        assert registry.sample_value("ops_total", {"worker": "0"}) == total / 2
        assert registry.sample_value("ops_total", {"worker": "1"}) == total / 2
        assert registry.sample_value("size_count") == total
        assert scrapes, "the scraper never got a render in"
        # every scrape is internally consistent and monotone vs the previous
        previous = None
        for samples in scrapes:
            count = samples.get(("size_count", frozenset()))
            if count is not None:
                inf_bucket = samples[("size_bucket", frozenset({("le", "+Inf")}))]
                assert count == inf_bucket, "torn histogram: _count != +Inf bucket"
                running = 0.0
                for le in ("1", "10", "100", "+Inf"):
                    value = samples[("size_bucket", frozenset({("le", le)}))]
                    assert value >= running, "bucket counts must be cumulative"
                    running = value
            if previous is not None:
                for key, value in samples.items():
                    if key[0] in ("ops_total", "size_count"):
                        assert value >= previous.get(key, 0.0), f"{key} went backwards"
            previous = samples

    def test_children_created_under_scrape_pressure(self):
        registry = MetricsRegistry()
        family = registry.counter("spawn_total", "Spawned.", labels=("k",))
        done = threading.Event()

        def spawn():
            for index in range(500):
                family.labels(str(index)).inc()
            done.set()

        thread = threading.Thread(target=spawn)
        thread.start()
        while not done.is_set():
            registry.render()
        thread.join()
        samples = parse_samples(registry.render())
        assert len([key for key in samples if key[0] == "spawn_total"]) == 500


# ----------------------------------------------------------------------
# the null registry
# ----------------------------------------------------------------------
class TestNullRegistry:
    def test_api_parity_at_zero_cost(self):
        registry = NullRegistry()
        assert registry.null and not MetricsRegistry.null
        counter = registry.counter("x_total", "x", labels=("k",))
        counter.inc()
        counter.labels("anything").inc(5)
        registry.gauge("g", "g").set(3)
        hist = registry.histogram("h", "h")
        hist.observe(1.0)
        registry.register_collector(lambda: pytest.fail("collectors never run"))
        assert registry.render() == ""
        assert registry.sample_value("x_total") is None
        assert counter.value == 0 and hist.count == 0
