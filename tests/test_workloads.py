"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.datalog import SchemaError
from repro.workloads import (
    ALL_CANONICAL,
    appendix_a_database,
    buys_database,
    chain,
    complete_binary_tree,
    cycle,
    edge_database,
    grid,
    layered_dag,
    lemma_4_2_database,
    nodes_of,
    permissions_database,
    random_graph,
    random_pairs,
    relations_database,
    same_generation_database,
    uniform_tree,
    unbounded_p_database,
)


class TestGraphGenerators:
    def test_chain(self):
        assert chain(3) == [(0, 1), (1, 2), (2, 3)]
        assert chain(2, start=10) == [(10, 11), (11, 12)]

    def test_cycle_closes(self):
        edges = cycle(4)
        assert (3, 0) in edges
        assert len(edges) == 4

    def test_complete_binary_tree_edge_count(self):
        edges = complete_binary_tree(3)
        assert len(edges) == 2 * (2 ** 3 - 1)

    def test_uniform_tree_size(self):
        edges = uniform_tree(3, 2)
        assert len(edges) == 3 + 9
        assert len(nodes_of(edges)) == 1 + 3 + 9

    def test_grid_edge_count(self):
        edges = grid(3, 3)
        assert len(edges) == 2 * 3 * 2  # 6 right + 6 down

    def test_layered_dag_is_deterministic_and_acyclic(self):
        first = layered_dag(4, 3, 2, seed=5)
        second = layered_dag(4, 3, 2, seed=5)
        assert first == second
        assert all(source < target for source, target in first)

    def test_random_graph_determinism_and_size(self):
        edges = random_graph(10, 20, seed=3)
        assert edges == random_graph(10, 20, seed=3)
        assert len(edges) == 20
        assert all(source != target for source, target in edges)

    def test_random_pairs_respects_domain(self):
        pairs = random_pairs(15, 5, seed=1)
        assert all(0 <= x < 5 and 0 <= y < 5 for x, y in pairs)

    def test_random_generators_cap_at_domain_size(self):
        assert len(random_pairs(1000, 3, seed=2)) <= 9


class TestDatabasePackaging:
    def test_edge_database_defaults_base_to_edges(self):
        database = edge_database([(1, 2)])
        assert database.relation("a").rows() == {(1, 2)}
        assert database.relation("b").rows() == {(1, 2)}

    def test_edge_database_with_distinct_base(self):
        database = edge_database([(1, 2)], base_edges=[(9, 9)])
        assert database.relation("b").rows() == {(9, 9)}

    def test_relations_database_infers_arity(self):
        database = relations_database(a=[(1, 2)], d=[(5,)])
        assert database.relation("a").arity == 2
        assert database.relation("d").arity == 1

    def test_relations_database_rejects_empty(self):
        with pytest.raises(ValueError):
            relations_database(a=[])


class TestPaperFamilies:
    def test_lemma_4_2_target_is_derivable(self):
        from repro.engine import seminaive_query
        from repro.workloads import canonical_two_sided

        database, target = lemma_4_2_database(4)
        answers, _ = seminaive_query(canonical_two_sided(), database, "t")
        assert target in answers

    def test_buys_database_schema(self):
        database = buys_database(people=5, items=5, seed=1)
        assert database.relation("likes").arity == 2
        assert database.relation("knows").arity == 2
        assert database.relation("cheap").arity == 1

    def test_same_generation_database_has_both_naming_schemes(self):
        database = same_generation_database(branching=2, depth=2)
        for name in ("p", "sg0", "up", "down", "flat"):
            assert database.has_relation(name)

    def test_permissions_database(self):
        database = permissions_database([(1, 2), (2, 3)], permission_fraction=1.0, seed=0)
        assert len(database.relation("p")) == 9  # all pairs over 3 nodes

    def test_appendix_databases(self):
        assert appendix_a_database().has_relation("p0")
        assert unbounded_p_database().has_relation("r")

    def test_canonical_program_factories_are_consistent(self):
        for name, factory in ALL_CANONICAL.items():
            program = factory()
            assert program.rules, name
            assert len(program.idb_predicates()) >= 1, name
