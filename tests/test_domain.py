"""The interned value domain: round-trips, boundaries, and engine wiring."""

from __future__ import annotations

from repro import Database, Session, parse_program
from repro.datalog.relation import Relation
from repro.engine import (
    EvaluationStats,
    interning_enabled,
    interning_mode,
    naive_evaluate,
    seminaive_evaluate,
)
from repro.engine.domain import Domain, domain_for, intern_plan
from repro.engine.compile import compile_rule
from repro.datalog.atoms import Atom
from repro.datalog.rules import Rule

PROGRAM = parse_program(
    """
    t(X, Y) :- a(X, Z), t(Z, Y).
    t(X, Y) :- b(X, Y).
    """
)


class TestDomainRoundTrip:
    def test_mixed_value_types_round_trip(self):
        domain = Domain()
        values = ["alpha", 7, 2.5, "7", ("nested", 1), "alpha"]
        codes = [domain.intern(value) for value in values]
        # distinct values get distinct dense codes; repeats reuse them
        assert codes[0] == codes[5]
        assert len(set(codes)) == 5
        assert sorted(set(codes)) == list(range(5))
        for value, code in zip(values, codes):
            assert domain.decode(code) == value
            assert type(domain.decode(code)) is type(value)

    def test_row_round_trip(self):
        domain = Domain()
        row = ("x", 1, 3.5)
        assert domain.decode_row(domain.intern_row(row)) == row

    def test_relation_round_trip(self):
        domain = Domain()
        relation = Relation("r", 2, [("a", 1), ("b", 2), ("a", 2)])
        encoded = domain.encode_relation(relation)
        assert encoded.name == "r" and encoded.arity == 2
        assert all(
            type(value) is int for row in encoded.rows() for value in row
        )
        decoded = domain.decode_relation(encoded)
        assert decoded.rows() == relation.rows()

    def test_python_equality_is_preserved(self):
        # 1 and 1.0 are equal in Python set semantics, so they must share a
        # code — exactly what the raw tuple-set storage would do
        domain = Domain()
        assert domain.intern(1) == domain.intern(1.0)
        assert domain.intern("1") != domain.intern(1)

    def test_contains_and_len(self):
        domain = Domain()
        domain.intern("x")
        assert "x" in domain
        assert "y" not in domain
        assert len(domain) == 1


class TestDomainSelection:
    def test_all_int_database_skips_interning(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        with interning_mode(True):
            assert domain_for(PROGRAM, database) is None

    def test_non_int_values_trigger_interning(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, "goal")]})
        with interning_mode(True):
            domain = domain_for(PROGRAM, database)
        assert isinstance(domain, Domain)

    def test_disabled_interning_returns_none(self):
        database = Database.from_dict({"a": [("x", "y")], "b": [("y", "z")]})
        with interning_mode(False):
            assert not interning_enabled()
            assert domain_for(PROGRAM, database) is None


class TestInternPlan:
    def test_constants_move_into_code_space(self):
        domain = Domain()
        rule = Rule(Atom.of("t", "X", "lit"), (Atom.of("e", "start", "X"),))
        plan = compile_rule(rule)
        interned = intern_plan(plan, domain)
        (position, code), = interned.steps[0].const_cols
        assert position == 0 and domain.decode(code) == "start"
        is_const, head_code = interned.head_ops[1]
        assert is_const and domain.decode(head_code) == "lit"
        # structure is untouched, so instrumentation counts stay identical
        assert interned.order == plan.order
        assert interned.slot_count == plan.slot_count
        assert interned.steps[0].probe_columns == plan.steps[0].probe_columns


class TestEngineBoundary:
    def test_seminaive_returns_original_values(self):
        database = Database.from_dict(
            {"a": [("u", "v"), ("v", "w")], "b": [("w", "end")]}
        )
        derived = seminaive_evaluate(PROGRAM, database)
        assert derived["t"].rows() == {
            ("w", "end"), ("v", "end"), ("u", "end"),
        }
        assert all(
            type(value) is str for row in derived["t"].rows() for value in row
        )

    def test_interned_matches_uninterned(self):
        database = Database.from_dict(
            {"a": [("a", "b"), ("b", "c"), ("c", "d")], "b": [("d", 0), ("b", 1.5)]}
        )
        with interning_mode(True):
            interned = seminaive_evaluate(PROGRAM, database)
            interned_naive = naive_evaluate(PROGRAM, database)
        with interning_mode(False):
            raw = seminaive_evaluate(PROGRAM, database)
        assert interned["t"].rows() == raw["t"].rows() == interned_naive["t"].rows()

    def test_counters_identical_with_and_without_interning(self):
        database = Database.from_dict(
            {"a": [("a", "b"), ("b", "c")], "b": [("c", "z")]}
        )
        with_stats, without_stats = EvaluationStats(), EvaluationStats()
        with interning_mode(True):
            seminaive_evaluate(PROGRAM, database, with_stats)
        with interning_mode(False):
            seminaive_evaluate(PROGRAM, database, without_stats)
        with_counts = with_stats.as_dict()
        without_counts = without_stats.as_dict()
        with_counts.pop("elapsed_seconds")
        without_counts.pop("elapsed_seconds")
        assert with_counts == without_counts

    def test_session_query_returns_original_values(self):
        session = Session(
            PROGRAM,
            Database.from_dict({"a": [("s", "m")], "b": [("m", 42), ("s", 2.5)]}),
        )
        answers = session.query("t(s, Y)?").answers
        assert answers == {("s", 42), ("s", 2.5)}
        assert {type(value) for _s, value in answers} == {int, float}
        session.insert("b", ("m", "tail"))
        assert ("s", "tail") in session.query("t(s, Y)?").answers


class TestIntOnlyVerdictCache:
    """The memoized all-int scan is keyed on Relation.version, not row count."""

    def test_len_preserving_mutation_flips_the_verdict(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        assert domain_for(PROGRAM, database) is None  # all ints: evaluate raw
        relation = database.relation("b")
        relation.discard((2, 3))
        relation.add((2, "three"))  # same row count, no longer int-only
        assert domain_for(PROGRAM, database) is not None

    def test_reverting_to_int_only_is_seen_too(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, "x")]})
        assert domain_for(PROGRAM, database) is not None
        relation = database.relation("b")
        relation.discard((2, "x"))
        relation.add((2, 3))
        assert domain_for(PROGRAM, database) is None

    def test_unmutated_relations_reuse_the_cached_verdict(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        relation = database.relation("a")
        before = relation.version
        assert domain_for(PROGRAM, database) is None
        assert domain_for(PROGRAM, database) is None
        assert relation.version == before  # scans never mutate
