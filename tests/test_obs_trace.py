"""Unit tests for the span tracer (repro.obs.trace)."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.trace import NullTracer, Span, Tracer


class TestSpans:
    def test_span_context_records_duration_and_attributes(self):
        tracer = Tracer()
        with tracer.span("flush", rows=42):
            pass
        (span,) = tracer.spans()
        assert span.name == "flush"
        assert span.attributes == {"rows": 42}
        assert span.duration >= 0
        assert span.started_at > 0
        assert tracer.spans_recorded == 1

    def test_annotate_attaches_mid_span_attributes(self):
        tracer = Tracer()
        with tracer.span("flush", tickets=3) as span:
            span.annotate(epoch=7, published=("t",))
        (span,) = tracer.spans()
        assert span.attributes == {"tickets": 3, "epoch": 7, "published": ("t",)}

    def test_exceptions_still_record_the_span_tagged_with_the_error(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("flush"):
                raise RuntimeError("disk on fire")
        (span,) = tracer.spans()
        assert span.attributes["error"] == "RuntimeError('disk on fire')"

    def test_ring_buffer_is_bounded_and_counts_drops(self):
        tracer = Tracer(capacity=4)
        for index in range(10):
            tracer.record("op", 0.0, index=index)
        spans = tracer.spans()
        assert len(spans) == 4
        assert [span.attributes["index"] for span in spans] == [6, 7, 8, 9]
        assert tracer.spans_recorded == 10
        assert tracer.dropped() == 6

    def test_spans_filter_by_name(self):
        tracer = Tracer()
        tracer.record("flush", 0.0)
        tracer.record("compaction", 0.0)
        tracer.record("flush", 0.0)
        assert len(tracer.spans("flush")) == 2
        assert len(tracer.spans("compaction")) == 1
        assert len(tracer.spans()) == 3

    def test_span_str_is_human_readable(self):
        span = Span("flush", 0.0, 0.0015, {"rows": 3})
        assert str(span) == "span flush 1.500ms [rows=3]"


class TestSlowLog:
    def test_slow_spans_clear_the_threshold(self):
        tracer = Tracer(slow_threshold_seconds=0.05)
        tracer.record("query", 0.01)
        tracer.record("query", 0.05)  # >= threshold counts
        tracer.record("query", 0.50)
        slow = tracer.slow_spans()
        assert [span.duration for span in slow] == [0.05, 0.50]
        assert tracer.slow_spans_recorded == 2
        assert tracer.spans_recorded == 3

    def test_slow_log_survives_a_burst_of_fast_spans(self):
        tracer = Tracer(capacity=8, slow_threshold_seconds=0.1, slow_capacity=4)
        tracer.record("query", 1.0)
        for _ in range(100):
            tracer.record("query", 0.0)
        assert len(tracer.spans()) == 8  # the slow span fell off the main ring
        assert [span.duration for span in tracer.slow_spans()] == [1.0]

    def test_record_returns_the_span_for_further_inspection(self):
        tracer = Tracer()
        span = tracer.record("slow_query", 0.2, predicate="t")
        assert span.name == "slow_query"
        assert span.attributes == {"predicate": "t"}

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)
        with pytest.raises(ValueError):
            Tracer(slow_capacity=0)
        with pytest.raises(ValueError):
            Tracer(slow_threshold_seconds=-1.0)


class TestExport:
    def test_jsonl_round_trip_via_file_object(self):
        tracer = Tracer()
        tracer.record("flush", 0.002, epoch=1)
        tracer.record("compaction", 0.004, epoch=2)
        buffer = io.StringIO()
        assert tracer.export_jsonl(buffer) == 2
        rows = [json.loads(line) for line in buffer.getvalue().splitlines()]
        assert rows[0]["name"] == "flush"
        assert rows[0]["duration_seconds"] == 0.002
        assert rows[0]["attributes"] == {"epoch": 1}
        assert rows[1]["name"] == "compaction"

    def test_jsonl_export_to_a_path(self, tmp_path):
        tracer = Tracer()
        tracer.record("op", 0.001)
        destination = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(destination) == 1
        assert json.loads(destination.read_text())["name"] == "op"

    def test_clear_empties_both_logs_but_keeps_lifetime_counters(self):
        tracer = Tracer(slow_threshold_seconds=0.0)
        tracer.record("op", 1.0)
        tracer.clear()
        assert tracer.spans() == []
        assert tracer.slow_spans() == []
        assert tracer.spans_recorded == 1


class TestConcurrency:
    def test_parallel_recorders_never_lose_counts(self):
        tracer = Tracer(capacity=10_000, slow_threshold_seconds=0.5)
        threads = [
            threading.Thread(
                target=lambda: [tracer.record("op", 0.001) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert tracer.spans_recorded == 4000
        assert len(tracer.spans()) == 4000
        assert tracer.slow_spans_recorded == 0


class TestNullTracer:
    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert tracer.null and not Tracer.null
        with tracer.span("flush", rows=1) as span:
            assert span.annotate(epoch=2) is span
        tracer.record("slow_query", 99.0)
        assert tracer.spans() == []
        assert tracer.slow_spans() == []
        assert tracer.spans_recorded == 0
        assert tracer.dropped() == 0
        assert tracer.export_jsonl(io.StringIO()) == 0

    def test_null_threshold_makes_every_elapsed_check_fail(self):
        # call sites guard the slow-query log with
        # `elapsed >= tracer.slow_threshold_seconds`; inf means "never".
        assert not (1e9 >= NullTracer().slow_threshold_seconds)

    def test_shared_span_context_allocates_nothing(self):
        tracer = NullTracer()
        assert tracer.span("a") is tracer.span("b")
