"""Unit tests for :mod:`repro.datalog.relation`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog import SchemaError
from repro.datalog.relation import Relation


@pytest.fixture
def edges() -> Relation:
    return Relation("edge", 2, [(1, 2), (2, 3), (1, 3), (3, 1)])


class TestBasics:
    def test_len_iter_contains(self, edges):
        assert len(edges) == 4
        assert (1, 2) in edges
        assert (9, 9) not in edges
        assert set(edges) == {(1, 2), (2, 3), (1, 3), (3, 1)}

    def test_add_reports_novelty(self, edges):
        assert edges.add((5, 6)) is True
        assert edges.add((5, 6)) is False
        assert len(edges) == 5

    def test_add_all_counts_new(self, edges):
        assert edges.add_all([(1, 2), (7, 8), (8, 9)]) == 2

    def test_arity_enforced(self, edges):
        with pytest.raises(SchemaError):
            edges.add((1, 2, 3))

    def test_negative_arity_rejected(self):
        with pytest.raises(SchemaError):
            Relation("bad", -1)

    def test_discard(self, edges):
        assert edges.discard((1, 2)) is True
        assert (1, 2) not in edges
        assert edges.discard((1, 2)) is False  # idempotent

    def test_discard_all_counts_present(self, edges):
        assert edges.discard_all([(1, 2), (9, 9), (2, 3), (1, 2)]) == 2
        assert (1, 2) not in edges
        assert (2, 3) not in edges
        assert len(edges) == 2

    def test_discard_all_maintains_live_indexes(self, edges):
        assert edges.lookup({0: 1}) and edges.lookup({1: 3})  # build indexes
        edges.discard_all([(1, 2), (1, 3)])
        assert edges.lookup({0: 1}) == []
        assert set(edges.lookup({1: 3})) == {(2, 3)}

    def test_copy_is_independent(self, edges):
        clone = edges.copy()
        clone.add((9, 9))
        assert (9, 9) not in edges

    def test_is_empty(self):
        assert Relation("empty", 2).is_empty()

    def test_column_values(self, edges):
        assert edges.column_values(0) == {1, 2, 3}
        assert edges.column_values(1) == {1, 2, 3}

    def test_equality(self):
        assert Relation("r", 2, [(1, 2)]) == Relation("r", 2, [(1, 2)])
        assert Relation("r", 2, [(1, 2)]) != Relation("r", 2, [(1, 3)])


class TestLookup:
    def test_unrestricted_lookup_returns_everything(self, edges):
        assert set(edges.lookup({})) == set(edges)

    def test_single_column_lookup(self, edges):
        assert set(edges.lookup({0: 1})) == {(1, 2), (1, 3)}

    def test_two_column_lookup(self, edges):
        assert edges.lookup({0: 1, 1: 3}) == [(1, 3)]

    def test_missing_value_gives_empty(self, edges):
        assert edges.lookup({0: 42}) == []

    def test_out_of_range_column_rejected(self, edges):
        with pytest.raises(SchemaError):
            edges.lookup({5: 1})

    def test_index_stays_fresh_after_insert(self, edges):
        assert set(edges.lookup({0: 9})) == set()
        edges.add((9, 10))
        assert set(edges.lookup({0: 9})) == {(9, 10)}

    def test_project(self, edges):
        assert edges.project([0]) == {(1,), (2,), (3,)}
        assert edges.project([1, 0]) == {(2, 1), (3, 2), (3, 1), (1, 3)}


class TestLookupProperties:
    @given(
        st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40),
        st.integers(0, 5),
        st.integers(0, 1),
    )
    def test_lookup_matches_filter_semantics(self, rows, value, column):
        relation = Relation("r", 2, rows)
        via_index = set(relation.lookup({column: value}))
        via_filter = {row for row in rows if row[column] == value}
        assert via_index == via_filter

    @given(st.sets(st.tuples(st.integers(0, 3), st.integers(0, 3)), max_size=20))
    def test_lookup_results_are_subsets_of_rows(self, rows):
        relation = Relation("r", 2, rows)
        for value in range(4):
            assert set(relation.lookup({0: value})) <= set(rows)


class TestDiscardKeepsIndexes:
    """``discard`` must surgically update index buckets, not drop every index."""

    def test_interleaved_add_discard_lookup(self, edges):
        assert set(edges.lookup({0: 1})) == {(1, 2), (1, 3)}  # builds the column-0 index
        edges.discard((1, 2))
        assert set(edges.lookup({0: 1})) == {(1, 3)}
        edges.add((1, 4))
        assert set(edges.lookup({0: 1})) == {(1, 3), (1, 4)}
        edges.discard((1, 3))
        edges.discard((1, 4))
        assert edges.lookup({0: 1}) == []
        edges.add((1, 2))
        assert edges.lookup({0: 1}) == [(1, 2)]

    def test_discard_updates_every_live_index(self, edges):
        edges.lookup({0: 1})
        edges.lookup({1: 3})
        edges.lookup({0: 1, 1: 3})
        edges.discard((1, 3))
        assert set(edges.lookup({0: 1})) == {(1, 2)}
        assert set(edges.lookup({1: 3})) == {(2, 3)}
        assert edges.lookup({0: 1, 1: 3}) == []

    def test_discard_absent_row_is_noop(self, edges):
        edges.lookup({0: 1})
        edges.discard((42, 42))
        assert set(edges.lookup({0: 1})) == {(1, 2), (1, 3)}
        assert len(edges) == 4

    @given(
        st.lists(
            st.tuples(st.booleans(), st.tuples(st.integers(0, 3), st.integers(0, 3))),
            max_size=60,
        )
    )
    def test_random_interleaving_matches_set_semantics(self, operations):
        relation = Relation("r", 2)
        reference = set()
        for is_add, row in operations:
            if is_add:
                relation.add(row)
                reference.add(row)
            else:
                relation.discard(row)
                reference.discard(row)
            # exercise lookups mid-stream so indexes exist and must stay fresh
            for column in (0, 1):
                assert set(relation.lookup({column: row[column]})) == {
                    r for r in reference if r[column] == row[column]
                }
        assert relation.rows() == reference


class TestClearAndProbe:
    def test_clear_empties_but_keeps_registered_indexes(self, edges):
        edges.lookup({0: 1})
        edges.clear()
        assert len(edges) == 0
        assert edges.lookup({0: 1}) == []
        edges.add((1, 7))  # must be visible through the surviving index
        assert edges.lookup({0: 1}) == [(1, 7)]

    def test_probe_matches_lookup(self, edges):
        # single-column probes take the bare value (keys are stored unwrapped)
        assert set(edges.probe((0,), 1)) == set(edges.lookup({0: 1}))
        assert set(edges.probe((0, 1), (1, 3))) == set(edges.lookup({0: 1, 1: 3}))
        assert list(edges.probe((0,), 42)) == []

    def test_probe_rejects_out_of_range_columns(self, edges):
        with pytest.raises(SchemaError):
            edges.probe((5,), 1)


class TestBulkAddAll:
    """``add_all`` batches into the row set and extends each index once."""

    def test_bulk_insert_maintains_live_indexes(self, edges):
        edges.lookup({0: 1})
        edges.lookup({0: 1, 1: 2})
        assert edges.add_all([(1, 9), (4, 4), (1, 9), (1, 2)]) == 2
        assert set(edges.lookup({0: 1})) == {(1, 2), (1, 3), (1, 9)}
        assert edges.lookup({0: 4, 1: 4}) == [(4, 4)]
        assert len(edges) == 6

    def test_bulk_insert_validates_arity(self, edges):
        with pytest.raises(SchemaError):
            edges.add_all([(1, 2, 3)])

    def test_mid_batch_failure_keeps_indexes_consistent(self, edges):
        # rows inserted before a bad row trips validation must still be
        # visible through every registered index
        edges.lookup({0: 5})  # register the column-0 index
        with pytest.raises(SchemaError):
            edges.add_all([(5, 6), (7, 8, 9)])
        assert (5, 6) in edges
        assert edges.lookup({0: 5}) == [(5, 6)]

    def test_bulk_insert_into_unindexed_relation(self):
        relation = Relation("r", 2)
        assert relation.add_all([(1, 2), (3, 4)]) == 2
        assert set(relation.lookup({1: 4})) == {(3, 4)}

    def test_constructor_uses_bulk_path(self):
        relation = Relation("r", 1, [(1,), (2,), (1,)])
        assert len(relation) == 2


class TestCopyKeepsIndexes:
    def test_copy_preserves_index_registrations(self, edges):
        edges.lookup({0: 1})  # register and build the column-0 index
        clone = edges.copy()
        # the clone serves the same probe signature and stays maintained
        assert set(clone.probe((0,), 1)) == {(1, 2), (1, 3)}
        clone.add((1, 8))
        assert set(clone.probe((0,), 1)) == {(1, 2), (1, 3), (1, 8)}
        clone.discard((1, 2))
        assert set(clone.probe((0,), 1)) == {(1, 3), (1, 8)}

    def test_copy_indexes_are_independent(self, edges):
        edges.lookup({0: 1})
        clone = edges.copy()
        clone.add((1, 8))
        clone.discard((1, 3))
        assert set(edges.probe((0,), 1)) == {(1, 2), (1, 3)}
        assert set(edges.lookup({0: 1})) == {(1, 2), (1, 3)}


class TestMixedMutationIndexConsistency:
    """add / discard / clear / probe interleavings keep every index exact."""

    def test_add_discard_clear_probe_cycle(self):
        relation = Relation("r", 2)
        relation.add_all([(1, 2), (2, 3), (1, 3)])
        assert set(relation.probe((0,), 1)) == {(1, 2), (1, 3)}
        assert relation.probe((0, 1), (2, 3)) == [(2, 3)]
        relation.discard((1, 2))
        assert set(relation.probe((0,), 1)) == {(1, 3)}
        relation.clear()
        assert list(relation.probe((0,), 1)) == []
        assert list(relation.probe((0, 1), (2, 3))) == []
        # registered signatures survive the clear and see new batches
        relation.add_all([(1, 7), (5, 5)])
        relation.add((1, 9))
        assert set(relation.probe((0,), 1)) == {(1, 7), (1, 9)}
        assert relation.probe((0, 1), (5, 5)) == [(5, 5)]
        relation.discard((1, 7))
        relation.discard((1, 9))
        assert list(relation.probe((0,), 1)) == []


class TestFreezeSnapshots:
    """freeze(): O(1) immutable handles with copy-on-write isolation."""

    @pytest.fixture
    def edges(self):
        return Relation("a", 2, [(1, 2), (1, 3), (2, 3)])

    def test_frozen_handle_sees_the_freeze_instant(self, edges):
        snapshot = edges.freeze()
        assert snapshot.frozen and not edges.frozen
        assert snapshot.rows() == edges.rows()
        assert snapshot.name == "a" and snapshot.arity == 2

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda r: r.add((9, 9)),
            lambda r: r.add_all([(9, 9)]),
            lambda r: r.union_update({(9, 9)}),
            lambda r: r.discard((1, 2)),
            lambda r: r.discard((77, 77)),  # even a no-op discard must raise
            lambda r: r.discard_all([(1, 2)]),
            lambda r: r.clear(),
        ],
    )
    def test_mutating_a_frozen_snapshot_raises(self, edges, mutate):
        snapshot = edges.freeze()
        with pytest.raises(SchemaError, match="frozen snapshot"):
            mutate(snapshot)
        assert snapshot.rows() == {(1, 2), (1, 3), (2, 3)}

    def test_live_mutations_do_not_leak_into_the_snapshot(self, edges):
        edges.lookup({0: 1})  # register an index that the snapshot shares
        snapshot = edges.freeze()
        edges.add((5, 6))
        edges.discard((1, 2))
        edges.add_all([(7, 8)])
        edges.union_update({(8, 9)})
        assert snapshot.rows() == {(1, 2), (1, 3), (2, 3)}
        assert set(snapshot.lookup({0: 1})) == {(1, 2), (1, 3)}
        assert set(snapshot.probe((0,), 5)) == set()
        assert edges.rows() == {(1, 3), (2, 3), (5, 6), (7, 8), (8, 9)}
        assert set(edges.lookup({0: 1})) == {(1, 3)}

    def test_clear_detaches_without_corrupting_the_snapshot(self, edges):
        edges.lookup({0: 1})
        snapshot = edges.freeze()
        edges.clear()
        assert len(edges) == 0
        assert snapshot.rows() == {(1, 2), (1, 3), (2, 3)}
        assert set(snapshot.lookup({0: 1})) == {(1, 2), (1, 3)}
        # the live side keeps its registered signature across the clear
        edges.add((1, 9))
        assert set(edges.probe((0,), 1)) == {(1, 9)}

    def test_freeze_is_idempotent_and_repeated_freezes_share(self, edges):
        first = edges.freeze()
        assert first.freeze() is first
        second = edges.freeze()  # no mutation in between: another O(1) share
        assert second.rows() == first.rows()
        edges.add((9, 9))
        assert first.rows() == second.rows() == {(1, 2), (1, 3), (2, 3)}

    def test_lazy_index_build_on_frozen_is_allowed(self, edges):
        snapshot = edges.freeze()
        edges.add((1, 9))  # live detaches first
        # a probe signature never built before the freeze builds lazily
        assert set(snapshot.probe((1,), 3)) == {(1, 3), (2, 3)}
        assert snapshot.rows() == {(1, 2), (1, 3), (2, 3)}

    def test_copy_of_a_frozen_snapshot_is_mutable(self, edges):
        snapshot = edges.freeze()
        clone = snapshot.copy()
        assert not clone.frozen
        clone.add((9, 9))
        assert (9, 9) in clone and (9, 9) not in snapshot
