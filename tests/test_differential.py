"""Differential fuzzing: all engines must agree on seeded random cases.

This is the permanent tier-1 foothold of the ``repro.testing`` harness: 84
deterministic seeds spanning every generator family (chain, tree, cyclic,
cross-product, one-sided, two-sided, bounded) run through naive, semi-naive,
magic sets, counting and the optimizer front door (``repro.answer`` with
``strategy="auto"``, which exercises bounded-recursion unfolding, the
one-sided schema, counting and magic as the rewrites dictate), asserting
identical results tuple for tuple.  Any failure names its seed, so it
reproduces with ``generate_case(seed)``.

The bounded family gets extra dedicated seeds beyond the base batch so the
unfolding pass sees a wider spread of shapes and databases.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    FAMILIES,
    generate_case,
    generate_cases,
    run_batch,
    run_differential,
)

SEED_COUNT = 84

#: extra seeds that land on the bounded family (seed % len(FAMILIES) picks it)
BOUNDED_INDEX = FAMILIES.index("bounded")
BOUNDED_EXTRA_SEEDS = [
    seed
    for seed in range(SEED_COUNT, SEED_COUNT + 20 * len(FAMILIES))
    if seed % len(FAMILIES) == BOUNDED_INDEX
][:16]


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_engines_agree_on_seeded_case(seed):
    report = run_differential(generate_case(seed))
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)


@pytest.mark.parametrize("seed", BOUNDED_EXTRA_SEEDS)
def test_bounded_family_extra_seeds(seed):
    """Deeper coverage for the family that drives the unfolding pass."""
    case = generate_case(seed)
    assert case.family == "bounded"
    report = run_differential(case)
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)


def test_generation_is_deterministic():
    first = generate_case(7)
    second = generate_case(7)
    assert first.family == second.family
    assert first.program == second.program
    assert first.query == second.query
    assert {r.name: r.rows() for r in first.database.relations()} == {
        r.name: r.rows() for r in second.database.relations()
    }


def test_batch_covers_every_family_and_engine():
    """The harness must actually exercise what it claims to exercise.

    Each generator family appears in the batch, and each engine runs (not
    "skipped") on a healthy share of the cases — magic on every case with a
    bound column, counting on a substantial minority (its scope excludes
    non-chain shapes, IDB exit rules, column-1 queries and cyclic data), and
    the optimizer front door on every single case.
    """
    cases = generate_cases(SEED_COUNT)
    assert {case.family for case in cases} == set(FAMILIES)

    reports, coverage = run_batch(cases)
    assert all(report.ok for report in reports)
    assert coverage["naive"] == SEED_COUNT
    assert coverage["seminaive"] == SEED_COUNT
    assert coverage["magic"] >= SEED_COUNT * 0.9
    assert coverage["counting"] >= SEED_COUNT * 0.25
    assert coverage["optimized"] == SEED_COUNT
    # the engine runtime's execution modes run (and must agree) on every case
    assert coverage["interpreted"] == SEED_COUNT
    assert coverage["kernel"] == SEED_COUNT
    assert coverage["interned"] == SEED_COUNT


def test_unfolding_actually_fires_on_bounded_cases():
    """Every bounded-family case must be answered by the unfolding rewrite.

    The bounded generator only emits uniformly bounded recursions, so the
    optimizer front door should evaluate each of them recursion-free; if it
    ever falls back to a fixpoint strategy here, the unfolding pass has
    silently regressed.
    """
    cases = [case for case in generate_cases(SEED_COUNT) if case.family == "bounded"]
    assert cases, "the batch lost its bounded family"
    reports, _coverage = run_batch(cases)
    strategies = [report.strategies.get("optimized", "") for report in reports]
    assert all("unfolded" in strategy for strategy in strategies), strategies


def test_queries_sometimes_empty_and_sometimes_bind_column_one():
    """The query generator keeps its promised edge cases in the mix."""
    cases = generate_cases(SEED_COUNT)
    columns = {case.query.bound_columns() for case in cases}
    assert (0,) in columns
    assert (1,) in columns
    absent = [case for case in cases if "nowhere" in dict(case.query.bindings).values()]
    assert absent, "no case queried a constant absent from the database"
