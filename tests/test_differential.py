"""Differential fuzzing: all engines must agree on seeded random cases.

This is the permanent tier-1 foothold of the ``repro.testing`` harness: 60
deterministic seeds spanning every generator family (chain, tree, cyclic,
cross-product, one-sided, two-sided) run through naive, semi-naive, magic
sets and counting, asserting identical results tuple for tuple.  Any failure
names its seed, so it reproduces with ``generate_case(seed)``.
"""

from __future__ import annotations

import pytest

from repro.testing import (
    FAMILIES,
    generate_case,
    generate_cases,
    run_batch,
    run_differential,
)

SEED_COUNT = 60


@pytest.mark.parametrize("seed", range(SEED_COUNT))
def test_engines_agree_on_seeded_case(seed):
    report = run_differential(generate_case(seed))
    assert report.ok, report.summary() + "\n" + "\n".join(report.mismatches)


def test_generation_is_deterministic():
    first = generate_case(7)
    second = generate_case(7)
    assert first.family == second.family
    assert first.program == second.program
    assert first.query == second.query
    assert {r.name: r.rows() for r in first.database.relations()} == {
        r.name: r.rows() for r in second.database.relations()
    }


def test_batch_covers_every_family_and_engine():
    """The harness must actually exercise what it claims to exercise.

    Each generator family appears in the batch, and each engine runs (not
    "skipped") on a healthy share of the cases — magic on every case with a
    bound column, counting on a substantial minority (its scope excludes
    non-chain shapes, IDB exit rules, column-1 queries and cyclic data).
    """
    cases = generate_cases(SEED_COUNT)
    assert {case.family for case in cases} == set(FAMILIES)

    reports, coverage = run_batch(cases)
    assert all(report.ok for report in reports)
    assert coverage["naive"] == SEED_COUNT
    assert coverage["seminaive"] == SEED_COUNT
    assert coverage["magic"] >= SEED_COUNT * 0.9
    assert coverage["counting"] >= SEED_COUNT * 0.25


def test_queries_sometimes_empty_and_sometimes_bind_column_one():
    """The query generator keeps its promised edge cases in the mix."""
    cases = generate_cases(SEED_COUNT)
    columns = {case.query.bound_columns() for case in cases}
    assert (0,) in columns
    assert (1,) in columns
    absent = [case for case in cases if "nowhere" in dict(case.query.bindings).values()]
    assert absent, "no case queried a constant absent from the database"
