"""Tests for the general Figure 9 schema (:mod:`repro.core.schema`)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BACKWARD, FORWARD, OneSidedSchema, one_sided_query
from repro.core.algorithms import aho_ullman_selection, henschen_naqvi_selection
from repro.datalog import Database, EvaluationError, NotOneSidedError
from repro.engine import SelectionQuery, seminaive_query
from repro.workloads import (
    canonical_two_sided,
    edge_database,
    example_3_4,
    example_3_5,
    permissions_database,
    random_graph,
    random_pairs,
    relations_database,
    same_generation_distinct_parents,
    tc_with_permissions,
    transitive_closure,
)


class TestCompilation:
    def test_backward_direction_for_invariant_selection(self, tc_program):
        query = SelectionQuery.of("t", 2, {1: 5})
        schema = OneSidedSchema(tc_program, "t", query)
        assert schema.plan.direction == BACKWARD
        assert schema.plan.invariant_positions == (1,)
        assert schema.plan.carry_arity == 1

    def test_forward_direction_for_linking_selection(self, tc_program):
        query = SelectionQuery.of("t", 2, {0: 5})
        schema = OneSidedSchema(tc_program, "t", query)
        assert schema.plan.direction == FORWARD
        assert schema.plan.carry_arity < 2 + 1  # arity-reduced

    def test_describe_mentions_direction_and_arity(self, tc_program):
        query = SelectionQuery.of("t", 2, {1: 5})
        plan = OneSidedSchema(tc_program, "t", query).plan
        assert "backward" in plan.describe()
        assert "carry arity=1" in plan.describe()

    def test_rejects_many_sided_recursions_by_default(self):
        query = SelectionQuery.of("t", 2, {0: 1})
        with pytest.raises(NotOneSidedError):
            OneSidedSchema(canonical_two_sided(), "t", query)

    def test_require_one_sided_false_allows_many_sided(self):
        query = SelectionQuery.of("t", 2, {0: 1})
        schema = OneSidedSchema(canonical_two_sided(), "t", query, require_one_sided=False)
        assert schema.plan.direction == FORWARD

    def test_rejects_untrackable_output_column(self):
        """Example 3.5's head variable Y never touches the nonrecursive body, so the
        forward schema cannot carry its value and must refuse rather than answer wrongly."""
        query = SelectionQuery.of("t", 2, {0: 1})
        with pytest.raises(EvaluationError):
            OneSidedSchema(example_3_5(), "t", query, require_one_sided=False)

    def test_query_predicate_must_match(self, tc_program):
        query = SelectionQuery.of("s", 2, {0: 1})
        with pytest.raises(EvaluationError):
            OneSidedSchema(tc_program, "t", query)


class TestCanonicalOneSided:
    """The compiled schema agrees with Figures 7/8 and with semi-naive."""

    def test_backward_matches_figure_7(self, chain_db, tc_program):
        query = SelectionQuery.of("t", 2, {1: 100})
        result = one_sided_query(tc_program, chain_db, query)
        expected, _ = aho_ullman_selection(chain_db, 100)
        assert {row[0] for row in result.answers} == expected

    def test_forward_matches_figure_8(self, chain_db, tc_program):
        query = SelectionQuery.of("t", 2, {0: 0})
        result = one_sided_query(tc_program, chain_db, query)
        expected, _ = henschen_naqvi_selection(chain_db, 0)
        assert {row[1] for row in result.answers} == expected

    def test_unconstrained_query_computes_whole_relation(self, tc_program, small_graph_db):
        query = SelectionQuery.of("t", 2, {})
        result = one_sided_query(tc_program, small_graph_db, query)
        reference, _ = seminaive_query(tc_program, small_graph_db, "t")
        assert result.answers == reference

    def test_cyclic_data_terminates(self, tc_program, cyclic_db):
        for column in (0, 1):
            query = SelectionQuery.of("t", 2, {column: 0})
            result = one_sided_query(tc_program, cyclic_db, query)
            reference, _ = seminaive_query(tc_program, cyclic_db, "t", {column: 0})
            assert result.answers == reference

    def test_carry_arity_is_reported(self, tc_program, chain_db):
        result = one_sided_query(tc_program, chain_db, SelectionQuery.of("t", 2, {0: 0}))
        assert result.stats.extra["carry_arity"] == 1

    def test_forward_selection_restricts_lookups(self, tc_program):
        database = edge_database([(i, i + 1) for i in range(50)] + [(100, 101)])
        result = one_sided_query(tc_program, database, SelectionQuery.of("t", 2, {0: 100}))
        assert result.answers == {(100, 101)}
        # only the edges reachable from 100 are ever touched
        assert result.stats.tuples_examined <= 5

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.sampled_from([0, 1]), st.integers(0, 9))
    def test_matches_seminaive_property(self, seed, column, constant):
        database = edge_database(random_pairs(25, 10, seed=seed))
        program = transitive_closure()
        query = SelectionQuery.of("t", 2, {column: constant})
        result = one_sided_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {column: constant})
        assert result.answers == reference


class TestOtherOneSidedRecursions:
    def test_permissions_recursion_both_columns(self, rng):
        program = tc_with_permissions()
        database = permissions_database(random_graph(10, 20, seed=5), seed=5)
        for column in (0, 1):
            constant = rng.randrange(10)
            query = SelectionQuery.of("t", 2, {column: constant})
            result = one_sided_query(program, database, query)
            reference, _ = seminaive_query(program, database, "t", {column: constant})
            assert result.answers == reference

    def test_permissions_carry_is_not_arity_reduced(self):
        """Example 4.1: the permission predicate ties both columns together."""
        program = tc_with_permissions()
        query = SelectionQuery.of("t", 2, {0: 1})
        plan = OneSidedSchema(program, "t", query).plan
        assert plan.carry_arity == 2  # no reduction, unlike the canonical case

    def test_example_3_4_all_columns(self, rng):
        program = example_3_4()
        database = relations_database(
            e=random_pairs(20, 8, seed=11),
            d=[(value,) for value in range(5)],
            t0=[(rng.randrange(8), rng.randrange(8), rng.randrange(8)) for _ in range(10)],
        )
        for column in (0, 1, 2):
            constant = rng.randrange(8)
            query = SelectionQuery.of("t", 3, {column: constant})
            result = one_sided_query(program, database, query)
            reference, _ = seminaive_query(program, database, "t", {column: constant})
            assert result.answers == reference

    def test_example_3_4_unrestricted_lookup_on_d(self):
        """Section 4: the disconnected d(Z) forces an unrestricted lookup (Property 3 exception)."""
        program = example_3_4()
        database = relations_database(
            e=[(1, 2), (2, 3)],
            d=[(7,), (8,)],
            t0=[(1, 1, 7)],
        )
        query = SelectionQuery.of("t", 3, {0: 1})
        result = one_sided_query(program, database, query)
        assert result.stats.unrestricted_lookups > 0

    def test_multiple_exit_rules(self):
        from repro.datalog import parse_program

        program = parse_program(
            """
            t(X, Y) :- a(X, Z), t(Z, Y).
            t(X, Y) :- b(X, Y).
            t(X, Y) :- seed(X, Y).
            """
        )
        database = relations_database(a=[(1, 2), (2, 3)], b=[(3, 4)], seed=[(3, 9)])
        query = SelectionQuery.of("t", 2, {0: 1})
        result = one_sided_query(program, database, query)
        reference, _ = seminaive_query(program, database, "t", {0: 1})
        assert result.answers == reference == {(1, 4), (1, 9)}


class TestManySidedWithOverride:
    """Correctness is retained on many-sided recursions, but the paper's properties are lost."""

    @settings(max_examples=12, deadline=None)
    @given(st.integers(0, 10_000))
    def test_canonical_two_sided_forward_is_correct(self, seed):
        rng = random.Random(seed)
        database = relations_database(
            a=random_pairs(15, 8, seed=seed),
            b=random_pairs(6, 8, seed=seed + 1),
            c=random_pairs(15, 8, seed=seed + 2),
        )
        constant = rng.randrange(8)
        query = SelectionQuery.of("t", 2, {0: constant})
        result = one_sided_query(canonical_two_sided(), database, query, require_one_sided=False)
        reference, _ = seminaive_query(canonical_two_sided(), database, "t", {0: constant})
        assert result.answers == reference

    def test_two_sided_state_is_wider_than_one_sided(self):
        database = relations_database(
            a=random_pairs(20, 8, seed=1),
            b=random_pairs(8, 8, seed=2),
            c=random_pairs(20, 8, seed=3),
        )
        two_sided = one_sided_query(
            canonical_two_sided(), database, SelectionQuery.of("t", 2, {0: 1}), require_one_sided=False
        )
        one_sided = one_sided_query(
            transitive_closure(), database, SelectionQuery.of("t", 2, {0: 1})
        )
        assert two_sided.stats.extra["carry_arity"] > one_sided.stats.extra["carry_arity"]

    def test_distinct_parent_same_generation_is_correct(self):
        database = relations_database(
            up=random_pairs(15, 8, seed=4),
            down=random_pairs(15, 8, seed=5),
            flat=random_pairs(8, 8, seed=6),
        )
        query = SelectionQuery.of("sg", 2, {0: 1})
        result = one_sided_query(
            same_generation_distinct_parents(), database, query, require_one_sided=False
        )
        reference, _ = seminaive_query(same_generation_distinct_parents(), database, "sg", {0: 1})
        assert result.answers == reference
