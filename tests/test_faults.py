"""Unit tests for the deterministic fault-injection registry (repro.faults)."""

from __future__ import annotations

import errno
import threading
import time

import pytest

from repro.faults import KNOWN_SITES, FaultAction, FaultPlan, active, fire, inject


# ----------------------------------------------------------------------
# actions
# ----------------------------------------------------------------------
class TestFaultAction:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action kind"):
            FaultAction("explode")

    def test_enospc_and_eio_carry_their_errno(self):
        enospc = FaultAction.enospc().make_error()
        eio = FaultAction.eio().make_error()
        assert isinstance(enospc, OSError) and enospc.errno == errno.ENOSPC
        assert isinstance(eio, OSError) and eio.errno == errno.EIO

    def test_error_factory_makes_a_fresh_exception_each_time(self):
        action = FaultAction.eio()
        assert action.make_error() is not action.make_error()

    def test_torn_defaults_to_enospc_and_keeps_the_fraction(self):
        action = FaultAction.torn(0.25)
        assert action.kind == FaultAction.TORN
        assert action.fraction == 0.25
        assert action.make_error().errno == errno.ENOSPC


# ----------------------------------------------------------------------
# plans and ordinals
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_ordinals_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultPlan().at("wal.append", 0, FaultAction.eio())

    def test_error_fires_only_on_its_scheduled_ordinal(self):
        plan = FaultPlan().at("wal.append", 2, FaultAction.eio())
        assert plan.fire("wal.append") is None  # 1st traversal: clean
        with pytest.raises(OSError):
            plan.fire("wal.append")  # 2nd: scheduled error
        assert plan.fire("wal.append") is None  # 3rd: clean again
        assert plan.hits("wal.append") == 3
        assert plan.fired == [("wal.append", 2, "error")]

    def test_sites_count_independently(self):
        plan = FaultPlan().at("wal.fsync", 1, FaultAction.eio())
        assert plan.fire("wal.append") is None  # other sites untouched
        with pytest.raises(OSError):
            plan.fire("wal.fsync")
        assert plan.hits("wal.append") == 1
        assert plan.hits("wal.fsync") == 1

    def test_during_schedules_a_window(self):
        plan = FaultPlan().during("wal.append", range(2, 4), FaultAction.eio())
        assert plan.fire("wal.append") is None
        for _ in range(2):
            with pytest.raises(OSError):
                plan.fire("wal.append")
        assert plan.fire("wal.append") is None
        assert [ordinal for _s, ordinal, _k in plan.fired] == [2, 3]

    def test_torn_actions_are_returned_to_the_site(self):
        plan = FaultPlan().at("wal.append", 1, FaultAction.torn(0.5))
        action = plan.fire("wal.append")
        assert action is not None and action.kind == FaultAction.TORN
        assert plan.fired == [("wal.append", 1, "torn")]

    def test_delay_sleeps_at_the_site_and_is_not_a_failure(self):
        plan = FaultPlan().at("service.flush", 1, FaultAction.delay(0.05))
        started = time.monotonic()
        assert plan.fire("service.flush") is None
        assert time.monotonic() - started >= 0.04
        assert plan.fired == [("service.flush", 1, "delay")]
        assert plan.error_kinds_fired() == 0

    def test_error_kinds_fired_counts_errors_and_torn_only(self):
        plan = (
            FaultPlan()
            .at("wal.append", 1, FaultAction.torn())
            .at("wal.append", 2, FaultAction.delay(0.0))
            .at("wal.append", 3, FaultAction.eio())
        )
        plan.fire("wal.append")
        plan.fire("wal.append")
        with pytest.raises(OSError):
            plan.fire("wal.append")
        assert plan.error_kinds_fired() == 2

    def test_ordinal_counting_is_thread_safe(self):
        plan = FaultPlan()
        workers = [
            threading.Thread(
                target=lambda: [plan.fire("wal.append") for _ in range(200)]
            )
            for _ in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        assert plan.hits("wal.append") == 800


# ----------------------------------------------------------------------
# global activation
# ----------------------------------------------------------------------
class TestInject:
    def test_fire_is_a_noop_without_an_active_plan(self):
        assert active() is None
        for site in KNOWN_SITES:
            assert fire(site) is None

    def test_inject_activates_then_deactivates(self):
        plan = FaultPlan().at("wal.append", 1, FaultAction.eio())
        with inject(plan) as injected:
            assert injected is plan
            assert active() is plan
            with pytest.raises(OSError):
                fire("wal.append")
        assert active() is None
        assert fire("wal.append") is None  # counted nothing, raised nothing
        assert plan.hits("wal.append") == 1

    def test_plans_do_not_nest(self):
        with inject(FaultPlan()):
            with pytest.raises(RuntimeError, match="do not nest"):
                with inject(FaultPlan()):
                    pass  # pragma: no cover
        assert active() is None

    def test_plan_is_deactivated_even_when_the_body_raises(self):
        with pytest.raises(KeyError):
            with inject(FaultPlan()):
                raise KeyError("boom")
        assert active() is None
