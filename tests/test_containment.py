"""Tests for containment mappings (Definition 2.1 / Lemma 2.1) and CQ minimization."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cq import (
    ExpansionString,
    are_equivalent,
    find_containment_mapping,
    is_contained_in,
    is_minimal,
    minimize,
    minimize_union,
    union_contained_in,
    union_contains,
    verify_containment_mapping,
)
from repro.datalog import parse_atom
from repro.datalog.relation import Relation
from repro.datalog.terms import Variable
from repro.expansion import expand
from repro.workloads import random_pairs, transitive_closure


def string(head_vars, *atom_texts) -> ExpansionString:
    return ExpansionString(
        tuple(Variable(v) for v in head_vars),
        tuple(parse_atom(text) for text in atom_texts),
    )


class TestContainmentMappings:
    def test_identity_mapping_exists(self):
        s = string("XY", "a(X, Z)", "b(Z, Y)")
        mapping = find_containment_mapping(s, s)
        assert mapping is not None
        assert verify_containment_mapping(mapping, s, s)

    def test_longer_string_maps_to_shorter_by_collapsing(self):
        shorter = string("XY", "a(X, Z)", "b(Z, Y)")
        longer = string("XY", "a(X, Z0)", "a(Z0, Z1)", "b(Z1, Y)")
        # the shorter maps into the longer (so the longer's relation is contained in the shorter's)?
        # No: a(X,Z0), b(Z1,Y) do not chain in the shorter image unless Z0=Z1; the correct
        # direction for transitive-closure strings is: no containment either way.
        assert find_containment_mapping(shorter, longer) is None
        assert find_containment_mapping(longer, shorter) is None

    def test_distinguished_variables_are_pinned(self):
        swapped = string("XY", "a(Y, X)")
        original = string("XY", "a(X, Y)")
        assert find_containment_mapping(original, swapped) is None

    def test_redundant_atom_maps_away(self):
        redundant = string("XY", "a(X, Y)", "a(X, W)")
        minimal = string("XY", "a(X, Y)")
        mapping = find_containment_mapping(redundant, minimal)
        assert mapping is not None
        assert verify_containment_mapping(mapping, redundant, minimal)

    def test_constants_must_match(self):
        with_constant = string("X", "a(X, 1)")
        with_other = string("X", "a(X, 2)")
        assert find_containment_mapping(with_constant, with_other) is None
        assert find_containment_mapping(with_constant, with_constant) is not None

    def test_buys_strings_from_the_paper(self):
        # l(X,Y) c(Y)  vs  k(X,W0) l(W0,Y) c(Y) c(Y): the first does NOT map to
        # the second (it would need l(X, ...) with X distinguished).
        first = string("XY", "likes(X, Y)", "cheap(Y)")
        second = string("XY", "knows(X, W0)", "likes(W0, Y)", "cheap(Y)", "cheap(Y)")
        assert find_containment_mapping(first, second) is None
        # but the duplicated cheap(Y) maps onto the single one
        duplicated = string("XY", "likes(X, Y)", "cheap(Y)", "cheap(Y)")
        assert find_containment_mapping(duplicated, first) is not None


class TestSemanticAgreement:
    """Lemma 2.1: containment mappings characterise relation containment."""

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_containment_mapping_implies_relation_containment(self, seed):
        rng = random.Random(seed)
        relations = {
            "a": Relation("a", 2, random_pairs(12, 5, seed=seed)),
            "b": Relation("b", 2, random_pairs(8, 5, seed=seed + 1)),
        }
        strings = expand(transitive_closure(), "t", 3)
        for smaller in strings:
            for larger in strings:
                if is_contained_in(smaller, larger):
                    assert smaller.evaluate(relations) <= larger.evaluate(relations)

    def test_equivalence_is_reflexive_and_symmetric(self):
        s = string("XY", "a(X, Z)", "b(Z, Y)")
        duplicated = string("XY", "a(X, Z)", "a(X, Z)", "b(Z, Y)")
        assert are_equivalent(s, s)
        assert are_equivalent(s, duplicated)
        assert are_equivalent(duplicated, s)


class TestUnionContainment:
    def test_union_contains_single_disjunct(self):
        strings = expand(transitive_closure(), "t", 3)
        assert union_contains(strings, strings[2])
        assert union_contained_in(strings[:2], strings)

    def test_union_does_not_contain_deeper_string(self):
        strings = expand(transitive_closure(), "t", 4)
        deepest = strings[-1]
        assert not union_contains(strings[:-1], deepest)


class TestMinimize:
    def test_removes_duplicate_atoms(self):
        redundant = string("XY", "a(X, Y)", "a(X, Y)")
        assert len(minimize(redundant).atoms) == 1

    def test_removes_subsumed_atom(self):
        redundant = string("XY", "a(X, Y)", "a(X, W)")
        minimized = minimize(redundant)
        assert minimized.atoms == (parse_atom("a(X, Y)"),)

    def test_keeps_necessary_atoms(self):
        chain = string("XY", "a(X, Z)", "b(Z, Y)")
        assert minimize(chain).atoms == chain.atoms
        assert is_minimal(chain)

    def test_minimization_preserves_semantics(self):
        relations = {
            "a": Relation("a", 2, [(1, 2), (2, 3), (1, 4)]),
            "b": Relation("b", 2, [(3, 5), (4, 6)]),
        }
        redundant = string("XY", "a(X, Z)", "a(X, W)", "b(Z, Y)")
        minimized = minimize(redundant)
        assert minimized.evaluate(relations) == redundant.evaluate(relations)
        assert len(minimized.atoms) < len(redundant.atoms)

    def test_minimize_union_drops_subsumed_strings(self):
        specific = string("XY", "a(X, Z)", "b(Z, Y)", "a(X, W)")
        general = string("XY", "a(X, Z)", "b(Z, Y)")
        kept = minimize_union([specific, general])
        assert len(kept) == 1
        assert are_equivalent(kept[0], general)

    def test_minimize_union_keeps_incomparable_strings(self):
        strings = expand(transitive_closure(), "t", 3)
        assert len(minimize_union(list(strings))) == len(strings)
