"""Unit tests for :mod:`repro.datalog.unify`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.atoms import Atom
from repro.datalog.terms import Constant, Variable
from repro.datalog.unify import (
    apply_to_atom,
    apply_to_term,
    compose,
    match_atom,
    rename_apart,
    unify_atoms,
    unify_terms,
)


class TestUnifyTerms:
    def test_identical_constants(self):
        assert unify_terms(Constant(1), Constant(1)) == {}

    def test_distinct_constants_fail(self):
        assert unify_terms(Constant(1), Constant(2)) is None

    def test_variable_binds_to_constant(self):
        assert unify_terms(Variable("X"), Constant(1)) == {Variable("X"): Constant(1)}

    def test_constant_binds_variable_on_right(self):
        assert unify_terms(Constant(1), Variable("X")) == {Variable("X"): Constant(1)}

    def test_respects_existing_bindings(self):
        existing = {Variable("X"): Constant(1)}
        assert unify_terms(Variable("X"), Constant(2), existing) is None
        assert unify_terms(Variable("X"), Constant(1), existing) == existing


class TestUnifyAtoms:
    def test_different_predicates_fail(self):
        assert unify_atoms(Atom.of("a", "X"), Atom.of("b", "X")) is None

    def test_different_arities_fail(self):
        assert unify_atoms(Atom.of("a", "X"), Atom.of("a", "X", "Y")) is None

    def test_head_matching_is_a_renaming(self):
        head = Atom.of("t", "X", "Y")
        instance = Atom.of("t", "Z", "W")
        unifier = unify_atoms(head, instance)
        assert unifier is not None
        assert apply_to_atom(unifier, head) == apply_to_atom(unifier, instance)

    def test_repeated_variable_forces_equality(self):
        unifier = unify_atoms(Atom.of("p", "X", "X"), Atom.of("p", 1, "Y"))
        assert unifier is not None
        assert apply_to_term(unifier, Variable("Y")) == Constant(1)

    def test_unifier_makes_atoms_equal(self):
        left = Atom.of("p", "X", 2, "Z")
        right = Atom.of("p", 1, "Y", "Z")
        unifier = unify_atoms(left, right)
        assert unifier is not None
        assert apply_to_atom(unifier, left) == apply_to_atom(unifier, right)

    def test_clashing_constants_fail(self):
        assert unify_atoms(Atom.of("p", 1, "X"), Atom.of("p", 2, "Y")) is None


class TestMatchAtom:
    def test_match_binds_only_pattern_variables(self):
        pattern = Atom.of("a", "X", "Y")
        target = Atom.of("a", 1, "Z")
        match = match_atom(pattern, target)
        assert match == {Variable("X"): Constant(1), Variable("Y"): Variable("Z")}

    def test_match_fails_on_constant_mismatch(self):
        assert match_atom(Atom.of("a", 1), Atom.of("a", 2)) is None

    def test_match_requires_consistent_repeats(self):
        assert match_atom(Atom.of("a", "X", "X"), Atom.of("a", 1, 2)) is None
        assert match_atom(Atom.of("a", "X", "X"), Atom.of("a", 1, 1)) is not None


class TestCompose:
    def test_compose_applies_in_sequence(self):
        first = {Variable("X"): Variable("Y")}
        second = {Variable("Y"): Constant(3)}
        combined = compose(first, second)
        assert apply_to_term(combined, Variable("X")) == Constant(3)

    def test_compose_keeps_second_bindings(self):
        first = {Variable("X"): Constant(1)}
        second = {Variable("Z"): Constant(2)}
        combined = compose(first, second)
        assert combined[Variable("Z")] == Constant(2)
        assert combined[Variable("X")] == Constant(1)

    @given(st.integers(min_value=0, max_value=5))
    def test_compose_equivalent_to_sequential_application(self, value):
        term = Variable("X")
        first = {Variable("X"): Variable("Y")}
        second = {Variable("Y"): Constant(value)}
        sequential = apply_to_term(second, apply_to_term(first, term))
        assert apply_to_term(compose(first, second), term) == sequential


class TestRenameApart:
    def test_no_collision_no_change(self):
        atoms = (Atom.of("a", "X", "Y"),)
        renamed, renaming = rename_apart(atoms, {Variable("Z")})
        assert renamed == atoms
        assert renaming == {}

    def test_collisions_are_renamed(self):
        atoms = (Atom.of("a", "X", "Y"), Atom.of("b", "Y", "Z"))
        renamed, renaming = rename_apart(atoms, {Variable("Y")})
        assert Variable("Y") in renaming
        new_variables = {v for atom in renamed for v in atom.variable_set()}
        assert Variable("Y") not in new_variables
        # shared structure must be preserved: both renamed atoms use the same new variable
        assert renamed[0].args[1] == renamed[1].args[0]
