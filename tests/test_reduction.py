"""Tests for the Theorem 3.2 / Appendix A reduction."""

from __future__ import annotations

import pytest

from repro.core import (
    classify,
    extend_database_for_reduction,
    one_sidedness_reduction,
    project_first_two_columns,
    reduce_nonrecursive_program,
)
from repro.datalog import ProgramError, parse_program
from repro.engine import seminaive_query
from repro.workloads import (
    appendix_a_database,
    appendix_a_p,
    transitive_closure,
    unbounded_p,
    unbounded_p_database,
)


class TestConstruction:
    def test_example_a_1_shape(self):
        """The constructed Q matches the rules listed in Example A.1."""
        reduction = one_sidedness_reduction(appendix_a_p(), "p")
        rendered = {str(rule) for rule in reduction.target.rules}
        assert rendered == {
            "q(X1, X2, X3) :- c(X1), q(X1, X2, X3).",
            "q(X1, X2, X3) :- c(X1), p0(X1, X2), b(X3).",
            "q(X1, X2, X3) :- q(X1, X2, W), e(W, X3).",
        }
        assert reduction.target_predicate == "q"
        assert reduction.witness_predicate == "b"
        assert reduction.chain_predicate == "e"

    def test_q_has_three_columns(self):
        reduction = one_sidedness_reduction(appendix_a_p(), "p")
        assert reduction.target.arity_of("q") == 3

    def test_fresh_names_avoid_collisions(self):
        program = parse_program(
            """
            p(X1, X2) :- b(X1), e(X1, X2), p(X1, X2).
            p(X1, X2) :- q(X1, X2).
            """
        )
        reduction = one_sidedness_reduction(program, "p")
        assert reduction.target_predicate not in {"p", "b", "e", "q"}
        assert reduction.witness_predicate not in {"b", "e", "q"}
        assert reduction.chain_predicate not in {"b", "e", "q"}

    def test_requires_binary_predicate(self):
        program = parse_program("p(X) :- c(X). p(X) :- d(X), p(X).")
        with pytest.raises(ProgramError):
            one_sidedness_reduction(program, "p")

    def test_requires_linear_rules(self):
        program = parse_program("p(X, Y) :- p(X, Z), p(Z, Y). p(X, Y) :- e(X, Y).")
        with pytest.raises(ProgramError):
            one_sidedness_reduction(program, "p")

    def test_reduce_nonrecursive_rejects_recursive_input(self):
        with pytest.raises(ProgramError):
            reduce_nonrecursive_program(appendix_a_p(), "p")


class TestLemmaA1:
    """With b nonempty, P and Q agree on the first two columns of q."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bounded_p(self, seed):
        program = appendix_a_p()
        reduction = one_sidedness_reduction(program, "p")
        database = appendix_a_database(seed=seed)
        extended = extend_database_for_reduction(database, reduction)
        p_model, _ = seminaive_query(program, database, "p")
        q_model, _ = seminaive_query(reduction.target, extended, "q")
        assert project_first_two_columns(q_model) == p_model

    @pytest.mark.parametrize("seed", [0, 1])
    def test_unbounded_p(self, seed):
        program = unbounded_p()
        reduction = one_sidedness_reduction(program, "p")
        database = unbounded_p_database(seed=seed)
        extended = extend_database_for_reduction(database, reduction)
        p_model, _ = seminaive_query(program, database, "p")
        q_model, _ = seminaive_query(reduction.target, extended, reduction.target_predicate)
        assert project_first_two_columns(q_model) == p_model

    def test_third_column_ranges_over_the_e_chain(self):
        reduction = one_sidedness_reduction(appendix_a_p(), "p")
        database = appendix_a_database()
        extended = extend_database_for_reduction(database, reduction, witness_values=("w0",), chain_length=2)
        q_model, _ = seminaive_query(reduction.target, extended, "q")
        thirds = {row[2] for row in q_model}
        if q_model:
            assert thirds <= {"w0", "w0_e1", "w0_e2"}
            assert "w0" in thirds


class TestTheorem32Direction:
    """Bounded P => Q has a one-sided equivalent (Q' built from the nonrecursive P')."""

    def test_q_prime_is_one_sided(self):
        p_prime = parse_program("p(X1, X2) :- c(X1), p0(X1, X2).")
        reduction = reduce_nonrecursive_program(p_prime, "p")
        report = classify(reduction.target, reduction.target_predicate)
        assert report.is_one_sided

    def test_q_and_q_prime_agree_on_data(self):
        """Lemma A.3, checked empirically: Q and Q' define the same relation."""
        q = one_sidedness_reduction(appendix_a_p(), "p")
        q_prime = reduce_nonrecursive_program(parse_program("p(X1, X2) :- c(X1), p0(X1, X2)."), "p")
        database = appendix_a_database(seed=5)
        q_model, _ = seminaive_query(q.target, extend_database_for_reduction(database, q), "q")
        q_prime_model, _ = seminaive_query(
            q_prime.target, extend_database_for_reduction(database, q_prime), q_prime.target_predicate
        )
        assert q_model == q_prime_model

    def test_reduction_of_unbounded_p_keeps_two_growing_sides(self):
        """For an unbounded P (a transitive closure), Q's expansion keeps both the
        original chain and the new e-chain growing, so no single-rule one-sided
        reformulation of Q's own rules exists (the Theorem 3.2 direction we can
        observe without deciding equivalence)."""
        from repro.expansion import expand_general
        from repro.expansion.connected import connected_sets

        reduction = one_sidedness_reduction(unbounded_p(), "p")
        strings = expand_general(reduction.target, reduction.target_predicate, max_applications=6, max_strings=200)
        # find a string that used both the original recursion and the new rule
        widest = 0
        for string in strings:
            r_count = sum(1 for atom in string.atoms if atom.predicate == "r")
            e_count = sum(1 for atom in string.atoms if atom.predicate == reduction.chain_predicate)
            if r_count >= 2 and e_count >= 2:
                groups = connected_sets(string, include_exit=True)
                big = [g for g in groups if len(g) >= 2]
                widest = max(widest, len(big))
        assert widest >= 2
