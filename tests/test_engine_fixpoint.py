"""Tests for the naive and semi-naive fixpoint engines."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog import Database, parse_program
from repro.engine import (
    evaluation_strata,
    naive_evaluate,
    naive_query,
    seminaive_evaluate,
    seminaive_query,
    strongly_connected_components,
)
from repro.workloads import (
    canonical_two_sided,
    edge_database,
    random_pairs,
    same_generation,
    same_generation_database,
    transitive_closure,
)


class TestStrata:
    def test_scc_of_simple_cycle(self):
        graph = {"a": {"b"}, "b": {"a"}, "c": {"a"}}
        components = strongly_connected_components(graph)
        assert ["a", "b"] in components
        assert ["c"] in components

    def test_strata_order_dependencies_first(self):
        program = parse_program(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            connected(X, Y) :- reach(X, Y).
            connected(X, Y) :- reach(Y, X).
            """
        )
        strata = evaluation_strata(program)
        flattened = [predicate for group in strata for predicate in group]
        assert flattened.index("reach") < flattened.index("connected")

    def test_mutual_recursion_grouped(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            """
        )
        strata = evaluation_strata(program)
        assert ["even", "odd"] in strata


class TestTransitiveClosure:
    def test_chain_closure(self, tc_program, chain_db):
        derived = seminaive_evaluate(tc_program, chain_db)
        t = derived["t"].rows()
        # every node reaches the sink 100 through the chain and the base edge
        assert {(i, 100) for i in range(7)} == t

    def test_naive_equals_seminaive(self, tc_program, small_graph_db):
        naive = naive_evaluate(tc_program, small_graph_db)["t"].rows()
        semi = seminaive_evaluate(tc_program, small_graph_db)["t"].rows()
        assert naive == semi

    def test_cyclic_data_terminates(self, tc_program, cyclic_db):
        derived = seminaive_evaluate(tc_program, cyclic_db)
        t = derived["t"].rows()
        assert (0, 0) in t  # the cycle closes on itself
        assert (0, 3) in t

    def test_query_applies_selection(self, tc_program, chain_db):
        answers, _ = seminaive_query(tc_program, chain_db, "t", {0: 0})
        assert answers == {(0, 100)}
        answers_all, _ = seminaive_query(tc_program, chain_db, "t")
        assert len(answers_all) == 7

    def test_missing_predicate_returns_empty(self, tc_program, chain_db):
        answers, _ = seminaive_query(tc_program, chain_db, "missing")
        assert answers == set()

    def test_seeded_idb_facts_are_respected(self, tc_program):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)], "t": [(9, 9)]})
        derived = seminaive_evaluate(tc_program, database)
        assert (9, 9) in derived["t"].rows()
        assert (1, 3) in derived["t"].rows()


class TestMultiplePredicates:
    def test_same_generation(self):
        program = same_generation()
        database = same_generation_database(branching=2, depth=3)
        derived = seminaive_evaluate(program, database)
        sg = derived["sg"].rows()
        # siblings (1 and 2 are both children of the root) are in the same generation
        assert (1, 2) in sg and (2, 1) in sg
        # cousins (3 under node 1, 5 under node 2) are in the same generation
        assert (3, 5) in sg
        # a node is in the same generation as itself (via sg0)
        assert (1, 1) in sg
        # parent and child are not
        assert (0, 1) not in sg

    def test_two_strata_program(self):
        program = parse_program(
            """
            reach(X, Y) :- edge(X, Y).
            reach(X, Y) :- edge(X, Z), reach(Z, Y).
            reachable_from_root(Y) :- reach(root, Y).
            """
        )
        database = Database.from_dict({"edge": [("root", "a"), ("a", "b"), ("c", "d")]})
        derived = seminaive_evaluate(program, database)
        assert derived["reachable_from_root"].rows() == {("a",), ("b",)}

    def test_mutual_recursion_even_odd(self):
        program = parse_program(
            """
            even(X) :- zero(X).
            even(X) :- succ(Y, X), odd(Y).
            odd(X) :- succ(Y, X), even(Y).
            """
        )
        database = Database.from_dict(
            {"zero": [(0,)], "succ": [(i, i + 1) for i in range(6)]}
        )
        derived = seminaive_evaluate(program, database)
        assert derived["even"].rows() == {(0,), (2,), (4,), (6,)}
        assert derived["odd"].rows() == {(1,), (3,), (5,)}

    def test_naive_equals_seminaive_on_two_sided(self, two_sided_program):
        database = Database.from_dict(
            {
                "a": random_pairs(15, 8, seed=3),
                "b": random_pairs(6, 8, seed=4),
                "c": random_pairs(15, 8, seed=5),
            }
        )
        naive = naive_evaluate(two_sided_program, database)["t"].rows()
        semi = seminaive_evaluate(two_sided_program, database)["t"].rows()
        assert naive == semi


class TestInstrumentation:
    def test_stats_are_populated(self, tc_program, small_graph_db):
        _answers, stats = seminaive_query(tc_program, small_graph_db, "t", {0: 0})
        assert stats.iterations >= 1
        assert stats.tuples_examined > 0
        assert stats.elapsed_seconds >= 0

    def test_naive_does_more_work_than_seminaive(self, tc_program):
        database = edge_database([(i, i + 1) for i in range(15)])
        _a1, naive_stats = naive_query(tc_program, database, "t")
        _a2, semi_stats = seminaive_query(tc_program, database, "t")
        assert naive_stats.tuples_examined >= semi_stats.tuples_examined


class TestRandomised:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_naive_equals_seminaive_on_random_graphs(self, seed):
        rng = random.Random(seed)
        database = edge_database(random_pairs(rng.randrange(5, 30), 10, seed=seed))
        program = transitive_closure()
        naive = naive_evaluate(program, database)["t"].rows()
        semi = seminaive_evaluate(program, database)["t"].rows()
        assert naive == semi

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_closure_contains_reachability(self, seed):
        edges = random_pairs(20, 8, seed=seed)
        database = edge_database(edges)
        derived = seminaive_evaluate(transitive_closure(), database)["t"].rows()
        # single edges are always present (via the exit rule b = a)
        for edge in edges:
            assert edge in derived
        # two-step paths are present
        for x, y in edges:
            for y2, z in edges:
                if y == y2:
                    assert (x, z) in derived
