"""Integration tests: the observability layer wired through the service.

These tests boot real :class:`DatalogService` instances, scrape the live
HTTP endpoints with ``urllib`` and assert the exposed values agree with the
pinned ``ServiceStats``/``StorageStats`` counters — the acceptance criterion
for the observability layer is exactly that agreement.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import (
    Database,
    DatalogService,
    FlushPolicy,
    MetricsRegistry,
    ObservabilityServer,
    Tracer,
)
from repro.obs.metrics import CONTENT_TYPE
from repro.storage import StorageConfig

TC = """
t(X, Y) :- a(X, Z), t(Z, Y).
t(X, Y) :- b(X, Y).
"""


def tc_database():
    return Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})


def manual_flush_policy():
    return FlushPolicy(max_batch=1_000_000, max_delay_seconds=3600.0)


def get(url):
    """GET -> (status, content_type, body-str); 4xx/5xx do not raise."""
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.headers["Content-Type"], response.read().decode()
    except urllib.error.HTTPError as error:
        return error.code, error.headers["Content-Type"], error.read().decode()


def metric_value(body, name, **labels):
    """Pull one sample value out of an exposition body (None if absent)."""
    for line in body.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        rest = line[len(name):]
        if rest.startswith(" "):
            if labels:
                continue
            return float(rest.strip())
        if rest.startswith("{"):
            body_part, value = rest.rsplit(" ", 1)
            if all(f'{key}="{val}"' in body_part for key, val in labels.items()):
                return float(value)
    return None


@pytest.fixture
def service():
    with DatalogService(
        TC,
        tc_database(),
        flush_policy=manual_flush_policy(),
        metrics=MetricsRegistry(),
        tracer=Tracer(),
    ) as svc:
        yield svc


# ----------------------------------------------------------------------
# in-process wiring (no HTTP)
# ----------------------------------------------------------------------
class TestRegistryWiring:
    def test_metrics_agree_with_pinned_service_stats(self, service):
        service.query("t(1, Y)?")
        service.query("t(1, Y)?")  # second read hits the epoch cache
        service.insert("b", (2, 9))
        service.barrier()
        service.query("t(1, Y)?")
        stats = service.stats.as_dict()
        rendered = service.metrics.render()
        for key in (
            "queries_served",
            "cache_hits",
            "cache_misses",
            "snapshot_lookups",
            "writes_applied",
            "flushes",
            "epochs_published",
            "barriers",
        ):
            exposed = metric_value(rendered, f"repro_service_{key}_total")
            assert exposed == stats[key], f"{key}: exposed {exposed} != stats {stats[key]}"
        assert metric_value(rendered, "repro_service_epoch") == service.epoch
        assert metric_value(rendered, "repro_service_queue_depth") == 0
        assert metric_value(rendered, "repro_service_cache_entries") == stats["cache_entries"]

    def test_query_latency_histogram_labels_by_outcome(self, service):
        service.query("t(1, Y)?")  # miss -> snapshot_lookup
        service.query("t(1, Y)?")  # hit
        rendered = service.metrics.render()
        assert metric_value(
            rendered, "repro_service_query_seconds_count", outcome="snapshot_lookup"
        ) == 1
        assert metric_value(
            rendered, "repro_service_query_seconds_count", outcome="cache_hit"
        ) == 1

    def test_flush_and_publish_latencies_record_per_flush(self, service):
        service.insert("b", (5, 6))
        service.barrier()
        rendered = service.metrics.render()
        assert metric_value(rendered, "repro_service_flush_seconds_count") == 1
        assert metric_value(rendered, "repro_service_publish_seconds_count") == 1

    def test_engine_bridge_labels_by_strategy(self, service):
        service.query("t(1, Y)?")  # snapshot lookup against the view
        service.insert("b", (2, 9))
        service.barrier()  # incremental maintenance round
        rendered = service.metrics.render()
        assert metric_value(
            rendered, "repro_engine_queries_total", strategy="snapshot-lookup"
        ) == 1
        assert metric_value(
            rendered, "repro_engine_queries_total", strategy="maintenance"
        ) == 1
        totals = service._engine_bridge.totals
        assert metric_value(rendered, "repro_engine_lookups_total") == totals.lookups
        assert (
            metric_value(rendered, "repro_engine_tuples_examined_total")
            == totals.tuples_examined
        )

    def test_flush_spans_are_traced(self, service):
        service.insert("b", (2, 9))
        service.barrier()
        (span,) = service.tracer.spans("flush")
        assert span.attributes["writes"] == 1
        assert span.attributes["epoch"] == service.epoch
        assert span.attributes["published"] is True

    def test_slow_query_log_catches_everything_at_zero_threshold(self):
        with DatalogService(
            TC,
            tc_database(),
            flush_policy=manual_flush_policy(),
            metrics=MetricsRegistry(),
            tracer=Tracer(slow_threshold_seconds=0.0),
        ) as svc:
            svc.query("t(1, Y)?")
            (span,) = svc.tracer.slow_spans()
            assert span.name == "slow_query"
            assert span.attributes["predicate"] == "t"
            assert span.attributes["outcome"] == "snapshot_lookup"

    def test_default_service_runs_on_the_null_pair(self):
        with DatalogService(TC, tc_database(), flush_policy=manual_flush_policy()) as svc:
            assert svc.metrics.null
            assert svc.tracer.null
            svc.query("t(1, Y)?")
            svc.insert("b", (2, 9))
            svc.barrier()
            assert svc.metrics.render() == ""
            assert svc.tracer.spans() == []


# ----------------------------------------------------------------------
# the HTTP endpoints
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_metrics_endpoint_serves_the_exposition_format(self, service):
        service.query("t(1, Y)?")
        server = service.serve_metrics()
        status, content_type, body = get(server.url("/metrics"))
        assert status == 200
        assert content_type == CONTENT_TYPE
        assert "# TYPE repro_service_query_seconds histogram" in body
        assert metric_value(body, "repro_service_queries_served_total") == 1
        # the scrape agrees with the in-process stats
        assert (
            metric_value(body, "repro_service_queries_served_total")
            == service.stats.queries_served
        )

    def test_healthz_reports_ok_for_a_live_service(self, service):
        server = service.serve_metrics()
        status, content_type, body = get(server.url("/healthz"))
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["checks"]["flusher_alive"]["ok"] is True
        assert payload["checks"]["storage"]["ok"] is True
        assert payload["checks"]["epoch_advancing"]["ok"] is True

    def test_statusz_merges_stats_epoch_and_flags(self, service):
        service.query("t(1, Y)?")
        service.insert("b", (2, 9))
        service.barrier()
        server = service.serve_metrics()
        status, _content_type, body = get(server.url("/statusz"))
        assert status == 200
        payload = json.loads(body)
        assert payload["epoch"] == service.epoch
        assert payload["closed"] is False
        assert payload["service"] == service.stats.as_dict()
        assert payload["storage"] is None  # in-memory service
        assert payload["engine"]["lookups"] == service._engine_bridge.totals.lookups
        assert set(payload["flags"]) == {
            "REPRO_KERNELS",
            "REPRO_INTERN",
            "REPRO_COLUMNAR",
        }
        assert payload["tracing"]["spans_recorded"] == service.tracer.spans_recorded
        assert payload["tracing"]["slow_threshold_seconds"] == 0.1

    def test_unknown_paths_get_404_naming_every_endpoint(self, service):
        server = service.serve_metrics()
        status, _content_type, body = get(server.url("/nope"))
        assert status == 404
        for endpoint in ("/metrics", "/healthz", "/statusz", "/debug/queries"):
            assert endpoint in body

    def test_debug_queries_serves_the_flight_recorder(self, service):
        service.query("t(1, Y)?", profile=True)
        server = service.serve_metrics()
        status, content_type, body = get(server.url("/debug/queries"))
        assert status == 200
        assert content_type == "application/json"
        payload = json.loads(body)
        assert payload["in_flight"] == []
        assert payload["profiles_recorded"] == 1
        (profile,) = payload["recent_profiles"]
        assert profile["query"] == "t(1, C1)?"
        assert profile["outcome"] == "ok"
        assert profile["trace_id"] == service.flight.profiles()[0].trace_id

    def test_serve_metrics_is_idempotent(self, service):
        server = service.serve_metrics()
        assert service.serve_metrics() is server

    def test_serve_metrics_upgrades_a_null_service_in_place(self):
        with DatalogService(TC, tc_database(), flush_policy=manual_flush_policy()) as svc:
            assert svc.metrics.null
            server = svc.serve_metrics()
            assert not svc.metrics.null
            assert not svc.tracer.null
            svc.query("t(1, Y)?")
            _status, _ct, body = get(server.url("/metrics"))
            assert metric_value(body, "repro_service_queries_served_total") == 1

    def test_close_shuts_the_exporter_down(self):
        svc = DatalogService(TC, tc_database(), flush_policy=manual_flush_policy())
        server = svc.serve_metrics()
        url = server.url("/healthz")
        svc.close()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url, timeout=1)

    def test_serve_metrics_after_close_raises(self):
        svc = DatalogService(TC, tc_database(), flush_policy=manual_flush_policy())
        svc.close()
        from repro import ServiceClosed

        with pytest.raises(ServiceClosed):
            svc.serve_metrics()

    def test_standalone_server_needs_no_service(self):
        registry = MetricsRegistry()
        registry.counter("standalone_total", "Standalone.").inc(3)
        with ObservabilityServer(registry) as server:
            _status, _ct, body = get(server.url("/metrics"))
            assert metric_value(body, "standalone_total") == 3
            status, _ct, body = get(server.url("/healthz"))
            assert status == 200  # no checks registered -> vacuously healthy
            assert json.loads(body)["checks"] == {}


# ----------------------------------------------------------------------
# exporter error paths
# ----------------------------------------------------------------------
class TestExporterErrorPaths:
    def test_scrapes_racing_close_never_crash_the_server(self):
        """Hammer every endpoint from threads while close() runs underneath.

        The contract: in-flight requests either complete or fail with a
        connection error on the *client* side; nothing hangs, close()
        returns, and close() stays idempotent afterwards.
        """
        import threading

        registry = MetricsRegistry()
        registry.counter("race_total", "Race.").inc(1)
        server = ObservabilityServer(registry)
        urls = [
            server.url(path)
            for path in ("/metrics", "/healthz", "/statusz", "/debug/queries")
        ]
        stop = threading.Event()
        failures = []

        def hammer(url):
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=2) as response:
                        response.read()
                except (urllib.error.URLError, ConnectionError, OSError):
                    pass  # the race we are provoking; must not hang or leak
                except Exception as error:  # noqa: BLE001 - anything else is a bug
                    failures.append(error)
                    return

        threads = [
            threading.Thread(target=hammer, args=(url,), daemon=True) for url in urls
        ]
        for thread in threads:
            thread.start()
        server.close()
        stop.set()
        for thread in threads:
            thread.join(timeout=5)
            assert not thread.is_alive()
        assert failures == []
        server.close()  # idempotent after the race

    def test_debug_queries_shows_live_in_flight_queries(self):
        """Scrape /debug/queries *while* a slow fallback query evaluates."""
        import time

        closure = """
        t(X, Y) :- a(X, Y).
        t(X, Y) :- a(X, Z), t(Z, Y).
        """
        database = Database.from_dict({"a": [(i, i + 1) for i in range(600)]})
        with DatalogService(
            closure, database, flush_policy=manual_flush_policy()
        ) as svc:
            server = svc.serve_metrics()
            # only fallback evaluations are tracked in flight; drop the
            # materialized view so the unbound closure actually evaluates
            svc._snapshot.views.pop("t")
            future = svc.submit("t(X, Y)?", timeout=60.0)
            seen = None
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                _status, _ct, body = get(server.url("/debug/queries"))
                payload = json.loads(body)
                if payload["in_flight"]:
                    seen = payload["in_flight"]
                    break
            assert seen is not None, "the evaluating query never showed up live"
            (row,) = seen
            assert row["query"] == "t(C0, C1)?"
            assert row["trace_id"].startswith("q-")
            assert row["elapsed_seconds"] >= 0
            assert row["deadline_seconds"] > 0
            result = future.result(timeout=120.0)
            assert len(result.answers) == 600 * 601 // 2
            # evaluation finished: the live table drains again
            _status, _ct, body = get(server.url("/debug/queries"))
            assert json.loads(body)["in_flight"] == []

    def test_standalone_server_serves_empty_debug_payload(self):
        with ObservabilityServer(MetricsRegistry()) as server:
            status, _ct, body = get(server.url("/debug/queries"))
            assert status == 200
            assert json.loads(body) == {}


# ----------------------------------------------------------------------
# health degradation
# ----------------------------------------------------------------------
class TestHealthDegradation:
    def test_poisoned_storage_turns_healthz_503(self, tmp_path):
        with DatalogService.open(
            tmp_path / "store",
            TC,
            flush_policy=manual_flush_policy(),
        ) as svc:
            svc.insert("b", (1, 2))
            svc.barrier()
            server = svc.serve_metrics()
            status, _ct, body = get(server.url("/healthz"))
            assert status == 200
            # simulate a flush-time storage failure poisoning the write path
            svc._storage_failed = RuntimeError("disk gone")
            status, _ct, body = get(server.url("/healthz"))
            assert status == 503
            payload = json.loads(body)
            assert payload["status"] == "unhealthy"
            assert payload["checks"]["storage"]["ok"] is False
            assert "disk gone" in payload["checks"]["storage"]["detail"]
            svc._storage_failed = None  # let close() flush cleanly

    def test_dead_flusher_fails_the_liveness_check(self):
        svc = DatalogService(TC, tc_database(), flush_policy=manual_flush_policy())
        server = svc.serve_metrics()
        assert server.health_report().healthy
        # close() joins the flusher; probing the dead service afterwards must
        # fail the liveness check rather than lie (the HTTP server is down
        # too, so run the checks directly)
        svc.close()
        report = server.health_report()
        assert not report.healthy
        assert report.checks["flusher_alive"][0] is False


# ----------------------------------------------------------------------
# durable storage metrics
# ----------------------------------------------------------------------
class TestStorageMetrics:
    def test_storage_metrics_agree_with_pinned_storage_stats(self, tmp_path):
        with DatalogService.open(
            tmp_path / "store",
            TC,
            flush_policy=manual_flush_policy(),
            storage_config=StorageConfig(snapshot_interval=1_000_000),
            metrics=MetricsRegistry(),
        ) as svc:
            for value in range(3):
                svc.insert("b", (1, 100 + value))
                svc.barrier()
            stats = svc.storage_stats.as_dict()
            rendered = svc.metrics.render()
            assert stats["records_appended"] == 3
            for key in ("records_appended", "bytes_appended", "rows_logged", "compactions"):
                assert metric_value(rendered, f"repro_storage_{key}_total") == stats[key]
            assert metric_value(rendered, "repro_storage_wal_segments") == stats["wal_segments"]
            assert (
                metric_value(rendered, "repro_storage_active_segment_bytes")
                == stats["active_segment_bytes"]
            )
            assert stats["active_segment_bytes"] > 0
            # fsync + append latencies were observed once per logged batch
            assert metric_value(rendered, "repro_storage_append_seconds_count") == 3
            assert metric_value(rendered, "repro_storage_fsync_seconds_count") >= 3

    def test_compaction_records_latency_and_a_span(self, tmp_path):
        tracer = Tracer()
        with DatalogService.open(
            tmp_path / "store",
            TC,
            flush_policy=manual_flush_policy(),
            storage_config=StorageConfig(snapshot_interval=1),
            metrics=MetricsRegistry(),
            tracer=tracer,
        ) as svc:
            svc.insert("b", (1, 2))
            svc.barrier()
            rendered = svc.metrics.render()
            assert metric_value(rendered, "repro_storage_compactions_total") == 1
            assert metric_value(rendered, "repro_storage_compaction_seconds_count") == 1
            (span,) = tracer.spans("compaction")
            assert span.attributes["epoch"] == svc.epoch

    def test_recovery_traces_a_span(self, tmp_path):
        path = tmp_path / "store"
        with DatalogService.open(path, TC, flush_policy=manual_flush_policy()) as svc:
            svc.insert("b", (1, 2))
            svc.barrier()
        tracer = Tracer()
        with DatalogService.open(
            path, flush_policy=manual_flush_policy(), tracer=tracer,
            metrics=MetricsRegistry(),
        ) as svc:
            assert sorted(svc.query("t(1, Y)?").answers) == [(1, 2)]
            (span,) = tracer.spans("recover")
            assert span.attributes["records_replayed"] >= 1
