"""Unit tests for the incremental view-maintenance subsystem.

The update-sequence differential suite checks end-to-end equivalence on
random scripts; these tests pin the individual mechanisms — strategy
selection, counting decrements, the DRed cycle case, mutation hooks, view
routing, staleness — on small hand-checkable databases.
"""

from __future__ import annotations

import pytest

from repro import Database, Session, parse_program, seminaive_evaluate
from repro.datalog import SchemaError
from repro.incremental import ViewRegistry
from repro.workloads import bounded_swap, transitive_closure

TC = transitive_closure()


def tc_database():
    return Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(1, 2), (2, 3)]})


def assert_view_matches_recompute(session):
    reference = seminaive_evaluate(session.program, session.database)
    for predicate, relation in session.view.derived.items():
        assert relation.rows() == reference[predicate].rows(), predicate


class TestStrategySelection:
    def test_recursive_program_uses_dred(self):
        session = Session(TC, tc_database())
        assert session.view.strategy == "dred"
        assert "maintenance-strategy" in session.view.provenance.fired()

    def test_bounded_program_unfolds_then_counts(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 1)]})
        session = Session(bounded_swap(), database)
        assert session.view.strategy == "counting"
        assert session.view.provenance.fired() == [
            "view-unfolding",
            "maintenance-strategy",
        ]
        assert "witness depth 2" in session.view.provenance.describe()

    def test_nonrecursive_program_counts_without_unfolding(self):
        program = parse_program("q(X, Y) :- a(X, Z), b(Z, Y).")
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        session = Session(program, database)
        assert session.view.strategy == "counting"
        assert session.view.derived["q"].rows() == {(1, 3)}


class TestInsertions:
    def test_insert_extends_closure(self):
        session = Session(TC, tc_database())
        added = session.insert("a", (3, 4))
        assert added == 1
        # a(3,4) alone derives nothing new: t needs a b-exit at the far end
        session.insert("b", (3, 4))
        assert (1, 4) in session.view.derived["t"]
        assert_view_matches_recompute(session)

    def test_duplicate_insert_is_a_noop(self):
        session = Session(TC, tc_database())
        before = set(session.view.derived["t"].rows())
        assert session.insert("a", (1, 2)) == 0
        assert session.view.derived["t"].rows() == before

    def test_bulk_insert_counts_new_rows_only(self):
        session = Session(TC, tc_database())
        assert session.insert("b", [(1, 2), (7, 8), (7, 8), (8, 9)]) == 2
        assert_view_matches_recompute(session)

    def test_counting_insert_tracks_derivation_counts(self):
        program = parse_program("q(X) :- a(X), c(X).\nq(X) :- b(X), c(X).")
        database = Database.from_dict({"a": [(1,)], "b": [(2,)], "c": [(1,), (2,)]})
        session = Session(program, database)
        assert session.view.counting.count("q", (1,)) == 1
        session.insert("b", (1,))  # second derivation of q(1)
        assert session.view.counting.count("q", (1,)) == 2
        session.delete("a", (1,))  # one derivation survives
        assert (1,) in session.view.derived["q"]
        session.delete("b", (1,))  # last derivation dies
        assert (1,) not in session.view.derived["q"]
        assert_view_matches_recompute(session)


class TestIdbBaseFacts:
    def test_counting_handles_base_facts_under_an_idb_name(self):
        """A base-fact change must not double-count downstream derivations.

        p(1) is both rule-derived (via e) and stored as a base fact; the
        base-fact insert changes p's *count* but not its tuple set, so q's
        count must stay at 1 and drain exactly when p does.
        """
        program = parse_program("p(X) :- e(X).\nq(X) :- p(X).")
        session = Session(program, Database.from_dict({"e": [(1,)]}))
        assert session.view.strategy == "counting"
        session.insert("p", (1,))  # second derivation of p(1), zero new tuples
        assert session.view.counting.count("p", (1,)) == 2
        assert session.view.counting.count("q", (1,)) == 1
        assert_view_matches_recompute(session)
        session.delete("e", (1,))  # p(1) survives on its base fact
        assert (1,) in session.view.derived["q"]
        assert_view_matches_recompute(session)
        session.delete("p", (1,))  # last support gone: p and q both drain
        assert session.view.derived["p"].rows() == set()
        assert session.view.derived["q"].rows() == set()
        assert_view_matches_recompute(session)

    def test_dred_handles_base_facts_under_an_idb_name(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        database.declare("t", 2).add((7, 8))
        session = Session(TC, database)
        assert (7, 8) in session.view.derived["t"]
        session.delete("t", (7, 8))
        assert (7, 8) not in session.view.derived["t"]
        assert_view_matches_recompute(session)

    def test_unfolding_declines_when_base_facts_feed_the_recursion(self):
        """Base facts under a bounded predicate make its unfolding unsound."""
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 1)], "t": [(7, 8)]})
        session = Session(bounded_swap(), database)
        assert session.view.strategy == "dred"  # unfolding declined
        assert_view_matches_recompute(session)
        session.insert("a", (8, 7))  # t(8,7) via a(8,7) ∧ t(7,8): needs the base fact
        assert (8, 7) in session.view.derived["t"]
        assert_view_matches_recompute(session)


class TestDeletions:
    def test_delete_with_alternative_derivation_keeps_tuple(self):
        database = Database.from_dict(
            {"a": [(1, 2), (2, 3)], "b": [(1, 2), (2, 3), (1, 3)]}
        )
        session = Session(TC, database)
        session.delete("a", (2, 3))
        # t(1,3) survives through the direct b(1,3) exit fact
        assert (1, 3) in session.view.derived["t"]
        assert_view_matches_recompute(session)

    def test_cycle_support_is_not_self_sustaining(self):
        """The case counting gets wrong and DRed must get right.

        On the 3-cycle every t-tuple transitively supports every other; when
        the last edge into the cycle is cut, the whole strongly-supported
        component must drain rather than float on mutual support.
        """
        cycle_edges = [(1, 2), (2, 3), (3, 1)]
        database = Database.from_dict({"a": cycle_edges, "b": cycle_edges})
        session = Session(TC, database)
        assert len(session.view.derived["t"]) == 9  # full 3x3 closure
        session.delete("a", (3, 1))
        session.delete("b", (3, 1))
        assert_view_matches_recompute(session)
        assert (3, 1) not in session.view.derived["t"]

    def test_deleting_an_absent_row_is_a_noop(self):
        session = Session(TC, tc_database())
        before = set(session.view.derived["t"].rows())
        assert session.delete("a", (9, 9)) == 0
        assert session.view.derived["t"].rows() == before

    def test_dred_counters_account_overestimate_and_rederivation(self):
        database = Database.from_dict(
            {"a": [(1, 2), (2, 3)], "b": [(3, 4), (1, 3), (1, 4)]}
        )
        session = Session(TC, database)
        # t = {(3,4), (1,3), (1,4), (2,4)}; both (2,4) and (1,4) derive through a(2,3)
        session.delete("a", (2, 3))
        stats = session.last_stats
        # overestimate removes t(2,4) and t(1,4); t(1,4) comes back via b(1,4)
        assert stats.tuples_deleted == 2
        assert stats.tuples_rederived == 1
        assert (2, 4) not in session.view.derived["t"]
        assert (1, 4) in session.view.derived["t"]
        assert_view_matches_recompute(session)


class TestQueryRouting:
    def test_fresh_view_answers_by_indexed_lookup(self):
        session = Session(TC, tc_database())
        result = session.query("t(1, Y)?")
        assert result.answers == {(1, 2), (1, 3)}
        assert result.strategy == "materialized-view (dred)"
        assert result.stats.unrestricted_lookups == 0
        assert result.stats.lookups == 1
        assert result.provenance.strategy == "dred"

    def test_edb_queries_route_to_database_lookup(self):
        session = Session(TC, tc_database())
        result = session.query("a(1, Y)?")
        assert result.answers == {(1, 2)}
        assert result.strategy == "edb-lookup"

    def test_non_view_strategy_bypasses_the_view(self):
        session = Session(TC, tc_database())
        routed = session.query("t(1, Y)?", strategy="seminaive")
        assert routed.answers == session.query("t(1, Y)?").answers

    def test_stale_view_is_refreshed_before_answering(self):
        session = Session(TC, tc_database())
        from repro.datalog import Relation

        # wholesale replacement carries no delta: the view must go stale...
        session.database.add_relation(Relation("a", 2, [(1, 5)]))
        assert not session.view.fresh
        # ...and the next query rebuilds it against the new state
        result = session.query("t(1, Y)?")
        assert session.view.fresh
        assert result.answers == session.query("t(1, Y)?", strategy="seminaive").answers


class TestRegistry:
    def test_duplicate_view_names_are_rejected(self):
        database = tc_database()
        registry = ViewRegistry(database)
        registry.materialize(TC)
        with pytest.raises(SchemaError):
            registry.materialize(TC)

    def test_dropped_views_stop_being_maintained(self):
        database = tc_database()
        registry = ViewRegistry(database)
        view = registry.materialize(TC)
        registry.drop("default")
        database.insert_facts("b", [(9, 10)])
        assert (9, 10) not in view.derived["t"]

    def test_detach_stops_observing(self):
        database = tc_database()
        registry = ViewRegistry(database)
        view = registry.materialize(TC)
        registry.detach()
        database.insert_facts("b", [(9, 10)])
        assert (9, 10) not in view.derived["t"]

    def test_unfolded_views_ignore_provably_irrelevant_updates(self):
        """Minimization can drop atoms; updates to them must cost nothing."""
        program = parse_program(
            """
            t(X, Y) :- a(X, Y), t(Y, X).
            t(X, Y) :- b(X, Y).
            """
        )
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 1)], "z": [(0,)]})
        session = Session(program, database)
        before = session.view.stats.as_dict()
        session.insert("z", (1,))  # not mentioned by the program at all
        assert session.view.stats.as_dict() == before


class TestSessionErgonomics:
    def test_program_accepts_source_text(self):
        session = Session("t(X, Y) :- b(X, Y).", Database.from_dict({"b": [(1, 2)]}))
        assert session.query("t(1, Y)?").answers == {(1, 2)}

    def test_single_rows_accept_every_natural_spelling(self):
        session = Session(TC, tc_database())
        assert session.insert("a", (7, 8)) == 1  # tuple row
        assert session.insert("a", [8, 9]) == 1  # list row, NOT two arity-1 rows
        assert session.database.relation("a").rows() >= {(7, 8), (8, 9)}
        session_one = Session("q(X) :- p(X).", Database())
        session_one.insert("p", "alice")  # a bare string is one value
        assert session_one.database.relation("p").rows() == {("alice",)}

    def test_session_starts_with_empty_database(self):
        session = Session(TC)
        assert session.query("t(1, Y)?").answers == set()
        session.insert("b", (1, 2))
        assert session.query("t(1, Y)?").answers == {(1, 2)}

    def test_maintenance_stats_accumulate(self):
        session = Session(TC, tc_database())
        assert session.maintenance_stats.tuples_inserted == 0
        session.insert("b", (3, 4))
        assert session.maintenance_stats.tuples_inserted > 0
