"""Generated join kernels must match the interpreted step machine exactly.

Every assertion here runs the same compiled plan (or whole evaluation) once
with kernels enabled and once with them disabled and demands identical
results *and* identical instrumentation counters — the contract that lets
the codegen path be the default runtime.
"""

from __future__ import annotations

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.relation import Relation
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine import (
    EvaluationStats,
    compile_delta_variants,
    compile_rule,
    interning_mode,
    kernel_mode,
    kernels_enabled,
    seminaive_evaluate,
    set_kernels_enabled,
)
from repro.engine.kernels import kernel_source
from repro.testing import generate_case
from repro.workloads import ALL_CANONICAL, edge_database, layered_dag


def sample_relations():
    database = edge_database(layered_dag(4, 3, 2, seed=11))
    relations = {r.name: r for r in database.relations()}
    relations["t"] = Relation("t", 2, [(0, 1), (1, 5), (2, 4), (5, 7)])
    return relations


def counters(stats: EvaluationStats) -> dict:
    values = stats.as_dict()
    values.pop("elapsed_seconds", None)
    return values


def evaluate_both_ways(plan, relations, **kwargs):
    """(kernel result, interpreted result, kernel stats, interpreted stats)."""
    kernel_stats = EvaluationStats()
    interpreted_stats = EvaluationStats()
    with kernel_mode(True):
        kernel_result = plan.evaluate(relations, stats=kernel_stats, **kwargs)
    with kernel_mode(False):
        interpreted_result = plan.evaluate(relations, stats=interpreted_stats, **kwargs)
    return kernel_result, interpreted_result, kernel_stats, interpreted_stats


class TestKernelEquivalence:
    def test_matches_interpreted_on_canonical_rules(self):
        relations = sample_relations()
        for name, factory in ALL_CANONICAL.items():
            program = factory()
            for rule in program.rules:
                plan = compile_rule(rule, relations)
                kernel, interpreted, ks, bs = evaluate_both_ways(plan, relations)
                assert kernel == interpreted, f"{name}: {rule}"
                assert counters(ks) == counters(bs), f"{name}: {rule}"

    def test_repeated_variable_within_atom(self):
        rule = Rule(Atom.of("t", "X"), (Atom.of("e", "X", "X"),))
        relations = {"e": Relation("e", 2, [(1, 1), (1, 2), (3, 3)])}
        plan = compile_rule(rule, relations)
        kernel, interpreted, ks, bs = evaluate_both_ways(plan, relations)
        assert kernel == interpreted == {(1,), (3,)}
        assert counters(ks) == counters(bs)

    def test_constants_in_body_and_head(self):
        rule = Rule(Atom.of("t", "X", "fixed"), (Atom.of("e", 1, "X"),))
        relations = {"e": Relation("e", 2, [(1, 10), (2, 20), (1, 30)])}
        plan = compile_rule(rule, relations)
        kernel, interpreted, ks, bs = evaluate_both_ways(plan, relations)
        assert kernel == interpreted == {(10, "fixed"), (30, "fixed")}
        assert counters(ks) == counters(bs)

    def test_multi_column_probe(self):
        # second atom probes two columns at once: key stays a tuple
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "Y"), Atom.of("f", "X", "Y")))
        relations = {
            "e": Relation("e", 2, [(1, 2), (3, 4), (5, 6)]),
            "f": Relation("f", 2, [(1, 2), (5, 6), (7, 8)]),
        }
        plan = compile_rule(rule, relations)
        kernel, interpreted, ks, bs = evaluate_both_ways(plan, relations)
        assert kernel == interpreted == {(1, 2), (5, 6)}
        assert counters(ks) == counters(bs)

    def test_bound_variables_and_bindings(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "Y"),))
        relations = {"e": Relation("e", 2, [(1, 10), (2, 20)])}
        x = Variable("X")
        plan = compile_rule(rule, relations, bound=(x,))
        kernel, interpreted, ks, bs = evaluate_both_ways(plan, relations, bindings={x: 1})
        assert kernel == interpreted == {(1, 10)}
        assert counters(ks) == counters(bs)
        with kernel_mode(True), pytest.raises(ValueError):
            plan.evaluate(relations)

    def test_delta_override_equivalence(self):
        relations = sample_relations()
        rule = Rule(
            Atom.of("t", "X", "Y"),
            (Atom.of("a", "X", "W"), Atom.of("t", "W", "Y")),
        )
        delta = Relation("t", 2, [(1, 5), (5, 7)])
        for _predicate, occurrence, plan in compile_delta_variants(rule, {"t"}):
            kernel, interpreted, ks, bs = evaluate_both_ways(
                plan, relations, overrides={occurrence: delta}
            )
            assert kernel == interpreted
            assert counters(ks) == counters(bs)

    def test_missing_relation_falls_back_and_records_one_lookup(self):
        rule = Rule(Atom.of("t", "X"), (Atom.of("missing", "X"),))
        plan = compile_rule(rule)
        for enabled in (True, False):
            stats = EvaluationStats()
            with kernel_mode(enabled):
                assert plan.evaluate({}, stats=stats) == set()
            assert stats.lookups == 1

    def test_unproducible_plan_is_empty_in_both_modes(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("e", "X", "X"),))
        relations = {"e": Relation("e", 2, [(1, 1)])}
        plan = compile_rule(rule, relations)
        assert not plan.producible
        for enabled in (True, False):
            with kernel_mode(enabled):
                assert plan.evaluate(relations) == set()

    def test_join_multiplicities_match(self):
        # distinct assignments projecting onto the same head carry the
        # multiplicities the counting maintenance layer consumes
        relations = {"e": Relation("e", 2, [(1, 10), (1, 20), (2, 30)])}
        rule = Rule(Atom.of("t", "X"), (Atom.of("e", "X", "Y"),))
        plan = compile_rule(rule, relations)
        with kernel_mode(True):
            kernel = sorted(plan.join(relations))
        with kernel_mode(False):
            interpreted = sorted(plan.join(relations))
        assert kernel == interpreted
        assert len(kernel) == 3  # multiset, not deduplicated


class TestFullEvaluationParity:
    @pytest.mark.parametrize("seed", [0, 3, 7, 19, 42])
    def test_seminaive_counters_identical_across_modes(self, seed):
        case = generate_case(seed)
        results = {}
        stats_by_mode = {}
        for mode, kernels, interning in (
            ("interpreted", False, False),
            ("kernel", True, False),
            ("interned", True, True),
        ):
            stats = EvaluationStats()
            with kernel_mode(kernels), interning_mode(interning):
                derived = seminaive_evaluate(case.program, case.database, stats)
            results[mode] = {p: r.rows() for p, r in derived.items()}
            stats_by_mode[mode] = counters(stats)
        assert results["interpreted"] == results["kernel"] == results["interned"]
        assert (
            stats_by_mode["interpreted"]
            == stats_by_mode["kernel"]
            == stats_by_mode["interned"]
        )


class TestSwitches:
    def test_environment_switch(self, monkeypatch):
        set_kernels_enabled(None)
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        assert kernels_enabled()
        monkeypatch.setenv("REPRO_KERNELS", "off")
        assert not kernels_enabled()
        monkeypatch.setenv("REPRO_KERNELS", "on")
        assert kernels_enabled()

    def test_forced_override_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "off")
        with kernel_mode(True):
            assert kernels_enabled()
        assert not kernels_enabled()

    def test_kernel_source_is_inspectable(self):
        rule = Rule(Atom.of("t", "X", "Y"), (Atom.of("a", "X", "W"), Atom.of("t", "W", "Y")))
        plan = compile_rule(rule)
        source = kernel_source(plan, project=True)
        assert "def _kernel(rels, initial, stats):" in source
        assert "out_add(" in source
        # the memoized pair is attached to the plan on first use
        join_kernel, eval_kernel = plan.kernels()
        assert plan.kernels()[0] is join_kernel
        assert "def _kernel" in eval_kernel.__kernel_source__
