"""Unit tests for :mod:`repro.datalog.database`."""

from __future__ import annotations

import pytest

from repro.datalog import Database, SchemaError
from repro.datalog.atoms import Atom, fact
from repro.datalog.relation import Relation


class TestConstruction:
    def test_from_dict_infers_arity(self):
        database = Database.from_dict({"a": [(1, 2)], "c": [(3,)]})
        assert database.relation("a").arity == 2
        assert database.relation("c").arity == 1

    def test_from_dict_rejects_empty_relations(self):
        with pytest.raises(SchemaError):
            Database.from_dict({"a": []})

    def test_from_facts(self):
        database = Database.from_facts([fact("edge", (1, 2)), fact("edge", (2, 3))])
        assert len(database.relation("edge")) == 2

    def test_add_fact_atom_requires_ground(self):
        database = Database()
        with pytest.raises(SchemaError):
            database.add_fact_atom(Atom.of("edge", "X", 2))

    def test_declare_is_idempotent(self):
        database = Database()
        first = database.declare("a", 2)
        second = database.declare("a", 2)
        assert first is second
        with pytest.raises(SchemaError):
            database.declare("a", 3)

    def test_add_fact_creates_relation(self):
        database = Database()
        database.add_fact("a", (1, 2))
        assert database.has_relation("a")
        assert (1, 2) in database.relation("a")


class TestAccess:
    def test_relation_raises_on_unknown(self):
        with pytest.raises(SchemaError):
            Database().relation("nope")

    def test_relation_or_empty(self):
        database = Database()
        relation = database.relation_or_empty("ghost", 3)
        assert relation.arity == 3
        assert relation.is_empty()

    def test_names_and_len(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(1, 2)]})
        assert database.names() == {"a", "b"}
        assert len(database) == 2
        assert "a" in database


class TestWholeDatabaseOperations:
    def test_copy_is_deep(self):
        database = Database.from_dict({"a": [(1, 2)]})
        clone = database.copy()
        clone.add_fact("a", (3, 4))
        assert (3, 4) not in database.relation("a")

    def test_total_tuples_and_active_domain(self):
        database = Database.from_dict({"a": [(1, 2), (2, 3)], "c": [(9,)]})
        assert database.total_tuples() == 3
        assert database.active_domain() == {1, 2, 3, 9}

    def test_facts_round_trip(self):
        database = Database.from_dict({"a": [(1, 2)]})
        facts = database.facts()
        rebuilt = Database.from_facts(facts)
        assert rebuilt.relation("a").rows() == database.relation("a").rows()

    def test_merge(self):
        left = Database.from_dict({"a": [(1, 2)]})
        right = Database.from_dict({"a": [(3, 4)], "b": [(5, 6)]})
        merged = left.merge(right)
        assert len(merged.relation("a")) == 2
        assert len(merged.relation("b")) == 1
        # inputs untouched
        assert len(left.relation("a")) == 1

    def test_merge_rejects_arity_conflicts(self):
        left = Database.from_dict({"a": [(1, 2)]})
        right = Database.from_dict({"a": [(1, 2, 3)]})
        with pytest.raises(SchemaError):
            left.merge(right)


class _RecordingListener:
    """Captures the hook protocol: phase order, effective deltas, DB state."""

    def __init__(self):
        self.events = []

    def before_insert(self, database, name, rows):
        self.events.append(("before_insert", name, rows, len(database.relation(name))))

    def after_insert(self, database, name, rows):
        self.events.append(("after_insert", name, rows, len(database.relation(name))))

    def before_delete(self, database, name, rows):
        self.events.append(("before_delete", name, rows, len(database.relation(name))))

    def after_delete(self, database, name, rows):
        self.events.append(("after_delete", name, rows, len(database.relation(name))))

    def on_relation_replaced(self, database, name):
        self.events.append(("replaced", name))


class TestMutationHooksAndBulkOps:
    def test_remove_fact_mirrors_add_fact(self):
        database = Database.from_dict({"a": [(1, 2), (2, 3)]})
        assert database.remove_fact("a", (1, 2)) is True
        assert database.remove_fact("a", (1, 2)) is False
        assert database.remove_fact("missing", (1,)) is False
        assert database.relation("a").rows() == {(2, 3)}

    def test_insert_facts_reports_effective_delta(self):
        database = Database.from_dict({"a": [(1, 2)]})
        assert database.insert_facts("a", [(1, 2), (3, 4), (3, 4), (5, 6)]) == 2
        assert len(database.relation("a")) == 3

    def test_insert_facts_creates_relation(self):
        database = Database()
        assert database.insert_facts("fresh", [(1,), (2,)]) == 2
        assert database.relation("fresh").arity == 1

    def test_insert_facts_validates_arity_before_hooks_fire(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        with pytest.raises(SchemaError):
            database.insert_facts("a", [(1, 2, 3)])
        assert listener.events == []  # nothing fired for the rejected batch

    def test_remove_facts_ignores_absent_rows(self):
        database = Database.from_dict({"a": [(1, 2), (2, 3)]})
        assert database.remove_facts("a", [(9, 9), (2, 3)]) == 1
        assert database.remove_facts("missing", [(1,)]) == 0

    def test_hooks_see_effective_deltas_around_the_mutation(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        database.insert_facts("a", [(1, 2), (3, 4)])
        database.remove_facts("a", [(3, 4), (9, 9)])
        assert listener.events == [
            ("before_insert", "a", ((3, 4),), 1),  # old state, already-present row filtered
            ("after_insert", "a", ((3, 4),), 2),  # new state
            ("before_delete", "a", ((3, 4),), 2),  # rows still present
            ("after_delete", "a", ((3, 4),), 1),  # rows gone
        ]

    def test_noop_mutations_fire_no_hooks(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        database.insert_facts("a", [(1, 2)])
        database.remove_facts("a", [(9, 9)])
        assert listener.events == []

    def test_add_fact_routes_through_hooks_when_listening(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        assert database.add_fact("a", (5, 6)) is True
        assert [event[0] for event in listener.events] == ["before_insert", "after_insert"]

    def test_add_relation_fires_replacement_hook(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        database.add_relation(Relation("a", 2, [(9, 9)]))
        assert listener.events == [("replaced", "a")]

    def test_remove_listener_and_copy_isolation(self):
        database = Database.from_dict({"a": [(1, 2)]})
        listener = _RecordingListener()
        database.add_listener(listener)
        database.copy().insert_facts("a", [(7, 8)])  # copies do not share listeners
        database.remove_listener(listener)
        database.insert_facts("a", [(5, 6)])
        assert listener.events == []
