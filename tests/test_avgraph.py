"""Tests for A/V graph construction and cycle analysis (Figures 2-6)."""

from __future__ import annotations

import pytest

from repro.avgraph import (
    ArgNode,
    VarNode,
    analyze_components,
    build_av_graph,
    build_full_av_graph,
    component_containing_predicate,
    components_with_nonzero_cycles,
    describe,
    to_dot,
)
from repro.avgraph.build import IDENTITY, PREDICATE, UNIFICATION
from repro.avgraph.cycles import nonzero_cycle_nodes, simple_cycles
from repro.datalog import ProgramError, parse_rule
from repro.datalog.terms import Variable
from repro.workloads import (
    buys_unoptimized,
    example_3_4,
    example_3_5,
    same_generation,
    transitive_closure,
)


@pytest.fixture
def tc_rule():
    return transitive_closure().linear_recursive_rule("t")


class TestAVGraphConstruction:
    """Figure 2: the A/V graph of the canonical one-sided recursion."""

    def test_figure_2_nodes(self, tc_rule):
        graph = build_av_graph(tc_rule)
        labels = {node.label() for node in graph.nodes}
        assert labels == {"X", "Y", "Z", "a1", "a2", "t1", "t2"}

    def test_figure_2_edges(self, tc_rule):
        graph = build_av_graph(tc_rule)
        identity = {(e.source.label(), e.target.label()) for e in graph.edges if e.kind == IDENTITY}
        unification = {(e.source.label(), e.target.label()) for e in graph.edges if e.kind == UNIFICATION}
        assert identity == {("a1", "X"), ("a2", "Z"), ("t1", "Z"), ("t2", "Y")}
        assert unification == {("t1", "X"), ("t2", "Y")}
        assert not [e for e in graph.edges if e.kind == PREDICATE]

    def test_unification_edges_have_weight_one(self, tc_rule):
        graph = build_av_graph(tc_rule)
        for edge in graph.edges:
            assert edge.weight == (1 if edge.kind == UNIFICATION else 0)

    def test_rejects_nonlinear_rules(self):
        with pytest.raises(ProgramError):
            build_av_graph(parse_rule("t(X, Y) :- t(X, Z), t(Z, Y)."))

    def test_argument_nodes_flag_recursive_predicate(self, tc_rule):
        graph = build_av_graph(tc_rule)
        recursive = {n.label() for n in graph.argument_nodes() if n.recursive}
        assert recursive == {"t1", "t2"}


class TestFullAVGraph:
    """Figure 3: predicate edges added, variable-only components pruned."""

    def test_figure_3_prunes_y_t2_component(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        labels = {node.label() for node in graph.nodes}
        assert labels == {"X", "Z", "a1", "a2", "t1"}

    def test_figure_3_has_predicate_edge(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        predicate_edges = [e for e in graph.edges if e.kind == PREDICATE]
        assert {(e.source.label(), e.target.label()) for e in predicate_edges} == {("a1", "a2")}

    def test_repeated_predicates_get_distinct_nodes(self):
        graph = build_full_av_graph(same_generation().linear_recursive_rule("sg"))
        p_nodes = [n for n in graph.argument_nodes() if n.predicate == "p"]
        assert len(p_nodes) == 4
        assert {n.occurrence for n in p_nodes} == {0, 1}
        assert {n.label() for n in p_nodes} == {"p1", "p2", "p#21", "p#22"}

    def test_figure_4_same_generation_two_components(self):
        graph = build_full_av_graph(same_generation().linear_recursive_rule("sg"))
        components = analyze_components(graph)
        assert len(components) == 2
        assert all(c.cycle_gcd == 1 for c in components)

    def test_figure_5_example_3_4(self):
        graph = build_full_av_graph(example_3_4().linear_recursive_rule("t"))
        components = analyze_components(graph)
        nonzero = [c for c in components if c.has_nonzero_weight_cycle]
        assert len(nonzero) == 1
        assert nonzero[0].cycle_gcd == 1
        # the d(Z) part survives as a separate, cycle-free component
        d_component = component_containing_predicate(graph, "d")
        assert d_component is not None
        assert not d_component.has_nonzero_weight_cycle

    def test_figure_6_example_3_5_cycle_weight_two(self):
        graph = build_full_av_graph(example_3_5().linear_recursive_rule("t"))
        components = analyze_components(graph)
        assert len(components) == 1
        assert components[0].cycle_gcd == 2
        assert components[0].has_nonzero_weight_cycle
        assert not components[0].has_weight_one_cycle

    def test_nullary_and_unary_predicates_are_handled(self):
        rule = parse_rule("t(X, Y) :- flag, c(X), t(X, Y).")
        graph = build_full_av_graph(rule)
        labels = {node.label() for node in graph.nodes}
        assert "c1" in labels


class TestComponentAnalysis:
    def test_walk_weights_on_tc(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        component = analyze_components(graph)[0]
        a1 = graph.node_by_label("a1")
        a2 = graph.node_by_label("a2")
        base, gcd = component.walk_weights(a1, a2)
        # a1 and a2 are joined by weight-0 edges, and the component's cycle gcd is 1,
        # so walks of every integer weight exist between them.
        assert gcd == 1
        assert (base - 0) % gcd == 0

    def test_nondistinguished_detection(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        component = analyze_components(graph)[0]
        distinguished = set(tc_rule.head_variables())
        assert component.has_nondistinguished_variable(distinguished)
        assert component.nondistinguished_variables(distinguished) == {Variable("Z")}

    def test_nonrecursive_predicates_listed(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        component = analyze_components(graph)[0]
        assert component.nonrecursive_predicates() == {("a", 0)}

    def test_components_with_nonzero_cycles(self):
        graph = build_full_av_graph(buys_unoptimized().linear_recursive_rule("buys"))
        assert len(components_with_nonzero_cycles(graph)) == 2


class TestSimpleCycles:
    def test_tc_has_a_weight_one_two_cycle(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        cycles = simple_cycles(graph)
        weights = {weight for _nodes, weight in cycles}
        assert 1 in weights

    def test_example_3_5_simple_cycle_weight_two(self):
        graph = build_full_av_graph(example_3_5().linear_recursive_rule("t"))
        nonzero_weights = {w for _nodes, w in simple_cycles(graph) if w != 0}
        assert nonzero_weights == {2}

    def test_nonzero_cycle_nodes_excludes_pendant_nodes(self):
        rule = parse_rule("t(X, Y) :- a(X, W), t(X, Y).")
        graph = build_full_av_graph(rule)
        on_cycles = {node.label() for node in nonzero_cycle_nodes(graph)}
        assert "W" not in on_cycles
        assert "X" in on_cycles

    def test_acyclic_component_has_no_cycles(self):
        graph = build_full_av_graph(example_3_4().linear_recursive_rule("t"))
        d_component = component_containing_predicate(graph, "d")
        assert d_component is not None
        cycle_nodes = nonzero_cycle_nodes(graph)
        assert not (cycle_nodes & d_component.nodes)


class TestRendering:
    def test_describe_mentions_every_component(self, tc_rule):
        graph = build_full_av_graph(tc_rule)
        text = describe(graph)
        assert "component 1" in text
        assert "cycle-weight gcd = 1" in text

    def test_dot_output_is_wellformed(self, tc_rule):
        dot = to_dot(build_full_av_graph(tc_rule), name="fig3")
        assert dot.startswith("digraph fig3 {")
        assert dot.rstrip().endswith("}")
        assert '"t1" -> "X"' in dot
