"""Unit tests for the Prolog-syntax parser."""

from __future__ import annotations

import pytest

from repro.datalog import ParseError, parse_atom, parse_program, parse_query, parse_rule
from repro.datalog.atoms import Atom
from repro.datalog.parser import split_facts
from repro.datalog.terms import Constant, Variable


class TestParseRule:
    def test_recursive_rule(self):
        rule = parse_rule("t(X, Y) :- a(X, Z), t(Z, Y).")
        assert rule.head == Atom.of("t", "X", "Y")
        assert rule.body == (Atom.of("a", "X", "Z"), Atom.of("t", "Z", "Y"))

    def test_fact(self):
        rule = parse_rule("edge(1, 2).")
        assert rule.is_fact
        assert rule.head == Atom("edge", (Constant(1), Constant(2)))

    def test_quoted_and_numeric_constants(self):
        rule = parse_rule("likes('Alice', 3, 2.5).")
        assert rule.head.args == (Constant("Alice"), Constant(3), Constant(2.5))

    def test_lowercase_constants_in_body(self):
        rule = parse_rule("t(X) :- a(X, paris).")
        assert rule.body[0].args == (Variable("X"), Constant("paris"))

    def test_nullary_predicate(self):
        rule = parse_rule("halt :- condition.")
        assert rule.head == Atom("halt", ())
        assert rule.body == (Atom("condition", ()),)

    def test_missing_period_is_an_error(self):
        with pytest.raises(ParseError):
            parse_rule("t(X, Y) :- a(X, Y)")

    def test_trailing_garbage_is_an_error(self):
        with pytest.raises(ParseError):
            parse_rule("t(X). extra")

    def test_unterminated_quote_is_an_error(self):
        with pytest.raises(ParseError):
            parse_rule("t('oops.")

    def test_query_rejected_where_rule_expected(self):
        with pytest.raises(ParseError):
            parse_rule("t(X, Y)?")

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse_rule("t(X, ) :- a(X).")
        assert excinfo.value.line == 1
        assert excinfo.value.column > 1


class TestParseProgram:
    def test_multiple_rules_and_comments(self):
        program = parse_program(
            """
            % the canonical one-sided recursion
            t(X, Y) :- a(X, Z), t(Z, Y).
            t(X, Y) :- b(X, Y).   % exit rule
            """
        )
        assert len(program.rules) == 2
        assert program.idb_predicates() == {"t"}

    def test_facts_inside_programs(self):
        program = parse_program("edge(1, 2). edge(2, 3). path(X, Y) :- edge(X, Y).")
        rules, facts = split_facts(program)
        assert len(rules.rules) == 1
        assert len(facts) == 2

    def test_empty_program(self):
        assert parse_program("  % nothing here\n").rules == ()

    def test_query_inside_program_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("t(X, Y) :- a(X, Y). t(1, Y)?")


class TestParseQueryAndAtom:
    def test_query_with_question_mark(self):
        atom = parse_query("t(1, Y)?")
        assert atom == Atom("t", (Constant(1), Variable("Y")))

    def test_query_without_terminator(self):
        assert parse_query("t(1, Y)") == Atom("t", (Constant(1), Variable("Y")))

    def test_parse_atom(self):
        assert parse_atom("a(X, Z)") == Atom.of("a", "X", "Z")
        assert parse_atom("a(X, Z).") == Atom.of("a", "X", "Z")

    def test_query_must_be_single_atom(self):
        with pytest.raises(ParseError):
            parse_query("t(1, Y) :- a(1, Y)?")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "t(X, Y) :- a(X, Z), t(Z, Y).",
            "t(X, Y) :- b(X, Y).",
            "sg(X, Y) :- p(X, W), p(Y, Z), sg(W, Z).",
            "buys(X, Y) :- knows(X, W), buys(W, Y), cheap(Y).",
            "q(X1, X2, X3) :- q(X1, X2, W), e(W, X3).",
        ],
    )
    def test_str_then_parse_is_identity(self, text):
        rule = parse_rule(text)
        assert parse_rule(str(rule)) == rule

    def test_paper_programs_parse(self):
        from repro.workloads import ALL_CANONICAL

        for factory in ALL_CANONICAL.values():
            program = factory()
            assert program.rules
            assert parse_program(str(program)) == program
