"""The shared packed-row codec: one layout under storage, relations, columns.

:mod:`repro.engine.packing` is the single implementation behind snapshot
files, :meth:`Relation.packed_rows` and the columnar engine's hydration
path, so its invariants are pinned directly: determinism (sorted, deduped),
lossless round trips through both the row view and the column view, the
zero-arity ``count`` convention, and size validation of foreign bytes.
"""

from __future__ import annotations

import random
import struct
from array import array

import pytest

from repro.datalog.errors import SchemaError
from repro.datalog.relation import Relation
from repro.engine.packing import (
    columns_from_packed,
    pack_columns,
    pack_rows,
    unpack_rows,
)


class TestPackRows:
    def test_round_trip_random(self):
        rng = random.Random(3)
        for arity in (1, 2, 3, 5):
            rows = {
                tuple(rng.randrange(-1000, 1000) for _ in range(arity))
                for _ in range(rng.randrange(0, 60))
            }
            count, packed = pack_rows(rows)
            assert count == len(rows)
            assert len(packed) == count * arity * 8
            assert unpack_rows(packed, arity, count) == rows

    def test_deterministic_and_deduplicating(self):
        rows_a = [(3, 1), (1, 2), (3, 1)]
        rows_b = [(1, 2), (3, 1)]
        assert pack_rows(rows_a) == pack_rows(rows_b)
        count, packed = pack_rows(rows_a)
        assert count == 2
        # sorted row order: (1, 2) before (3, 1), little-endian int64 codes
        assert packed == struct.pack("<4q", 1, 2, 3, 1)

    def test_intern_callback_encodes_values(self):
        mapping = {"a": 0, "b": 1}
        count, packed = pack_rows([("a", "b"), ("b", "a")], mapping.__getitem__)
        assert unpack_rows(packed, 2, count) == {(0, 1), (1, 0)}
        decoded = unpack_rows(packed, 2, count, decode="ab".__getitem__)
        assert decoded == {("a", "b"), ("b", "a")}

    def test_zero_arity_count_disambiguates(self):
        assert unpack_rows(b"", 0, 1) == {()}
        assert unpack_rows(b"", 0, 0) == set()


class TestColumnCodec:
    def test_columns_round_trip(self):
        rows = {(5, -2, 7), (1, 2, 3), (0, 0, 0)}
        count, packed = pack_rows(rows)
        columns = columns_from_packed(packed, 3, count)
        assert all(isinstance(column, array) for column in columns)
        assert set(zip(*columns)) == rows
        assert pack_columns(columns, count) == (count, packed)

    def test_columns_preserve_row_order(self):
        count, packed = pack_rows([(2, 20), (1, 10), (3, 30)])
        first, second = columns_from_packed(packed, 2, count)
        assert list(first) == [1, 2, 3]
        assert list(second) == [10, 20, 30]

    def test_empty_columns(self):
        assert pack_columns([], 0) == (0, b"")
        assert pack_columns([], 1) == (1, b"")
        assert columns_from_packed(b"", 2, 0) == [array("q"), array("q")]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            columns_from_packed(b"\x00" * 15, 2, 1)
        with pytest.raises(ValueError):
            columns_from_packed(b"\x00" * 16, 2, 2)


class TestRelationDelegation:
    def test_relation_codec_is_the_shared_codec(self):
        relation = Relation("r", 2, [(4, 5), (1, 2)])
        assert relation.packed_rows(None) == pack_rows(relation.rows())
        count, packed = relation.packed_rows(None)
        again = Relation.from_packed_rows("r", 2, count, packed, lambda code: code)
        assert again.rows() == relation.rows()

    def test_relation_wraps_codec_errors_as_schema_errors(self):
        with pytest.raises(SchemaError):
            Relation.from_packed_rows("r", 2, 3, b"\x00" * 8, lambda code: code)
