"""Unit tests for :mod:`repro.datalog.terms`."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datalog.terms import (
    Constant,
    Variable,
    fresh_variable,
    is_constant,
    is_variable,
    make_term,
)


class TestVariable:
    def test_str_without_subscript(self):
        assert str(Variable("X")) == "X"

    def test_str_with_subscript(self):
        assert str(Variable("W", 3)) == "W_3"

    def test_with_subscript_returns_new_variable(self):
        base = Variable("W")
        subscripted = base.with_subscript(2)
        assert subscripted == Variable("W", 2)
        assert base == Variable("W")

    def test_base_strips_subscript(self):
        assert Variable("W", 5).base() == Variable("W")

    def test_equality_includes_subscript(self):
        assert Variable("W", 1) != Variable("W", 2)
        assert Variable("W", 1) != Variable("W")

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {Variable("X"): 1, Variable("X", 1): 2}
        assert mapping[Variable("X")] == 1
        assert mapping[Variable("X", 1)] == 2

    def test_ordering_is_total(self):
        variables = [Variable("Z"), Variable("A", 2), Variable("A")]
        assert sorted(variables) == sorted(variables, key=lambda v: (v.name, v.subscript is not None, v.subscript or 0)) or len(sorted(variables)) == 3


class TestConstant:
    def test_str(self):
        assert str(Constant("paris")) == "paris"
        assert str(Constant(42)) == "42"

    def test_value_equality(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert Constant("1") != Constant(1)


class TestMakeTerm:
    def test_uppercase_string_becomes_variable(self):
        assert make_term("X") == Variable("X")
        assert make_term("Widget") == Variable("Widget")

    def test_underscore_becomes_variable(self):
        assert is_variable(make_term("_anything"))

    def test_lowercase_string_becomes_constant(self):
        assert make_term("paris") == Constant("paris")

    def test_numbers_become_constants(self):
        assert make_term(3) == Constant(3)
        assert make_term(2.5) == Constant(2.5)

    def test_existing_terms_pass_through(self):
        variable = Variable("X")
        constant = Constant(7)
        assert make_term(variable) is variable
        assert make_term(constant) is constant

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            make_term(object())

    def test_predicates(self):
        assert is_variable(Variable("X")) and not is_constant(Variable("X"))
        assert is_constant(Constant(1)) and not is_variable(Constant(1))


class TestFreshVariable:
    def test_returns_base_name_when_free(self):
        assert fresh_variable("W", set()) == Variable("W")

    def test_avoids_taken_names(self):
        taken = {Variable("W"), Variable("W1")}
        fresh = fresh_variable("W", taken)
        assert fresh not in taken
        assert fresh.name.startswith("W")

    @given(st.sets(st.integers(min_value=1, max_value=30), max_size=30))
    def test_never_collides(self, indexes):
        taken = {Variable("V")} | {Variable(f"V{i}") for i in indexes}
        fresh = fresh_variable("V", taken)
        assert fresh not in taken
