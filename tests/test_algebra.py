"""Unit tests for the instrumented relational algebra (:mod:`repro.engine.algebra`)."""

from __future__ import annotations

import pytest

from repro.datalog.relation import Relation
from repro.engine import algebra
from repro.engine.instrumentation import EvaluationStats


@pytest.fixture
def edges() -> Relation:
    return Relation("a", 2, [(1, 2), (2, 3), (3, 4), (1, 4)])


class TestSelect:
    def test_select_on_relation_uses_index(self, edges):
        stats = EvaluationStats()
        result = algebra.select(edges, {0: 1}, stats)
        assert result == {(1, 2), (1, 4)}
        assert stats.tuples_examined == 2
        assert stats.unrestricted_lookups == 0

    def test_select_without_bindings_counts_as_unrestricted(self, edges):
        stats = EvaluationStats()
        result = algebra.select(edges, {}, stats)
        assert result == set(edges)
        assert stats.unrestricted_lookups == 1

    def test_select_on_tuple_set(self):
        stats = EvaluationStats()
        result = algebra.select({(1, 2), (2, 2)}, {1: 2}, stats)
        assert result == {(1, 2), (2, 2)}


class TestProjectJoinUnion:
    def test_project(self, edges):
        assert algebra.project(edges, [1]) == {(2,), (3,), (4,)}
        assert algebra.project({(1, 2)}, [1, 0]) == {(2, 1)}

    def test_join_against_relation_counts_probes(self, edges):
        stats = EvaluationStats()
        left = {(10, 1), (11, 3)}
        result = algebra.join(left, edges, 1, 0, stats)
        assert result == {(10, 1, 1, 2), (10, 1, 1, 4), (11, 3, 3, 4)}
        assert stats.lookups == 2
        assert stats.unrestricted_lookups == 0

    def test_join_against_tuple_set(self):
        result = algebra.join({(1,)}, {(1, 5), (2, 6)}, 0, 0)
        assert result == {(1, 1, 5)}

    def test_semijoin(self, edges):
        stats = EvaluationStats()
        result = algebra.semijoin({1, 3}, edges, 0, stats)
        assert result == {(1, 2), (1, 4), (3, 4)}
        assert stats.tuples_examined == 3

    def test_union_and_difference(self):
        assert algebra.union({(1,)}, {(2,)}) == {(1,), (2,)}
        assert algebra.difference({(1,), (2,)}, {(2,)}) == {(1,)}

    def test_scan_is_unrestricted(self, edges):
        stats = EvaluationStats()
        assert algebra.scan(edges, stats) == set(edges)
        assert stats.unrestricted_lookups == 1

    def test_columns_of(self, edges):
        assert algebra.columns_of(edges) == 2
        assert algebra.columns_of({(1, 2, 3)}) == 3
        assert algebra.columns_of(set()) == 0


class TestStats:
    def test_merge_accumulates(self):
        first = EvaluationStats(tuples_examined=5, iterations=2, peak_state_tuples=7)
        second = EvaluationStats(tuples_examined=3, iterations=1, peak_state_tuples=4)
        second.extra["carry_arity"] = 1
        merged = first.merge(second)
        assert merged.tuples_examined == 8
        assert merged.iterations == 3
        assert merged.peak_state_tuples == 7
        assert merged.extra["carry_arity"] == 1

    def test_as_dict_includes_extras(self):
        stats = EvaluationStats()
        stats.extra["magic_rules"] = 4
        flattened = stats.as_dict()
        assert flattened["magic_rules"] == 4
        assert "tuples_examined" in flattened

    def test_timer(self):
        stats = EvaluationStats()
        stats.start_timer()
        stats.stop_timer()
        assert stats.elapsed_seconds >= 0
        stats.stop_timer()  # idempotent when not running

    def test_record_state_tracks_peak(self):
        stats = EvaluationStats()
        stats.record_state(5, 10)
        stats.record_state(3, 20)
        assert stats.peak_state_tuples == 5
        assert stats.peak_state_columns == 20
