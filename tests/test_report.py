"""Tests for the plain-text reporting helpers."""

from __future__ import annotations

from repro.analysis import format_cell, format_comparison, format_table, stats_row
from repro.engine import EvaluationStats


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_integers_use_thousands_separators(self):
        assert format_cell(1234567) == "1,234,567"

    def test_floats_use_three_significant_digits(self):
        assert format_cell(0.123456) == "0.123"
        assert format_cell(0.0) == "0"
        assert format_cell(1234.5) == "1,234"

    def test_strings_pass_through(self):
        assert format_cell("magic") == "magic"


class TestFormatTable:
    def test_alignment_and_title(self):
        table = format_table(
            ["strategy", "tuples"],
            [["one-sided", 10], ["semi-naive", 1000]],
            title="E2",
        )
        lines = table.splitlines()
        assert lines[0] == "E2"
        assert lines[1].startswith("strategy")
        assert "1,000" in table
        # all data lines have the same width
        assert len(set(len(line) for line in lines[2:])) == 1

    def test_handles_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table


class TestComparisonAndRows:
    def test_comparison_direction(self):
        text = format_comparison("one-sided vs semi-naive", baseline=100, candidate=10)
        assert "10" in text and "less" in text
        text = format_comparison("worse", baseline=10, candidate=100)
        assert "more" in text

    def test_comparison_zero_cases(self):
        assert "0" in format_comparison("empty", 0, 0)
        assert "candidate reports 0" in format_comparison("free", 50, 0)

    def test_stats_row_extracts_keys(self):
        stats = EvaluationStats(tuples_examined=5, iterations=2)
        row = stats_row("semi-naive", stats.as_dict(), ["tuples_examined", "iterations", "missing"])
        assert row == ["semi-naive", 5, 2, None]
