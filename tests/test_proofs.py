"""Tests for proof extraction and the Lemma 4.1 / 4.2 separation."""

from __future__ import annotations

import pytest

from repro.core import (
    column_repetition_width,
    find_proof,
    lossy_unary_carry_evaluation,
    max_repetition_width,
)
from repro.datalog import Database
from repro.engine import seminaive_query
from repro.workloads import (
    canonical_two_sided,
    chain,
    edge_database,
    layered_dag,
    lemma_4_2_database,
    transitive_closure,
)


class TestFindProof:
    def test_depth_zero_proof(self, tc_program):
        database = Database.from_dict({"a": [(1, 2)], "b": [(5, 6)]})
        proof = find_proof(tc_program, "t", (5, 6), database)
        assert proof is not None
        assert proof.depth == 0
        assert [str(fact) for fact in proof.facts] == ["b(5, 6)"]

    def test_chain_proof_lists_every_edge(self, tc_program, chain_db):
        proof = find_proof(tc_program, "t", (0, 100), chain_db)
        assert proof is not None
        assert proof.depth == 6
        assert len(proof.facts_for("a")) == 6
        assert len(proof.facts_for("b")) == 1

    def test_underivable_tuple_has_no_proof(self, tc_program, chain_db):
        assert find_proof(tc_program, "t", (100, 0), chain_db, max_depth=10) is None

    def test_proof_is_shallowest(self, tc_program):
        # 1 -> 4 directly and via 2, 3; the shallowest proof uses the direct base edge
        database = Database.from_dict({"a": [(1, 2), (2, 3), (3, 4)], "b": [(3, 4), (1, 4)]})
        proof = find_proof(tc_program, "t", (1, 4), database)
        assert proof is not None
        assert proof.depth == 0

    def test_proof_facts_are_database_facts(self, tc_program, small_graph_db):
        answers, _ = seminaive_query(tc_program, small_graph_db, "t")
        some_tuple = sorted(answers)[len(answers) // 2]
        proof = find_proof(tc_program, "t", some_tuple, small_graph_db)
        assert proof is not None
        for fact in proof.facts:
            values = tuple(arg.value for arg in fact.args)
            assert values in small_graph_db.relation(fact.predicate)


class TestLemma41:
    """One-sided: shallowest proofs never repeat a constant in a column of a."""

    def test_chain_width_is_one(self, tc_program, chain_db):
        assert max_repetition_width(tc_program, "t", "a", chain_db) == 1

    def test_dag_width_is_one(self, tc_program):
        database = edge_database(layered_dag(5, 3, 2, seed=9))
        assert max_repetition_width(tc_program, "t", "a", database) == 1

    def test_width_of_single_proof(self, tc_program, chain_db):
        proof = find_proof(tc_program, "t", (0, 100), chain_db)
        assert column_repetition_width(proof, "a") == 1
        assert column_repetition_width(proof, "missing") == 0


class TestLemma42:
    """Two-sided: the adversarial family forces k repetitions."""

    @pytest.mark.parametrize("k", [1, 2, 4, 6])
    def test_width_grows_with_k(self, k):
        database, target = lemma_4_2_database(k)
        program = canonical_two_sided()
        answers, _ = seminaive_query(program, database, "t")
        assert target in answers
        width = max_repetition_width(program, "t", "a", database, tuples=[target])
        assert width == k

    def test_database_shape(self):
        database, target = lemma_4_2_database(3)
        assert len(database.relation("a")) == 1
        assert len(database.relation("b")) == 1
        assert len(database.relation("c")) == 6
        assert target == ("v1", "v3")

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            lemma_4_2_database(0)


class TestLossyUnaryCarry:
    """The Property-2-only algorithm is exact on one-sided-like data but lossy on Lemma 4.2."""

    def test_exact_on_acyclic_chain_data(self):
        database = Database.from_dict(
            {
                "a": chain(5),
                "b": [(5, "z0")],
                "c": [(f"z{i}" if i else "z0", f"z{i + 1}") for i in range(7)],
            }
        )
        program = canonical_two_sided()
        reference, _ = seminaive_query(program, database, "t", {0: 0})
        lossy, _ = lossy_unary_carry_evaluation(database, 0)
        assert lossy == {row[1] for row in reference}

    @pytest.mark.parametrize("k", [2, 3, 5])
    def test_loses_answers_on_lemma_4_2_family(self, k):
        database, target = lemma_4_2_database(k)
        program = canonical_two_sided()
        reference, _ = seminaive_query(program, database, "t", {0: "v1"})
        reference_values = {row[1] for row in reference}
        lossy, stats = lossy_unary_carry_evaluation(database, "v1")
        assert lossy < reference_values  # strictly incomplete
        assert target[1] not in lossy  # in particular the Lemma 4.2 witness is missed
        assert stats.extra["carry_arity"] == 1  # it really did respect Property 2

    def test_never_invents_answers_on_this_family(self):
        database, _target = lemma_4_2_database(4)
        reference, _ = seminaive_query(canonical_two_sided(), database, "t", {0: "v1"})
        lossy, _ = lossy_unary_carry_evaluation(database, "v1")
        assert lossy <= {row[1] for row in reference}
