"""Tests for the pass-based optimizer (:mod:`repro.optimize`)."""

from __future__ import annotations

import pytest

from repro.cq.cache import CQCache
from repro.datalog import EvaluationError, parse_program
from repro.engine import SelectionQuery, seminaive_query
from repro.optimize import (
    Optimizer,
    RedundancyRemovalPass,
    apply_unfolding,
    default_passes,
    detection_passes,
    evaluate_unfolded,
    optimize_program,
    unfold_bounded,
)
from repro.workloads import (
    appendix_a_p,
    bounded_guard_tc,
    bounded_swap,
    buys_optimized,
    buys_unoptimized,
    canonical_two_sided,
    nonlinear_tc,
    transitive_closure,
)
from repro.datalog.database import Database


class TestUnfoldBounded:
    def test_guard_recursion_unfolds_to_exit_rule(self):
        definition = unfold_bounded(bounded_guard_tc(), "t")
        assert definition is not None
        assert definition.witness_depth == 1
        assert len(definition.rules) == 1
        assert definition.rules[0].body[0].predicate == "b"

    def test_swap_recursion_unfolds_at_depth_two(self):
        definition = unfold_bounded(bounded_swap(), "t")
        assert definition is not None
        assert definition.witness_depth == 2
        assert len(definition.rules) == 2

    def test_unbounded_recursion_does_not_unfold(self):
        assert unfold_bounded(transitive_closure(), "t", max_depth=4) is None

    def test_nonlinear_recursion_is_out_of_scope(self):
        assert unfold_bounded(nonlinear_tc(), "t") is None

    def test_idb_exit_layer_declines_to_fire(self):
        """Strings that still mention IDB predicates must not be unfolded."""
        program = parse_program(
            """
            pair(X, Y) :- c(X), d(Y).
            t(X, Y) :- pair(X, Y).
            t(X, Y) :- a(X, Y), t(X, Y).
            """
        )
        assert unfold_bounded(program, "t") is None

    def test_unfolded_program_matches_fixpoint_semantics(self):
        program = bounded_swap()
        definition = unfold_bounded(program, "t")
        rewritten = apply_unfolding(program, definition)
        database = Database.from_dict(
            {"a": [(1, 2), (2, 1), (2, 3), (4, 4)], "b": [(1, 2), (2, 1), (3, 4)]}
        )
        reference, _ = seminaive_query(program, database, "t")
        unfolded, _ = seminaive_query(rewritten, database, "t")
        assert unfolded == reference

    def test_evaluate_unfolded_pushes_selection(self):
        program = bounded_swap()
        definition = unfold_bounded(program, "t")
        database = Database.from_dict(
            {"a": [(1, 2), (2, 1), (2, 3)], "b": [(1, 2), (2, 1), (3, 4)]}
        )
        query = SelectionQuery.of("t", 2, {0: 1})
        answers, stats = evaluate_unfolded(definition, database, query)
        reference, _ = seminaive_query(program, database, "t", {0: 1})
        assert answers == reference
        assert stats.plans_compiled == len(definition.rules)
        # the selection is pushed into the joins: no unrestricted scans needed
        assert stats.unrestricted_lookups == 0


class TestOptimizerRuns:
    def test_full_chain_on_bounded_program(self):
        result = optimize_program(appendix_a_p(), "p")
        assert result.uniformly_bounded is True
        assert result.unfolded is not None
        assert "bounded-unfolding" in result.fired()
        assert not result.program.is_recursive_predicate("p")
        # the pre-unfold program is still the recursion the verdicts describe
        assert result.optimized.is_recursive_predicate("p")

    def test_full_chain_on_unbounded_program_skips_witness_search(self):
        result = optimize_program(transitive_closure(), "t")
        assert result.uniformly_bounded is False
        assert result.unfolded is None
        unfolding = [r for r in result.rewrites if r.pass_name == "bounded-unfolding"]
        assert unfolding and "provably unbounded" in unfolding[0].detail

    def test_redundancy_pass_fires_on_buys(self):
        result = optimize_program(buys_unoptimized(), "buys")
        assert "redundancy-removal" in result.fired()
        assert result.optimized == buys_optimized()

    def test_out_of_scope_program_records_every_pass_as_noop(self):
        result = optimize_program(nonlinear_tc(), "t")
        assert result.out_of_scope
        assert result.fired() == []
        assert any("undecidable" in note for note in result.notes)

    def test_describe_lists_one_line_per_pass(self):
        result = optimize_program(canonical_two_sided(), "t")
        lines = result.describe().splitlines()
        assert len(lines) == len(default_passes())

    def test_detection_passes_share_a_private_cache(self):
        cache = CQCache()
        Optimizer(default_passes(), cache).run(bounded_swap(), "t")
        stats = cache.stats()
        assert stats["misses"] > 0
        # a second run over the same program is answered from the cache
        before = cache.stats()["misses"]
        Optimizer(default_passes(), cache).run(bounded_swap(), "t")
        assert cache.stats()["misses"] == before

    def test_redundancy_verification_cross_checks_the_rewrite(self):
        passes = (RedundancyRemovalPass(verify=True),) + detection_passes()[1:]
        result = Optimizer(passes).run(buys_unoptimized(), "buys")
        assert result.optimized == buys_optimized()


class TestCQCache:
    def test_canonical_key_is_renaming_invariant(self):
        from repro.cq.cache import canonical_key
        from repro.cq.strings import ExpansionString
        from repro.datalog import parse_atom
        from repro.datalog.terms import Variable

        x, y = Variable("X"), Variable("Y")
        first = ExpansionString((x,), (parse_atom("a(X, Y)"), parse_atom("a(Y, Z)")))
        second = ExpansionString((x,), (parse_atom("a(X, W)"), parse_atom("a(W, U)")))
        third = ExpansionString((x,), (parse_atom("a(X, Y)"), parse_atom("a(Z, Y)")))
        assert canonical_key(first) == canonical_key(second)
        assert canonical_key(first) != canonical_key(third)
        # freezing a variable pins it by name, distinguishing the strings
        assert canonical_key(first, {y}) != canonical_key(second, {y})

    def test_cached_answers_match_uncached(self):
        from repro.cq.cache import CQCache
        from repro.cq.containment import is_contained_in
        from repro.expansion import expand

        strings = expand(transitive_closure(), "t", 3)
        cache = CQCache()
        for first in strings:
            for second in strings:
                assert cache.is_contained_in(first, second) == is_contained_in(first, second)
        # every pair was asked twice by symmetry of the loop: hits occurred
        assert cache.stats()["hits"] == 0  # distinct (source, target) pairs only
        for first in strings:
            for second in strings:
                cache.is_contained_in(first, second)
        assert cache.stats()["hits"] > 0

    def test_minimize_union_matches_uncached(self):
        from repro.cq.cache import CQCache
        from repro.cq.minimize import minimize_union
        from repro.expansion import expand

        strings = expand(bounded_swap(), "t", 3)
        assert CQCache().minimize_union(strings) == minimize_union(strings)

    def test_lru_eviction_bounds_the_store(self):
        from repro.cq.cache import CQCache
        from repro.expansion import expand

        cache = CQCache(maxsize=2)
        strings = expand(transitive_closure(), "t", 4)
        for first in strings:
            for second in strings:
                cache.is_contained_in(first, second)
        assert cache.stats()["containment_entries"] <= 2
        assert cache.stats()["evictions"] > 0


class TestFrontDoorUnfolded:
    def test_forced_unfolded_on_unbounded_program_raises(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(2, 3)]})
        with pytest.raises(EvaluationError):
            from repro import answer

            answer(transitive_closure(), database, "t(1, Y)?", strategy="unfolded")

    def test_forced_unfolded_on_bounded_program(self):
        from repro import answer

        database = Database.from_dict({"a": [(1, 2), (2, 1)], "b": [(1, 2), (2, 1), (3, 4)]})
        result = answer(bounded_swap(), database, "t(1, Y)?", strategy="unfolded")
        assert result.strategy == "unfolded"
        reference, _ = seminaive_query(bounded_swap(), database, "t", {0: 1})
        assert result.answers == reference
        assert result.provenance is not None
        assert "bounded-unfolding" in result.provenance.fired()

    def test_forced_unfolded_searches_full_depth_when_boundedness_undecided(self):
        """Repeated nonrecursive predicates leave the structural criterion
        undecided; a forced unfolding must still search ``max_unfold_depth``,
        not the cheaper fallback the auto chain uses."""
        from repro import answer
        from repro.core.boundedness import bounded_prefix_depth

        program = parse_program(
            """
            t(X, Y, Z, W) :- a(X, Y), a(Z, W), t(Y, Z, W, X).
            t(X, Y, Z, W) :- b(X, Y, Z, W).
            """
        )
        assert bounded_prefix_depth(program, "t", 8) == 4
        database = Database.from_dict(
            {"a": [(1, 2), (2, 1)], "b": [(1, 2, 1, 2), (2, 1, 2, 1)]}
        )
        result = answer(
            program, database, SelectionQuery.of("t", 4, {0: 1}), strategy="unfolded"
        )
        assert result.provenance.unfolded.witness_depth == 4
        reference, _ = seminaive_query(program, database, "t", {0: 1})
        assert result.answers == reference
        # the auto chain keeps its cheap fallback: no unfolding at depth 3
        auto = answer(program, database, SelectionQuery.of("t", 4, {0: 1}))
        assert "unfolded" not in auto.strategy
        assert auto.answers == reference
