"""The columnar batch engine must match the row engines exactly.

Three layers of contract are pinned here:

* :class:`ColumnStore` is a lossless change of representation — round trips
  through columns (and through the shared packed codec) are identities, and
  stores never alias a relation's copy-on-write internals;
* the two-relation join primitives (hash, merge, auto) agree with each other
  and with a brute-force join on every input;
* whole evaluations under ``REPRO_COLUMNAR=force`` reproduce the kernel
  engine's derived relations *and* its instrumentation totals, tuple for
  tuple and counter for counter, while the leapfrog join on cyclic bodies
  examines asymptotically fewer tuples than the binary plans it replaces.
"""

from __future__ import annotations

import random
from array import array

import pytest

from repro.datalog.atoms import Atom
from repro.datalog.relation import Relation
from repro.datalog.rules import Rule
from repro.datalog.terms import Variable
from repro.engine import (
    ColumnStore,
    EvaluationStats,
    columnar_enabled,
    columnar_mode,
    compile_rule,
    interning_mode,
    kernel_mode,
    seminaive_evaluate,
)
from repro.engine.columnar import (
    batch_hash_join,
    columnar_forced,
    is_cyclic,
    join,
    leapfrog_join,
    merge_join,
    set_columnar_enabled,
    wcoj_eligible,
)
from repro.testing import generate_case
from repro.workloads import (
    ALL_CANONICAL,
    appendix_a_database,
    edge_database,
    layered_dag,
    permissions_database,
    random_graph,
    same_generation_database,
    uniform_tree,
)

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


def random_relation(rng: random.Random, name: str, arity: int, size: int, ints: bool) -> Relation:
    def value():
        return rng.randrange(50) if ints else rng.choice(["a", "b", 3, ("n", 1), None])

    rows = {tuple(value() for _ in range(arity)) for _ in range(size)}
    return Relation(name, arity, rows)


class TestColumnStoreRoundTrip:
    def test_identity_over_random_arities_and_sizes(self):
        rng = random.Random(7)
        for arity in (1, 2, 3, 4):
            for size in (0, 1, 2, 17, 100):
                for ints in (True, False):
                    relation = random_relation(rng, "r", arity, size, ints)
                    store = ColumnStore.from_relation(relation)
                    back = store.to_relation()
                    assert back.name == relation.name
                    assert back.arity == relation.arity
                    assert back.rows() == relation.rows()
                    assert len(store) == len(relation.rows())

    def test_arity_zero_relations(self):
        empty = Relation("e", 0)
        assert ColumnStore.from_relation(empty).to_relation().rows() == set()
        nonempty = Relation("e", 0, [()])
        assert ColumnStore.from_relation(nonempty).to_relation().rows() == {()}

    def test_int_columns_use_machine_arrays(self):
        store = ColumnStore.from_relation(Relation("r", 2, [(1, 2), (3, 4)]))
        assert all(isinstance(column, array) for column in store.columns)
        mixed = ColumnStore.from_relation(Relation("r", 2, [(1, "x")]))
        assert all(isinstance(column, list) for column in mixed.columns)

    def test_packed_codec_round_trip(self):
        rng = random.Random(11)
        for arity in (1, 2, 3):
            relation = random_relation(rng, "p", arity, 40, ints=True)
            store = ColumnStore.from_relation(relation)
            count, packed = store.packed_rows()
            again = ColumnStore.from_packed_rows("p", arity, count, packed)
            assert again.rows() == relation.rows()
            assert (count, packed) == relation.packed_rows(None)


class TestColumnStoreNoAliasing:
    def test_store_survives_cow_detach_of_live_relation(self):
        live = Relation("r", 2, [(1, 2), (3, 4)])
        store = ColumnStore.from_relation(live)
        snapshot = live.freeze()
        # first mutation after the freeze detaches the live relation's storage
        live.add((5, 6))
        assert store.rows() == {(1, 2), (3, 4)}
        assert snapshot.rows() == {(1, 2), (3, 4)}
        assert live.rows() == {(1, 2), (3, 4), (5, 6)}

    def test_store_built_from_snapshot_never_sees_live_mutations(self):
        live = Relation("r", 2, [(1, 2)])
        snapshot = live.freeze()
        store = ColumnStore.from_relation(snapshot)
        live.add((7, 8))
        live.discard((1, 2))
        assert store.rows() == {(1, 2)}

    def test_two_stores_never_share_column_arrays(self):
        relation = Relation("r", 2, [(1, 2), (3, 4)])
        first = ColumnStore.from_relation(relation)
        second = ColumnStore.from_relation(relation)
        first.columns[0][0] = 99
        assert second.rows() == {(1, 2), (3, 4)}
        assert relation.rows() == {(1, 2), (3, 4)}


def normalized(matches):
    return sorted((key, sorted(lefts), sorted(rights)) for key, lefts, rights in matches)


class TestJoinPrimitives:
    def brute_force(self, left, lcol, right, rcol):
        expected = {}
        for i in range(left.count):
            for j in range(right.count):
                if left.columns[lcol][i] == right.columns[rcol][j]:
                    entry = expected.setdefault(left.columns[lcol][i], (set(), set()))
                    entry[0].add(i)
                    entry[1].add(j)
        return sorted(
            (key, sorted(lefts), sorted(rights)) for key, (lefts, rights) in expected.items()
        )

    def test_hash_merge_and_auto_agree_with_brute_force(self):
        rng = random.Random(23)
        for trial in range(10):
            left = ColumnStore.from_relation(random_relation(rng, "l", 2, 30, ints=True))
            right = ColumnStore.from_relation(random_relation(rng, "r", 2, 40, ints=True))
            for lcol, rcol in ((0, 0), (0, 1), (1, 0)):
                expected = self.brute_force(left, lcol, right, rcol)
                assert normalized(batch_hash_join(left, lcol, right, rcol)) == expected
                assert normalized(merge_join(left, lcol, right, rcol)) == expected
                assert normalized(join(left, lcol, right, rcol)) == expected

    def test_auto_join_prefers_merge_once_runs_are_cached(self):
        left = ColumnStore.from_relation(Relation("l", 2, [(1, 2), (2, 3)]))
        right = ColumnStore.from_relation(Relation("r", 2, [(2, 9), (3, 9)]))
        assert not left.has_sorted_runs(0)
        left.sorted_runs(0)
        right.sorted_runs(0)
        assert left.has_sorted_runs(0) and right.has_sorted_runs(0)
        assert normalized(join(left, 0, right, 0)) == normalized(
            merge_join(left, 0, right, 0)
        )

    def test_empty_inputs(self):
        empty = ColumnStore.from_relation(Relation("e", 2))
        full = ColumnStore.from_relation(Relation("f", 2, [(1, 2)]))
        assert batch_hash_join(empty, 0, full, 0) == []
        assert merge_join(full, 0, empty, 0) == []


class TestCyclicity:
    def test_triangle_is_cyclic(self):
        assert is_cyclic([frozenset({X, Y}), frozenset({Y, Z}), frozenset({Z, X})])

    def test_path_and_star_are_acyclic(self):
        W = Variable("W")
        assert not is_cyclic([frozenset({X, Y}), frozenset({Y, Z}), frozenset({Z, W})])
        assert not is_cyclic([frozenset({X, Y}), frozenset({X, Z}), frozenset({X, W})])

    def test_four_cycle_is_cyclic(self):
        W = Variable("W")
        assert is_cyclic(
            [
                frozenset({X, Y}),
                frozenset({Y, Z}),
                frozenset({Z, W}),
                frozenset({W, X}),
            ]
        )

    def test_single_edge_and_empty_are_acyclic(self):
        assert not is_cyclic([frozenset({X, Y})])
        assert not is_cyclic([])


def triangle_rule() -> Rule:
    return Rule(
        Atom("tri", (X, Y, Z)),
        (Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, X))),
    )


def triangle_relations(edges) -> dict:
    return {"e": Relation("e", 2, edges)}


class TestLeapfrogJoin:
    def test_triangle_matches_binary_plans(self):
        edges = set(random_graph(40, 220, seed=5))
        edges |= {(b, a) for a, b in random_graph(40, 60, seed=6)}
        relations = triangle_relations(edges)
        plan = compile_rule(triangle_rule(), relations)
        resolved = wcoj_eligible(plan, relations)
        assert resolved is not None
        direct = leapfrog_join(plan, resolved)
        with columnar_mode(False):
            reference = plan.evaluate(relations)
        assert direct == reference
        # the engine dispatches to the leapfrog join on its own when enabled
        with columnar_mode(True):
            assert plan.evaluate(relations) == reference

    def test_triangle_examines_asymptotically_fewer_tuples(self):
        # a star around hub 0: N spokes each way plus the closing edges; any
        # binary plan materializes the Theta(N^2) spoke-pair intermediate,
        # the leapfrog join touches O(N) candidates
        growth = []
        for n in (40, 80):
            edges = {(0, i) for i in range(1, n)} | {(i, 0) for i in range(1, n)}
            relations = triangle_relations(edges)
            plan = compile_rule(triangle_rule(), relations)
            resolved = wcoj_eligible(plan, relations)
            assert resolved is not None
            wcoj_stats = EvaluationStats()
            binary_stats = EvaluationStats()
            result = leapfrog_join(plan, resolved, wcoj_stats)
            with columnar_mode(False):
                assert plan.evaluate(relations, stats=binary_stats) == result
            growth.append((wcoj_stats.tuples_examined, binary_stats.tuples_examined))
        for wcoj_examined, binary_examined in growth:
            assert wcoj_examined < binary_examined
        # doubling N roughly quadruples the binary plan's work but only
        # doubles the leapfrog join's
        assert growth[1][0] <= growth[0][0] * 3
        assert growth[1][1] >= growth[0][1] * 3

    def test_acyclic_bodies_are_not_eligible(self):
        W = Variable("W")
        rule = Rule(
            Atom("p", (X, W)),
            (Atom("e", (X, Y)), Atom("e", (Y, Z)), Atom("e", (Z, W))),
        )
        relations = triangle_relations({(1, 2), (2, 3), (3, 4)})
        plan = compile_rule(rule, relations)
        assert wcoj_eligible(plan, relations) is None

    def test_non_int_relations_are_not_eligible(self):
        relations = {"e": Relation("e", 2, [("a", "b"), ("b", "c"), ("c", "a")])}
        plan = compile_rule(triangle_rule(), relations)
        assert wcoj_eligible(plan, relations) is None
        # but evaluation still works (falls back to the binary plans)
        with columnar_mode(True):
            assert plan.evaluate(relations) == {("a", "b", "c"), ("b", "c", "a"), ("c", "a", "b")}


class TestColumnarFlag:
    def test_mode_states(self):
        with columnar_mode(False):
            assert not columnar_enabled()
            assert not columnar_forced()
        with columnar_mode(True):
            assert columnar_enabled()
            assert not columnar_forced()
        with columnar_mode("force"):
            assert columnar_enabled()
            assert columnar_forced()

    def test_set_override_and_restore(self):
        baseline = columnar_enabled()
        set_columnar_enabled(False)
        try:
            assert not columnar_enabled()
        finally:
            set_columnar_enabled(None)
        assert columnar_enabled() == baseline


def counters(stats: EvaluationStats) -> dict:
    values = stats.as_dict()
    values.pop("elapsed_seconds", None)
    return values


def evaluate_modes(program, database):
    """Derived relations + counters under kernel, forced-columnar, adaptive."""
    outcomes = {}
    for label, columnar in (("kernel", False), ("forced", "force"), ("adaptive", True)):
        stats = EvaluationStats()
        with kernel_mode(True), interning_mode(True), columnar_mode(columnar):
            derived = seminaive_evaluate(program, database, stats)
        outcomes[label] = (
            {name: relation.rows() for name, relation in derived.items()},
            counters(stats),
        )
    return outcomes


class TestWholeEvaluationParity:
    workloads = [
        ("transitive_closure", lambda: edge_database(layered_dag(4, 6, 3, seed=2))),
        ("transitive_closure", lambda: edge_database(uniform_tree(2, 6))),
        ("same_generation", lambda: same_generation_database(branching=2, depth=5)),
        ("tc_with_permissions", lambda: permissions_database(layered_dag(4, 5, 2, seed=3))),
        ("appendix_a_p", lambda: appendix_a_database(pairs=14, domain=9, seed=1)),
        ("canonical_two_sided", lambda: edge_database(layered_dag(3, 5, 2, seed=4))),
        ("example_3_5", lambda: edge_database(random_graph(14, 30, seed=5))),
    ]

    @pytest.mark.parametrize("name, database_factory", workloads)
    def test_results_and_stats_identical_across_modes(self, name, database_factory):
        program = ALL_CANONICAL[name]()
        outcomes = evaluate_modes(program, database_factory())
        kernel_rows, kernel_counters = outcomes["kernel"]
        for label in ("forced", "adaptive"):
            rows, totals = outcomes[label]
            assert rows == kernel_rows, f"{name}: {label} derived relations drifted"
            assert totals == kernel_counters, f"{name}: {label} counters drifted"

    def test_generated_cases_agree(self):
        for seed in range(6):
            case = generate_case(seed)
            outcomes = evaluate_modes(case.program, case.database)
            kernel_rows, kernel_counters = outcomes["kernel"]
            for label in ("forced", "adaptive"):
                rows, totals = outcomes[label]
                assert rows == kernel_rows, f"seed {seed}: {label} relations drifted"
                assert totals == kernel_counters, f"seed {seed}: {label} counters drifted"

    def test_interpreted_engine_agrees_with_forced_columnar(self):
        program = ALL_CANONICAL["transitive_closure"]()
        database = edge_database(layered_dag(4, 5, 2, seed=9))
        interpreted_stats = EvaluationStats()
        columnar_stats = EvaluationStats()
        with kernel_mode(False), interning_mode(False), columnar_mode(False):
            interpreted = seminaive_evaluate(program, database, interpreted_stats)
        with kernel_mode(True), interning_mode(True), columnar_mode("force"):
            columnar = seminaive_evaluate(program, database, columnar_stats)
        assert {n: r.rows() for n, r in interpreted.items()} == {
            n: r.rows() for n, r in columnar.items()
        }
        assert counters(interpreted_stats) == counters(columnar_stats)
