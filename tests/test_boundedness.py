"""Tests for the uniform-boundedness checks."""

from __future__ import annotations

import pytest

from repro.core import (
    bounded_prefix_depth,
    is_bounded_empirical,
    is_uniformly_bounded_structural,
    is_uniformly_unbounded_structural,
)
from repro.datalog import parse_program
from repro.workloads import (
    appendix_a_p,
    canonical_two_sided,
    example_3_4,
    tc_with_permissions,
    transitive_closure,
)


class TestStructuralCriterion:
    def test_appendix_a_p_is_bounded(self):
        assert is_uniformly_bounded_structural(appendix_a_p(), "p")

    def test_transitive_closure_is_unbounded(self):
        assert not is_uniformly_bounded_structural(transitive_closure(), "t")
        assert is_uniformly_unbounded_structural(transitive_closure(), "t")

    def test_canonical_two_sided_is_unbounded(self):
        assert not is_uniformly_bounded_structural(canonical_two_sided(), "t")

    def test_example_3_4_is_unbounded(self):
        assert not is_uniformly_bounded_structural(example_3_4(), "t")

    def test_pendant_only_rule_is_bounded(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W), t(X, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        assert is_uniformly_bounded_structural(program, "t")

    def test_no_nonrecursive_atoms_is_bounded(self):
        program = parse_program(
            """
            t(X, Y) :- t(Y, X).
            t(X, Y) :- b(X, Y).
            """
        )
        assert is_uniformly_bounded_structural(program, "t")


class TestEmpiricalCriterion:
    def test_appendix_a_p_bounded_at_depth_one(self):
        assert bounded_prefix_depth(appendix_a_p(), "p") == 1
        assert is_bounded_empirical(appendix_a_p(), "p")

    def test_transitive_closure_has_no_bounded_prefix(self):
        assert bounded_prefix_depth(transitive_closure(), "t", max_depth=6) is None
        assert not is_bounded_empirical(transitive_closure(), "t", max_depth=6)

    def test_swap_rule_bounded_at_depth_two(self):
        program = parse_program(
            """
            t(X, Y) :- t(Y, X).
            t(X, Y) :- b(X, Y).
            """
        )
        assert bounded_prefix_depth(program, "t") == 2

    def test_pendant_rule_bounded_quickly(self):
        program = parse_program(
            """
            t(X, Y) :- a(X, W), t(X, Y).
            t(X, Y) :- b(X, Y).
            """
        )
        depth = bounded_prefix_depth(program, "t")
        assert depth is not None and depth <= 2

    @pytest.mark.parametrize(
        "factory, predicate",
        [
            (transitive_closure, "t"),
            (canonical_two_sided, "t"),
            (tc_with_permissions, "t"),
            (example_3_4, "t"),
            (appendix_a_p, "p"),
        ],
    )
    def test_structural_and_empirical_agree(self, factory, predicate):
        """On the decidable subclass the two checks must agree (cross-validation)."""
        program = factory()
        structural = is_uniformly_bounded_structural(program, predicate)
        empirical = is_bounded_empirical(program, predicate, max_depth=6)
        assert structural == empirical
