"""Tests for the literal Figure 7 / Figure 8 algorithm transcriptions."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    aho_ullman_selection,
    henschen_naqvi_selection,
    transitive_closure_pairs,
)
from repro.datalog import Database
from repro.engine import seminaive_query
from repro.workloads import (
    chain,
    cycle,
    edge_database,
    random_pairs,
    transitive_closure,
)


def reference_answers(database, column, constant):
    answers, _ = seminaive_query(transitive_closure(), database, "t", {column: constant})
    other = 1 - column
    return {row[other] for row in answers}


class TestFigure7AhoUllman:
    """Selection t(X, n0): evaluate the strings right to left."""

    def test_chain(self, chain_db):
        answers, _stats = aho_ullman_selection(chain_db, 100)
        assert answers == set(range(7))

    def test_no_matching_exit_tuple(self, chain_db):
        answers, _stats = aho_ullman_selection(chain_db, 999)
        assert answers == set()

    def test_matches_seminaive_on_random_graphs(self, rng):
        for seed in range(5):
            database = edge_database(random_pairs(30, 12, seed=seed))
            constant = rng.randrange(12)
            answers, _ = aho_ullman_selection(database, constant)
            assert answers == reference_answers(database, 1, constant)

    def test_terminates_on_cycles(self, cyclic_db):
        answers, stats = aho_ullman_selection(cyclic_db, 3)
        assert answers == {0, 1, 2}
        assert stats.iterations <= 6  # Property 1: no special cycle handling needed

    def test_property_2_state_is_unary(self, chain_db):
        _answers, stats = aho_ullman_selection(chain_db, 100)
        assert stats.extra["carry_arity"] == 1

    def test_property_3_no_unrestricted_lookups(self, chain_db):
        _answers, stats = aho_ullman_selection(chain_db, 100)
        assert stats.unrestricted_lookups == 0

    def test_touches_fewer_tuples_than_full_evaluation(self):
        database = edge_database(chain(60) + [(200, 201), (201, 202)])
        _answers, selective = aho_ullman_selection(database, 202)
        _full, full_stats = seminaive_query(transitive_closure(), database, "t", {1: 202})
        assert selective.tuples_examined < full_stats.tuples_examined


class TestFigure8HenschenNaqvi:
    """Selection t(n0, Y): evaluate the strings left to right."""

    def test_chain(self, chain_db):
        answers, _stats = henschen_naqvi_selection(chain_db, 0)
        assert answers == {100}

    def test_unreachable_constant(self, chain_db):
        answers, _stats = henschen_naqvi_selection(chain_db, 999)
        assert answers == set()

    def test_depth_zero_answers_come_from_b_alone(self):
        database = Database.from_dict({"a": [(1, 2)], "b": [(5, 6)]})
        answers, _ = henschen_naqvi_selection(database, 5)
        assert answers == {6}

    def test_matches_seminaive_on_random_graphs(self, rng):
        for seed in range(5):
            database = edge_database(random_pairs(30, 12, seed=100 + seed))
            constant = rng.randrange(12)
            answers, _ = henschen_naqvi_selection(database, constant)
            assert answers == reference_answers(database, 0, constant)

    def test_terminates_on_cycles(self, cyclic_db):
        answers, stats = henschen_naqvi_selection(cyclic_db, 0)
        assert answers == {0, 1, 2, 3}
        assert stats.iterations <= 6

    def test_properties_2_and_3(self, chain_db):
        _answers, stats = henschen_naqvi_selection(chain_db, 0)
        assert stats.extra["carry_arity"] == 1
        assert stats.unrestricted_lookups == 0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000), st.integers(0, 9))
    def test_agrees_with_seminaive_property(self, seed, constant):
        database = edge_database(random_pairs(25, 10, seed=seed))
        answers, _ = henschen_naqvi_selection(database, constant)
        assert answers == reference_answers(database, 0, constant)


class TestFullClosure:
    def test_matches_seminaive(self, small_graph_db):
        pairs, _ = transitive_closure_pairs(small_graph_db)
        reference, _ = seminaive_query(transitive_closure(), small_graph_db, "t")
        assert pairs == reference

    def test_terminates_on_cycles(self, cyclic_db):
        pairs, _ = transitive_closure_pairs(cyclic_db)
        assert (0, 0) in pairs

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10_000))
    def test_selection_algorithms_are_sections_of_the_closure(self, seed):
        """Fig 7/8 answers are exactly the matching rows of the full closure."""
        database = edge_database(random_pairs(20, 8, seed=seed))
        closure, _ = transitive_closure_pairs(database)
        constant = seed % 8
        au, _ = aho_ullman_selection(database, constant)
        hn, _ = henschen_naqvi_selection(database, constant)
        assert au == {x for (x, y) in closure if y == constant}
        assert hn == {y for (x, y) in closure if x == constant}
