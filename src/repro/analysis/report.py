"""Plain-text reporting helpers used by the benchmark harness.

The paper's "evaluation" consists of figures and qualitative claims, so the
benchmarks print small tables (who examined how many tuples, which recursion
was classified how) rather than plots.  This module keeps that formatting in
one place: fixed-width tables, comparison ratios and simple series.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

Cell = Union[str, int, float, bool, None]


def format_cell(value: Cell) -> str:
    """Render one table cell: floats get 3 significant decimals, bools yes/no."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = "") -> str:
    """A fixed-width text table.

    ``rows`` is an iterable of sequences aligned with ``headers``.  Columns are
    right-aligned except the first, which is left-aligned (it usually names the
    configuration or strategy).
    """
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts)

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_line(list(headers)))
    lines.append(render_line(["-" * width for width in widths]))
    for row in rendered_rows:
        lines.append(render_line(row))
    return "\n".join(lines)


def format_comparison(
    label: str,
    baseline: float,
    candidate: float,
    metric: str = "tuples examined",
) -> str:
    """One line stating who wins and by what factor (the paper-shape statement)."""
    if candidate == 0 and baseline == 0:
        return f"{label}: both strategies report 0 {metric}"
    if candidate == 0:
        return f"{label}: candidate reports 0 {metric} (baseline {format_cell(baseline)})"
    ratio = baseline / candidate
    direction = "x less" if ratio >= 1 else "x more"
    factor = ratio if ratio >= 1 else 1 / ratio
    return f"{label}: {format_cell(factor)}{direction} {metric} than the baseline"


def stats_row(label: str, stats: Mapping[str, float], keys: Sequence[str]) -> List[Cell]:
    """Build a table row from an ``EvaluationStats.as_dict()`` mapping."""
    return [label] + [stats.get(key) for key in keys]


def print_report(text: str) -> None:
    """Print a report block surrounded by blank lines (keeps pytest -s output readable)."""
    print()
    print(text)
    print()
