"""Reporting helpers for the benchmark harness."""

from .report import format_cell, format_comparison, format_table, print_report, stats_row

__all__ = ["format_cell", "format_comparison", "format_table", "print_report", "stats_row"]
