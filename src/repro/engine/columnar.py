"""Columnar execution — set-at-a-time joins for the fixpoint engines.

The generated kernels (:mod:`repro.engine.kernels`) made the *per-row* cost
of a delta round as small as Python allows: one dict probe, one tuple build,
one set add per derivation.  The remaining waste is structural — a frontier
row is re-dispatched through the whole loop even when thousands of rows share
the same join key.  This module removes that waste by executing whole delta
rounds *set-at-a-time*:

* a :class:`ColumnStore` holds a relation as one ``array('q')`` per column
  (over interned int codes; plain lists when values are not ints), with
  hash-partition views and sorted runs built lazily per join key — the
  columnar analogue of :class:`~repro.datalog.relation.Relation`'s lazily
  registered indexes;
* :func:`batch_hash_join` and :func:`merge_join` are vectorized two-relation
  join primitives over those views (:func:`join` picks merge when both sides
  already have sorted runs cached, hash otherwise);
* :func:`leapfrog_join` is a worst-case-optimal join (leapfrog-triejoin
  style): when a nonrecursive rule body is *cyclic* (GYO ear removal leaves a
  residue — e.g. the triangle query), any binary join plan materializes an
  intermediate that can be asymptotically larger than the output, while the
  leapfrog enumeration is bounded by the AGM fractional-cover bound.
  :meth:`CompiledRule.evaluate` dispatches eligible base plans here;
* ``_GroupExecutor`` runs a recursive stratum's delta iteration over
  *partitioned* deltas: the delta is grouped by join key once per round, each
  partition meets its probe bucket once, and derivations accumulate into
  per-key sets — turning ``len(partition) × len(bucket)`` row visits into a
  handful of C-level set operations.

Instrumentation contract
------------------------
The batch executor reproduces :class:`EvaluationStats` accounting *exactly*:
a partition of ``m`` frontier rows probing a bucket of ``b`` rows contributes
``m`` lookups and ``m*b`` examined tuples — the same totals as ``m``
row-at-a-time probes, just summed in one step — and produced counts are the
per-plan deduplicated head sets, exactly as the kernels record them.  The
differential harness pins interpreted == kernel == columnar stats totals on
every program family.  The leapfrog join is the one deliberate exception: it
*visits fewer tuples by design*, so its accounting is documented as its own
model (one lookup per seek, one examined tuple per candidate visited) and it
only ever replaces nonrecursive base plans, which no generated family
compiles into an eligible shape.

``REPRO_COLUMNAR`` (``off``/``0``/``false``/``no``) disables everything in
this module.  The default ``on`` is *adaptive*: the executor measures the
initial delta's partition fan-out and the probe views' bucket fan-out and
falls back to the kernel loop when partitions are too skinny to amortize the
batch machinery (chains).  ``force``/``always`` bypasses the prediction —
the differential harness uses it so the batch path is genuinely exercised on
workloads far too small to profit from it.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from itertools import repeat
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.relation import Relation, Row
from .flags import EngineFlag
from .instrumentation import active_profile
from .packing import pack_columns

__all__ = [
    "ColumnStore",
    "batch_hash_join",
    "columnar_enabled",
    "columnar_forced",
    "columnar_mode",
    "is_cyclic",
    "join",
    "leapfrog_join",
    "merge_join",
    "set_columnar_enabled",
    "wcoj_eligible",
]

#: the ``REPRO_COLUMNAR`` switch (see :mod:`repro.engine.flags`)
COLUMNAR_FLAG = EngineFlag("REPRO_COLUMNAR")


def columnar_enabled() -> bool:
    """``True`` when the engines may use columnar batch execution."""
    return COLUMNAR_FLAG.enabled()


def columnar_forced() -> bool:
    """``True`` when batch execution must bypass the adaptive size heuristic."""
    return COLUMNAR_FLAG.forced()


def set_columnar_enabled(enabled) -> None:
    """Force columnar execution on/off (or ``"force"``); ``None`` restores env."""
    COLUMNAR_FLAG.set(enabled)


def columnar_mode(enabled):
    """Temporarily force columnar execution (differential-testing hook)."""
    return COLUMNAR_FLAG.mode(enabled)


# ----------------------------------------------------------------------
# the column store
# ----------------------------------------------------------------------
class ColumnStore:
    """A relation decomposed into per-column value vectors.

    Columns are ``array('q')`` when every value is a machine int (the engine's
    interned representation) and plain lists otherwise, so the store works on
    raw user values too.  Like :class:`Relation`'s row indexes, the join-key
    access paths are built lazily and cached per column:

    * :meth:`hash_view` — ``key → [row indices]`` hash partitions;
    * :meth:`value_view` — ``key → {other-column values}`` (binary relations),
      the shape the batch executor probes;
    * :meth:`sorted_runs` — ``(sorted distinct keys, key → [row indices])``,
      the access path of :func:`merge_join` and the leapfrog join.
    """

    __slots__ = ("name", "arity", "count", "columns", "_hash_views", "_value_views", "_runs")

    def __init__(self, name: str, arity: int, columns: Sequence[Sequence], count: int) -> None:
        self.name = name
        self.arity = arity
        self.count = count
        self.columns = list(columns)
        self._hash_views: Dict[int, Dict] = {}
        self._value_views: Dict[Tuple[int, int], Dict] = {}
        self._runs: Dict[int, Tuple[list, Dict]] = {}

    # -- construction ---------------------------------------------------
    @classmethod
    def from_relation(cls, relation: Relation) -> "ColumnStore":
        """Decompose ``relation`` into columns (int columns when possible)."""
        rows = relation.rows()
        return cls.from_rows(relation.name, relation.arity, rows)

    @classmethod
    def from_rows(cls, name: str, arity: int, rows) -> "ColumnStore":
        count = len(rows)
        if arity == 0 or count == 0:
            return cls(name, arity, [[] for _ in range(arity)], count)
        columns: List[Sequence] = list(zip(*rows))
        int_only = all(
            all(type(value) is int for value in column) for column in columns
        )
        if int_only:
            columns = [array("q", column) for column in columns]
        else:
            columns = [list(column) for column in columns]
        return cls(name, arity, columns, count)

    @classmethod
    def from_packed_rows(cls, name: str, arity: int, count: int, packed: bytes) -> "ColumnStore":
        """Hydrate int columns straight from a snapshot/WAL code matrix.

        Rides :func:`repro.engine.packing.columns_from_packed`, so no
        per-tuple Python loop runs between the storage bytes and the column
        vectors.
        """
        from .packing import columns_from_packed

        if arity == 0:
            return cls(name, 0, [], count)
        return cls(name, arity, columns_from_packed(packed, arity, count), count)

    # -- conversion -----------------------------------------------------
    def to_relation(self) -> Relation:
        """The row-set view of the store (the round-trip identity)."""
        if self.arity == 0:
            rows: Set[Row] = {()} if self.count else set()
        else:
            rows = set(zip(*self.columns))
        return Relation.from_valid_rows(self.name, self.arity, rows)

    def rows(self) -> Set[Row]:
        if self.arity == 0:
            return {()} if self.count else set()
        return set(zip(*self.columns))

    def packed_rows(self) -> Tuple[int, bytes]:
        """``(count, bytes)`` in the shared storage codec (int columns only)."""
        return pack_columns(self.columns, self.count)

    # -- lazy access paths ----------------------------------------------
    def hash_view(self, column: int) -> Dict:
        """``key → [row indices]`` hash partitions of ``column`` (cached)."""
        view = self._hash_views.get(column)
        if view is None:
            view = {}
            setdefault = view.setdefault
            for index, key in enumerate(self.columns[column]):
                setdefault(key, []).append(index)
            self._hash_views[column] = view
        return view

    def value_view(self, key_column: int, value_column: int) -> Dict:
        """``key → {values}`` over a column pair (cached) — the probe shape."""
        view = self._value_views.get((key_column, value_column))
        if view is None:
            view = {}
            setdefault = view.setdefault
            for key, value in zip(self.columns[key_column], self.columns[value_column]):
                bucket = setdefault(key, None)
                if bucket is None:
                    view[key] = {value}
                else:
                    bucket.add(value)
            self._value_views[(key_column, value_column)] = view
        return view

    def sorted_runs(self, column: int) -> Tuple[list, Dict]:
        """``(sorted distinct keys, key → [row indices])`` for ``column``."""
        runs = self._runs.get(column)
        if runs is None:
            view = self.hash_view(column)
            runs = (sorted(view), view)
            self._runs[column] = runs
        return runs

    def has_sorted_runs(self, column: int) -> bool:
        return column in self._runs

    def row(self, index: int) -> Row:
        return tuple(column[index] for column in self.columns)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnStore({self.name}/{self.arity}, {self.count} rows)"


# ----------------------------------------------------------------------
# two-relation join primitives
# ----------------------------------------------------------------------
def batch_hash_join(
    left: ColumnStore,
    left_column: int,
    right: ColumnStore,
    right_column: int,
) -> List[Tuple[object, List[int], List[int]]]:
    """``(key, left row indices, right row indices)`` per matching key.

    The smaller side is hash-partitioned (or its cached view reused) and the
    larger side's partitions probe it — whole partitions meet at once, the
    batch analogue of a row-at-a-time hash probe.
    """
    left_view = left.hash_view(left_column)
    right_view = right.hash_view(right_column)
    if len(left_view) > len(right_view):
        probe, build = left_view, right_view
        flip = False
    else:
        probe, build = right_view, left_view
        flip = True
    matches = []
    build_get = build.get
    for key, probe_rows in probe.items():
        build_rows = build_get(key)
        if build_rows is None:
            continue
        if flip:
            matches.append((key, probe_rows, build_rows))
        else:
            matches.append((key, build_rows, probe_rows))
    if flip:
        # probe held the *right* view: swap back to (key, left, right)
        matches = [(key, rights, lefts) for key, lefts, rights in matches]
    return matches


def merge_join(
    left: ColumnStore,
    left_column: int,
    right: ColumnStore,
    right_column: int,
) -> List[Tuple[object, List[int], List[int]]]:
    """Sort-merge counterpart of :func:`batch_hash_join` (same output shape).

    Walks both sides' sorted runs in lockstep; preferable when the runs are
    already cached (an earlier join on the same key) or when key order of the
    output matters.
    """
    left_keys, left_groups = left.sorted_runs(left_column)
    right_keys, right_groups = right.sorted_runs(right_column)
    matches = []
    i = j = 0
    n_left, n_right = len(left_keys), len(right_keys)
    while i < n_left and j < n_right:
        lk, rk = left_keys[i], right_keys[j]
        if lk == rk:
            matches.append((lk, left_groups[lk], right_groups[rk]))
            i += 1
            j += 1
        elif lk < rk:
            i = bisect_left(left_keys, rk, i + 1)
        else:
            j = bisect_left(right_keys, lk, j + 1)
    return matches


def join(
    left: ColumnStore,
    left_column: int,
    right: ColumnStore,
    right_column: int,
) -> List[Tuple[object, List[int], List[int]]]:
    """Auto-selected join: merge when both sides' runs are cached, else hash."""
    if left.has_sorted_runs(left_column) and right.has_sorted_runs(right_column):
        return merge_join(left, left_column, right, right_column)
    return batch_hash_join(left, left_column, right, right_column)


# ----------------------------------------------------------------------
# cyclicity (GYO ear removal) and the worst-case-optimal join
# ----------------------------------------------------------------------
def is_cyclic(edges: Sequence[frozenset]) -> bool:
    """``True`` when the hypergraph is *not* acyclic under GYO ear removal.

    An edge is an ear when the variables it shares with the rest of the query
    all appear together in some single other edge; repeatedly removing ears
    reduces an acyclic hypergraph to nothing.  A triangle has no ear, so a
    residue remains and the query is cyclic — the shape where every binary
    join plan can materialize a super-linear intermediate.
    """
    remaining = [set(edge) for edge in edges if edge]
    changed = True
    while changed and len(remaining) > 1:
        changed = False
        for index, edge in enumerate(remaining):
            others = remaining[:index] + remaining[index + 1:]
            shared = {v for v in edge if any(v in other for other in others)}
            if not shared or any(shared <= other for other in others):
                remaining.pop(index)
                changed = True
                break
    return len(remaining) > 1


def wcoj_eligible(plan, relations) -> Optional[Tuple[Relation, ...]]:
    """The resolved body relations when ``plan`` should run the leapfrog join.

    Eligibility is deliberately narrow — the leapfrog join replaces binary
    plans only where they are asymptotically beatable:

    * at least three body atoms, every argument a variable, no variable
      repeated within an atom, no compile-time bindings, producible head;
    * the body hypergraph is cyclic (:func:`is_cyclic`) — acyclic bodies are
      handled optimally by the existing bound-first binary plans;
    * every body relation resolves and stores only machine ints (codes), so
      sorted runs are well ordered.
    """
    if not plan.producible or plan.initial_slots or len(plan.steps) < 3:
        return None
    edges = []
    for step in plan.steps:
        atom = plan.rule.body[step.atom_index]
        if step.const_cols or step.check_cols:
            return None
        edges.append(frozenset(atom.args))
        if len(edges[-1]) != len(atom.args):
            return None
    if not is_cyclic(edges):
        return None
    resolved = []
    for step in plan.steps:
        relation = relations.get(step.predicate)
        if relation is None:
            return None
        resolved.append(relation)
    from .domain import _relation_int_only

    if not all(_relation_int_only(relation) for relation in resolved):
        return None
    return tuple(resolved)


def _build_trie(relation: Relation, positions: Sequence[int]):
    """A sorted nested trie of ``relation`` keyed by ``positions`` in order.

    Every node is ``(sorted keys, key → child)``; leaf children are ``None``.
    """
    root: Dict = {}
    for row in relation.rows():
        node = root
        for position in positions[:-1]:
            node = node.setdefault(row[position], {})
        node[row[positions[-1]]] = None
    return _sort_trie(root)


def _sort_trie(node):
    if node is None:
        return None
    children = {key: _sort_trie(child) for key, child in node.items()}
    return (sorted(children), children)


def _leapfrog_intersect(key_lists: List[list], stats) -> List:
    """Sorted intersection of sorted key lists by leapfrogging seeks.

    Accounting: one lookup per seek (``bisect``), one examined tuple per
    candidate key visited — the leapfrog join's own model, distinct from the
    bucket-based accounting of the binary plans.
    """
    if any(not keys for keys in key_lists):
        return []
    if len(key_lists) == 1:
        if stats is not None:
            stats.record_lookup(len(key_lists[0]), restricted=True)
        return key_lists[0]
    lists = sorted(key_lists, key=len)
    smallest = lists[0]
    others = lists[1:]
    positions = [0] * len(others)
    out = []
    seeks = 0
    examined = 0
    for candidate in smallest:
        examined += 1
        member = True
        for which, keys in enumerate(others):
            index = bisect_left(keys, candidate, positions[which])
            seeks += 1
            positions[which] = index
            if index >= len(keys) or keys[index] != candidate:
                member = False
                break
        if member:
            out.append(candidate)
    if stats is not None:
        stats.lookups += seeks
        stats.tuples_examined += examined
    return out


def leapfrog_join(plan, resolved: Sequence[Relation], stats=None) -> Set[Row]:
    """Worst-case-optimal evaluation of an eligible (cyclic) body.

    Generic join with a global variable order: each variable's candidates are
    the leapfrog intersection of the sorted runs of every atom containing it
    (conditioned on the variables already bound, which — because atoms' tries
    are keyed in the global order — is always a trie prefix).  Total work is
    bounded by the AGM fractional edge cover of the body, so on e.g. the
    triangle query it examines ``O(N^{3/2})`` tuples where any binary plan
    examines ``Θ(N²)``.
    """
    order: List = []
    for step in plan.steps:
        for arg in plan.rule.body[step.atom_index].args:
            if arg not in order:
                order.append(arg)
    rank = {variable: index for index, variable in enumerate(order)}

    atoms = []
    for step, relation in zip(plan.steps, resolved):
        args = plan.rule.body[step.atom_index].args
        ordered = sorted(range(len(args)), key=lambda position: rank[args[position]])
        positions = [args[position] for position in ordered]
        atoms.append((positions, _build_trie(relation, ordered)))

    head_ops = plan.rule.head.args
    results: Set[Row] = set()
    binding: Dict = {}

    # per-atom stack of the trie node currently conditioned on the binding
    nodes = [[trie] for _variables, trie in atoms]

    def descend(level: int) -> None:
        if level == len(order):
            results.add(tuple(binding[arg] for arg in head_ops))
            return
        variable = order[level]
        key_lists = []
        involved = []
        for which, (variables, _trie) in enumerate(atoms):
            depth = len(nodes[which]) - 1
            if depth < len(variables) and variables[depth] == variable:
                node = nodes[which][-1]
                if node is None:
                    return
                key_lists.append(node[0])
                involved.append(which)
        if not involved:
            # variable introduced by no atom at this point: cannot happen for
            # connected eligible bodies, but guard against empty enumeration
            return
        for value in _leapfrog_intersect(key_lists, stats):
            binding[variable] = value
            for which in involved:
                node = nodes[which][-1]
                nodes[which].append(node[1][value])
            descend(level + 1)
            for which in involved:
                nodes[which].pop()
        binding.pop(variable, None)

    descend(0)
    return results


# ----------------------------------------------------------------------
# the batch delta-round executor
# ----------------------------------------------------------------------
#: batch-plan templates (the delta-variant shapes the executor vectorizes)
_LINEAR = "linear"        # delta scan + one expand probe (+ optional member)
_FILTER = "filter"        # delta scan + one unary membership probe
_TWOSIDED = "twosided"    # delta scan + two expand probes (sg-style)


class _BatchPlan:
    """One compiled delta variant analysed into a vectorizable template.

    ``key_col`` is the delta column the executor partitions by (the expand
    probe's bound slot); ``head_spec`` maps the two head positions onto the
    symbolic slots ``"K"`` (partition key), ``"P"`` (the other delta column)
    and ``"E"``/``"E2"`` (the expand steps' new variables).
    """

    __slots__ = (
        "plan", "delta_predicate", "head", "template", "key_col",
        "expand1", "expand2", "member", "head_spec",
    )

    def __init__(self, plan, delta_predicate, head, template, key_col,
                 expand1, expand2, member, head_spec):
        self.plan = plan
        self.delta_predicate = delta_predicate
        self.head = head
        self.template = template
        self.key_col = key_col
        self.expand1 = expand1      # (predicate, probe position, store position)
        self.expand2 = expand2
        self.member = member        # ("EP"|"EK", predicate, key position, value position)
        self.head_spec = head_spec


def _analyze_plan(plan, occurrence, group_set) -> Optional[_BatchPlan]:
    """Classify a delta variant into a batch template, or ``None``.

    The templates cover linear recursive rules over binary relations — one
    unrestricted delta scan first, then expand/membership probes against
    non-group relations.  Anything else (arity ≠ 2, constants, repeated
    variables, group predicates probed mid-round, >2 probe steps) falls back
    to the kernel loop, which handles the general case at identical stats.
    """
    if not plan.producible or plan.initial_slots:
        return None
    steps = plan.steps
    if not steps or len(steps) > 3:
        return None
    scan = steps[0]
    if (scan.atom_index != occurrence or scan.probe_columns or scan.const_cols
            or scan.check_cols or scan.store_cols != ((0, 0), (1, 1))):
        return None
    if len(plan.head_ops) != 2 or any(is_const for is_const, _ in plan.head_ops):
        return None

    expands = []   # (predicate, key slot, probe position, store position)
    members = []   # AtomStep
    next_store = 2
    for step in steps[1:]:
        if step.predicate in group_set or step.const_cols or step.check_cols:
            return None
        if step.store_cols:
            if (len(step.store_cols) != 1 or len(step.probe_columns) != 1
                    or step.store_cols[0][1] != next_store):
                return None
            (probe_pos,) = step.probe_columns
            is_const, key_slot = step.key_ops[0]
            if is_const:
                return None
            store_pos = step.store_cols[0][0]
            if {probe_pos, store_pos} != {0, 1}:
                return None
            expands.append((step.predicate, key_slot, probe_pos, store_pos))
            next_store += 1
        else:
            members.append(step)

    head_slots = tuple(slot for _is_const, slot in plan.head_ops)
    if head_slots[0] == head_slots[1]:
        return None

    def symbol(slot, key_col):
        if slot == key_col:
            return "K"
        if slot == 1 - key_col:
            return "P"
        if slot == 2:
            return "E"
        if slot == 3:
            return "E2"
        return None

    delta_predicate = scan.predicate
    head = plan.rule.head.predicate

    if len(expands) == 2 and not members:
        (pred1, key1, probe1, store1), (pred2, key2, probe2, store2) = expands
        if {key1, key2} != {0, 1}:
            return None
        key_col = key1
        head_spec = tuple(symbol(slot, key_col) for slot in head_slots)
        if head_spec not in (("E", "E2"), ("E2", "E")):
            return None
        return _BatchPlan(plan, delta_predicate, head, _TWOSIDED, key_col,
                          (pred1, probe1, store1), (pred2, probe2, store2),
                          None, head_spec)

    if len(expands) == 1:
        pred1, key1, probe1, store1 = expands[0]
        if key1 not in (0, 1):
            return None
        key_col = key1
        head_spec = tuple(symbol(slot, key_col) for slot in head_slots)
        if None in head_spec or "E2" in head_spec:
            return None
        member = None
        if members:
            if len(members) > 1:
                return None
            step = members[0]
            if step.probe_columns != (0, 1) or len(step.key_ops) != 2:
                return None
            slots = [slot for _is_const, slot in step.key_ops]
            if any(is_const for is_const, _ in step.key_ops):
                return None
            e_positions = [pos for pos, slot in zip(step.probe_columns, slots) if slot == 2]
            if len(e_positions) != 1:
                return None
            e_pos = e_positions[0]
            other_pos = 1 - e_pos
            other_slot = slots[other_pos]
            if other_slot == 1 - key_col:
                if head_spec != ("E", "P"):
                    return None
                member = ("EP", step.predicate, e_pos, other_pos)
            elif other_slot == key_col:
                member = ("EK", step.predicate, e_pos, other_pos)
            else:
                return None
        return _BatchPlan(plan, delta_predicate, head, _LINEAR, key_col,
                          (pred1, probe1, store1), None, member, head_spec)

    if not expands and len(members) == 1 and len(steps) == 2:
        step = members[0]
        if step.probe_columns != (0,) or len(step.key_ops) != 1:
            return None
        is_const, key_slot = step.key_ops[0]
        if is_const or key_slot not in (0, 1):
            return None
        key_col = key_slot
        head_spec = tuple(symbol(slot, key_col) for slot in head_slots)
        if set(head_spec) != {"K", "P"}:
            return None
        return _BatchPlan(plan, delta_predicate, head, _FILTER, key_col,
                          None, None, ("K1", step.predicate, 0, None), head_spec)

    return None


def build_group_executor(group, delta_plans, relations, derived, current):
    """A ``_GroupExecutor`` for one recursive stratum, or ``None``.

    ``None`` means some delta variant does not fit a batch template (or a
    referenced relation is missing / a group predicate is not binary); the
    caller then runs the ordinary kernel loop.
    """
    if any(derived[predicate].arity != 2 for predicate in group):
        return None
    group_set = set(group)
    batch_plans = []
    for delta_predicate, occurrence, plan in delta_plans:
        analysed = _analyze_plan(plan, occurrence, group_set)
        if analysed is None:
            return None
        for reference in (analysed.expand1, analysed.expand2):
            if reference is not None and reference[0] not in relations:
                return None
        if analysed.member is not None and analysed.member[1] not in relations:
            return None
        batch_plans.append(analysed)
    if not batch_plans:
        return None
    return _GroupExecutor(group, batch_plans, relations, derived, current)


class _GroupExecutor:
    """Partitioned set-at-a-time execution of one stratum's delta iteration.

    State is held column-partitioned: ``derived_parts[p]`` and
    ``current_parts[p]`` map a relation's first column to the set of second
    columns.  Each round partitions every plan's delta by its join key,
    meets each partition with its probe bucket once, accumulates derivations
    into per-key output sets, and merges them into the derived state at the
    round boundary — exactly the rhythm (and exactly the instrumentation) of
    the kernel loop, minus the per-row dispatch.
    """

    #: the score below which the adaptive decision falls back to the kernel
    #: loop (average partition × bucket fan-out ~1 means batching is pure
    #: overhead)
    PROFIT_THRESHOLD = 2.0

    def __init__(self, group, batch_plans, relations, derived, current):
        self.group = list(group)
        self.batch_plans = batch_plans
        #: the stratum's position in evaluation order, stamped by the
        #: semi-naive driver so profile iteration samples can name it
        self.stratum_index = 0
        self.derived = derived
        self.derived_parts = {p: _partition(derived[p].rows()) for p in group}
        # at stratum entry the delta IS the derived state (pre-existing rows
        # plus the base-rule results, both added to each side), so the delta
        # partition is a shallow copy — and because the round boundary only
        # ever *replaces* the current partition while *growing* the derived
        # buckets after the last read, sharing the initial bucket sets is safe
        self.current_parts = {
            p: dict(self.derived_parts[p])
            if len(current[p]) == len(derived[p])
            else _partition(current[p].rows())
            for p in group
        }
        self.sizes = {p: len(current[p]) for p in group}
        self._transposed: Dict[str, Dict] = {}
        # probe views over the non-group relations, built once per fixpoint
        # (EDB relations are static for the group's duration)
        self._views: Dict[Tuple[str, int, int], Dict] = {}
        self._value_sets: Dict[str, Set] = {}
        self._view_sources = relations
        for bp in batch_plans:
            for reference in (bp.expand1, bp.expand2):
                if reference is not None:
                    predicate, probe_pos, store_pos = reference
                    self._view(predicate, probe_pos, store_pos)
            if bp.member is not None and bp.member[0] != "K1":
                _kind, predicate, key_pos, value_pos = bp.member
                self._view(predicate, key_pos, value_pos)
            elif bp.member is not None:
                self._unary_set(bp.member[1])

    def _view(self, predicate, key_pos, value_pos) -> Dict:
        """``key → {values}`` probe view of a non-group relation (cached).

        The same shape :meth:`ColumnStore.value_view` serves, built in one
        pass straight from the row set — the executor's relations are probed
        through exactly one (key, value) column pair each, so decomposing
        into full column vectors first would be pure setup cost.
        """
        cache_key = (predicate, key_pos, value_pos)
        view = self._views.get(cache_key)
        if view is None:
            view = {}
            setdefault = view.setdefault
            for row in self._view_sources[predicate].rows():
                key = row[key_pos]
                bucket = setdefault(key, None)
                if bucket is None:
                    view[key] = {row[value_pos]}
                else:
                    bucket.add(row[value_pos])
            self._views[cache_key] = view
        return view

    def _unary_set(self, predicate) -> Set:
        values = self._value_sets.get(predicate)
        if values is None:
            values = {row[0] for row in self._view_sources[predicate].rows()}
            self._value_sets[predicate] = values
        return values

    def _oriented(self, predicate, key_col) -> Dict:
        if key_col == 0:
            return self.current_parts[predicate]
        transposed = self._transposed.get(predicate)
        if transposed is None:
            transposed = {}
            setdefault = transposed.setdefault
            for key, values in self.current_parts[predicate].items():
                for value in values:
                    setdefault(value, set()).add(key)
            self._transposed[predicate] = transposed
        return transposed

    # -- the adaptive decision -------------------------------------------
    def looks_profitable(self) -> bool:
        """Predict whether batching beats the kernel loop on this workload."""
        return self.profit_score() >= self.PROFIT_THRESHOLD

    def profit_score(self) -> float:
        """The adaptive profitability score driving :meth:`looks_profitable`.

        Batch execution amortizes per-probe overhead across a partition ×
        bucket block; when both fan-outs are ~1 (chains) the blocks are
        single rows and the batch machinery is pure overhead.  The score is
        the largest ``avg partition size × avg probe bucket size`` over the
        group's plans, measured on the initial delta.
        """
        best = 0.0
        for bp in self.batch_plans:
            total = self.sizes.get(bp.delta_predicate, 0)
            if not total:
                continue
            parts = self._oriented(bp.delta_predicate, bp.key_col)
            if not parts:
                continue
            avg_part = total / len(parts)
            if bp.expand1 is not None:
                predicate, probe_pos, store_pos = bp.expand1
                view = self._view(predicate, probe_pos, store_pos)
                relation = self._view_sources[predicate]
                avg_bucket = len(relation) / len(view) if view else 0.0
            else:
                avg_bucket = 1.0
            score = avg_part * avg_bucket
            if score > best:
                best = score
        return best

    # -- the fixpoint ----------------------------------------------------
    def run(self, stats) -> None:
        """Iterate the stratum to fixpoint and write back into ``derived``.

        Reproduces the kernel loop's :class:`EvaluationStats` totals exactly:
        see the per-template passes for the partition-level accounting
        identities.
        """
        group = self.group
        touched = {p: False for p in group}
        # one plan per head predicate (the common case) lets the round-end
        # pass count the plan's produced total while it diffs, saving a
        # whole extra sweep over the output partitions
        plan_counts: Dict[str, int] = {}
        for bp in self.batch_plans:
            plan_counts[bp.head] = plan_counts.get(bp.head, 0) + 1
        profile = active_profile()
        iteration = 0
        while True:
            total = sum(self.sizes[p] for p in group)
            if not total:
                break
            stats.record_iteration()
            stats.record_state(total, total * 2)
            if profile is not None:
                iteration += 1
                round_started = perf_counter()
            round_new: Dict[str, Dict] = {}
            deferred: Dict[str, bool] = {}
            for bp in self.batch_plans:
                if not self.sizes.get(bp.delta_predicate, 0):
                    continue
                defer = plan_counts[bp.head] == 1
                out, produced = self._run_plan(bp, stats, count=not defer)
                if not defer:
                    stats.record_produced(produced)
                deferred[bp.head] = defer
                merged = round_new.get(bp.head)
                if merged is None:
                    round_new[bp.head] = out
                else:
                    merged_get = merged.get
                    for key, values in out.items():
                        existing = merged_get(key)
                        if existing is None:
                            merged[key] = values
                        else:
                            existing.update(values)
            self._transposed.clear()
            for predicate in group:
                fresh = {}
                added = 0
                produced = 0
                derived_parts = self.derived_parts[predicate]
                derived_get = derived_parts.get
                for key, values in round_new.get(predicate, {}).items():
                    produced += len(values)
                    old = derived_get(key)
                    if old is not None:
                        values.difference_update(old)
                        if not values:
                            continue
                        old.update(values)
                    else:
                        derived_parts[key] = values
                    fresh[key] = values
                    added += len(values)
                if deferred.get(predicate):
                    stats.record_produced(produced)
                if added:
                    stats.record_produced(added)
                    touched[predicate] = True
                self.current_parts[predicate] = fresh
                self.sizes[predicate] = added
            if profile is not None:
                profile.record_iteration(
                    self.stratum_index, iteration, total, perf_counter() - round_started
                )
        for predicate in group:
            if touched[predicate]:
                rows: Set[Row] = set()
                update = rows.update
                for key, values in self.derived_parts[predicate].items():
                    update(zip(repeat(key), values))
                self.derived[predicate].union_update(rows)

    def _run_plan(self, bp: _BatchPlan, stats, count: bool = True) -> Tuple[Dict, int]:
        """One plan application over its current delta: ``(out, produced)``.

        ``out`` maps head column 0 → set of head column 1 (freshly allocated
        sets only, so callers may merge and diff in place); ``produced`` is
        the size of the plan's deduplicated head set, the figure the kernels
        feed to :meth:`EvaluationStats.record_produced` — or 0 when
        ``count`` is false and the caller counts during its own sweep.

        Accounting identities: the delta scan is 1 unrestricted lookup
        examining all ``n`` delta rows; a partition of ``m`` rows meeting a
        probe bucket of ``b`` rows is ``m`` lookups (every delta row probes
        exactly once per probe step, so those sum to ``n`` per step and are
        hoisted out of the loop) and ``m*b`` examined tuples; a membership
        step is one lookup per (frontier row × bucket row) combination and
        one examined tuple per combination that is present.
        """
        n = self.sizes[bp.delta_predicate]
        parts = self._oriented(bp.delta_predicate, bp.key_col)
        lk = 1 + n      # the unrestricted delta scan, plus one probe per
        ur = 1          # delta row at the first probe step
        ex = n          # the scan examines every delta row
        out: Dict = {}
        out_get = out.get

        if bp.template is _FILTER:
            values = self._unary_set(bp.member[1])
            key_first = bp.head_spec[0] == "K"
            for key, part in parts.items():
                if key not in values:
                    continue
                m = len(part)
                ex += m
                if key_first:
                    existing = out_get(key)
                    if existing is None:
                        out[key] = set(part)
                    else:
                        existing.update(part)
                else:
                    for payload in part:
                        existing = out_get(payload)
                        if existing is None:
                            out[payload] = {key}
                        else:
                            existing.add(key)

        elif bp.template is _TWOSIDED:
            view1 = self._view(*bp.expand1)
            view2 = self._view(*bp.expand2)
            view1_get = view1.get
            view2_get = view2.get
            first_is_e = bp.head_spec[0] == "E"
            for key, part in parts.items():
                bucket = view1_get(key)
                if not bucket:
                    continue
                m = len(part)
                nb = len(bucket)
                ex += m * nb
                lk += m * nb
                reachable: Set = set()
                bucket2_total = 0
                for payload in part:
                    bucket2 = view2_get(payload)
                    if bucket2:
                        bucket2_total += len(bucket2)
                        reachable.update(bucket2)
                ex += nb * bucket2_total
                if not reachable:
                    continue
                keys, values = (bucket, reachable) if first_is_e else (reachable, bucket)
                for left in keys:
                    existing = out_get(left)
                    if existing is None:
                        out[left] = set(values)
                    else:
                        existing.update(values)

        else:  # _LINEAR (with optional membership step)
            view = self._view(*bp.expand1)
            view_get = view.get
            member = bp.member
            if member is None and bp.head_spec == ("E", "P"):
                # the transitive-closure shape — inlined, it is the hottest
                # loop in the module
                for key, part in parts.items():
                    bucket = view_get(key)
                    if not bucket:
                        continue
                    ex += len(part) * len(bucket)
                    for expanded in bucket:
                        existing = out_get(expanded)
                        if existing is None:
                            out[expanded] = set(part)
                        else:
                            existing.update(part)
            elif member is None:
                update = _LINEAR_UPDATES[bp.head_spec]
                for key, part in parts.items():
                    bucket = view_get(key)
                    if not bucket:
                        continue
                    ex += len(part) * len(bucket)
                    update(out, out_get, key, part, bucket)
            elif member[0] == "EP":
                mview_get = self._view(member[1], member[2], member[3]).get
                for key, part in parts.items():
                    bucket = view_get(key)
                    if not bucket:
                        continue
                    m = len(part)
                    nb = len(bucket)
                    ex += m * nb
                    lk += m * nb
                    for expanded in bucket:
                        allowed = mview_get(expanded)
                        if not allowed:
                            continue
                        survivors = part & allowed
                        ex += len(survivors)
                        if not survivors:
                            continue
                        existing = out_get(expanded)
                        if existing is None:
                            out[expanded] = survivors
                        else:
                            existing.update(survivors)
            else:  # "EK"
                mview_get = self._view(member[1], member[2], member[3]).get
                update = _LINEAR_UPDATES[bp.head_spec]
                empty: Set = set()
                for key, part in parts.items():
                    bucket = view_get(key)
                    if not bucket:
                        continue
                    m = len(part)
                    nb = len(bucket)
                    ex += m * nb
                    lk += m * nb
                    passing = [e for e in bucket if key in (mview_get(e) or empty)]
                    ex += m * len(passing)
                    if passing:
                        update(out, out_get, key, part, passing)

        stats.lookups += lk
        stats.unrestricted_lookups += ur
        stats.tuples_examined += ex
        produced = sum(map(len, out.values())) if count else 0
        return out, produced


def _update_ep(out, out_get, key, part, bucket):
    for expanded in bucket:
        existing = out_get(expanded)
        if existing is None:
            out[expanded] = set(part)
        else:
            existing.update(part)


def _update_pe(out, out_get, key, part, bucket):
    for payload in part:
        existing = out_get(payload)
        if existing is None:
            out[payload] = set(bucket)
        else:
            existing.update(bucket)


def _update_ek(out, out_get, key, part, bucket):
    for expanded in bucket:
        existing = out_get(expanded)
        if existing is None:
            out[expanded] = {key}
        else:
            existing.add(key)


def _update_ke(out, out_get, key, part, bucket):
    existing = out_get(key)
    if existing is None:
        out[key] = set(bucket)
    else:
        existing.update(bucket)


def _update_kp(out, out_get, key, part, bucket):
    existing = out_get(key)
    if existing is None:
        out[key] = set(part)
    else:
        existing.update(part)


def _update_pk(out, out_get, key, part, bucket):
    for payload in part:
        existing = out_get(payload)
        if existing is None:
            out[payload] = {key}
        else:
            existing.add(key)


#: head-spec → accumulate function for the linear template
_LINEAR_UPDATES = {
    ("E", "P"): _update_ep,
    ("P", "E"): _update_pe,
    ("E", "K"): _update_ek,
    ("K", "E"): _update_ke,
    ("K", "P"): _update_kp,
    ("P", "K"): _update_pk,
}


def _partition(rows) -> Dict:
    """Rows of a binary relation partitioned by column 0 → set of column 1."""
    parts: Dict = {}
    setdefault = parts.setdefault
    for key, value in rows:
        bucket = setdefault(key, None)
        if bucket is None:
            parts[key] = {value}
        else:
            bucket.add(value)
    return parts
