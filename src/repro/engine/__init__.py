"""Evaluation engine: instrumented relational algebra, rule evaluation, fixpoints."""

from .algebra import difference, join, project, scan, select, semijoin, union
from .compile import (
    CompiledRule,
    PlanCache,
    compile_delta_variants,
    compile_program_rules,
    compile_rule,
)
from .cq_eval import (
    as_relation,
    evaluate_body,
    evaluate_body_project,
    evaluate_rule,
    plan_order,
)
from .instrumentation import EvaluationStats
from .naive import naive_evaluate, naive_query
from .query import QueryResult, SelectionQuery, answer, as_selection_query
from .seminaive import (
    group_insert_closure,
    overlay_relations,
    propagate_insertions,
    seminaive_evaluate,
    seminaive_query,
)
from .strata import evaluation_strata, strongly_connected_components

__all__ = [
    "CompiledRule",
    "EvaluationStats",
    "PlanCache",
    "QueryResult",
    "SelectionQuery",
    "answer",
    "as_relation",
    "as_selection_query",
    "compile_delta_variants",
    "compile_program_rules",
    "compile_rule",
    "difference",
    "evaluate_body",
    "evaluate_body_project",
    "evaluate_rule",
    "evaluation_strata",
    "group_insert_closure",
    "join",
    "naive_evaluate",
    "naive_query",
    "overlay_relations",
    "plan_order",
    "project",
    "propagate_insertions",
    "scan",
    "select",
    "semijoin",
    "seminaive_evaluate",
    "seminaive_query",
    "strongly_connected_components",
    "union",
]
