"""Evaluation engine: instrumented relational algebra, rule evaluation, fixpoints."""

from .algebra import difference, join, project, scan, select, semijoin, union
from .compile import (
    CompiledRule,
    PlanCache,
    compile_delta_variants,
    compile_program_rules,
    compile_rule,
)
from .cq_eval import (
    as_relation,
    evaluate_body,
    evaluate_body_project,
    evaluate_rule,
    plan_order,
)
from .domain import Domain, interning_enabled, interning_mode, set_interning_enabled
from .instrumentation import (
    EvaluationStats,
    active_deadline,
    check_deadline,
    evaluation_deadline,
)
from .columnar import (
    ColumnStore,
    columnar_enabled,
    columnar_mode,
    leapfrog_join,
    set_columnar_enabled,
)
from .kernels import kernel_mode, kernels_enabled, set_kernels_enabled
from .naive import naive_evaluate, naive_query
from .query import QueryResult, SelectionQuery, answer, as_selection_query
from .seminaive import (
    group_insert_closure,
    overlay_relations,
    propagate_insertions,
    seminaive_evaluate,
    seminaive_query,
)
from .strata import evaluation_strata, strongly_connected_components

__all__ = [
    "ColumnStore",
    "CompiledRule",
    "Domain",
    "EvaluationStats",
    "PlanCache",
    "QueryResult",
    "SelectionQuery",
    "active_deadline",
    "answer",
    "as_relation",
    "as_selection_query",
    "check_deadline",
    "columnar_enabled",
    "columnar_mode",
    "compile_delta_variants",
    "compile_program_rules",
    "compile_rule",
    "difference",
    "evaluate_body",
    "evaluate_body_project",
    "evaluate_rule",
    "evaluation_deadline",
    "evaluation_strata",
    "group_insert_closure",
    "interning_enabled",
    "interning_mode",
    "join",
    "kernel_mode",
    "kernels_enabled",
    "leapfrog_join",
    "naive_evaluate",
    "naive_query",
    "overlay_relations",
    "plan_order",
    "project",
    "propagate_insertions",
    "scan",
    "select",
    "semijoin",
    "seminaive_evaluate",
    "seminaive_query",
    "set_columnar_enabled",
    "set_interning_enabled",
    "set_kernels_enabled",
    "strongly_connected_components",
    "union",
]
