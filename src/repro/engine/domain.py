"""The interned value domain — dense int codes for every stored value.

Fixpoint evaluation spends most of its time hashing and comparing tuples:
probe keys into indexes, derived rows into ``seen`` sets, delta rows into
buffers.  With arbitrary user values (strings, floats, mixed tuples) every
one of those operations re-hashes Python objects.  A :class:`Domain` interns
each distinct value to a dense ``int`` once, at the boundary where relations
enter the engine, so the entire fixpoint — index keys, equality checks, set
membership — runs on machine-int tuples; the codes are decoded back to the
original user values only when derived relations leave the engine (the
``QueryResult`` / ``Session`` boundary).

Interning preserves set semantics exactly: two values receive the same code
precisely when Python equality (the same equality the plain tuple-set storage
uses) considers them equal, and the decoder returns the first-seen
representative, just as ``set.add`` keeps the first-inserted element.

The ``REPRO_INTERN`` environment variable (``off``/``0``/``false``/``no``)
disables interning — the differential harness uses it, together with
``REPRO_KERNELS``, to assert interpreted == kernel == interned results tuple
for tuple.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional

from ..datalog.relation import Relation, Row, Value
from .compile import AtomStep, CompiledRule
from .flags import EngineFlag

__all__ = [
    "Domain",
    "domain_for",
    "encode_program_relations",
    "engine_relations",
    "intern_plan",
    "intern_plans",
    "interning_enabled",
    "interning_mode",
    "set_interning_enabled",
]

#: the ``REPRO_INTERN`` switch (see :mod:`repro.engine.flags`)
INTERN_FLAG = EngineFlag("REPRO_INTERN")


def interning_enabled() -> bool:
    """``True`` when the fixpoint engines should evaluate over interned ints."""
    return INTERN_FLAG.enabled()


def set_interning_enabled(enabled: Optional[bool]) -> None:
    """Force interning on/off; ``None`` restores the ``REPRO_INTERN`` switch."""
    INTERN_FLAG.set(enabled)


def interning_mode(enabled: Optional[bool]):
    """Temporarily force interning on or off (differential-testing hook)."""
    return INTERN_FLAG.mode(enabled)


class Domain:
    """A bidirectional value ↔ dense-int interner."""

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: Dict[Value, int] = {}
        self._values: List[Value] = []

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------
    def intern(self, value: Value) -> int:
        """The dense code for ``value``, allocating one on first sight."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def intern_row(self, row: Row) -> Row:
        """The row with every value replaced by its code."""
        intern = self.intern
        return tuple(intern(value) for value in row)

    def encode_relation(self, relation: Relation) -> Relation:
        """An int-row copy of ``relation`` (same name and arity)."""
        intern = self.intern
        return Relation.from_valid_rows(
            relation.name,
            relation.arity,
            {tuple(map(intern, row)) for row in relation.rows()},
        )

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------
    def decode(self, code: int) -> Value:
        """The original value behind ``code``."""
        return self._values[code]

    def decode_row(self, row: Row) -> Row:
        """The row with every code replaced by its original value."""
        values = self._values
        return tuple(values[code] for code in row)

    def decode_relation(self, relation: Relation) -> Relation:
        """A user-value copy of an int-row ``relation``."""
        getter = self._values.__getitem__
        return Relation.from_valid_rows(
            relation.name,
            relation.arity,
            {tuple(map(getter, row)) for row in relation.rows()},
        )

    # ------------------------------------------------------------------
    # persistence (the durable storage layer's dictionary hooks)
    # ------------------------------------------------------------------
    def export_values(self, start: int = 0) -> List[Value]:
        """The interned values with codes ``>= start``, in code order.

        The storage layer persists the dictionary incrementally: a WAL
        record carries exactly the values its batch interned (``start`` =
        the dictionary size before encoding the batch), and a snapshot
        carries the whole dictionary (``start = 0``).
        """
        return self._values[start:]

    def extend_values(self, values: Iterable[Value]) -> None:
        """Re-register persisted values in code order (the recovery path).

        Each value receives the next dense code, exactly as the original
        :meth:`intern` calls did; a value that is already interned would
        shift every later code, so it raises :class:`ValueError` — recovery
        treats that as a corrupt dictionary, not a soft condition.
        """
        for value in values:
            code = len(self._values)
            existing = self._codes.setdefault(value, code)
            if existing != code:
                raise ValueError(
                    f"domain value {value!r} is already interned at code {existing}"
                )
            self._values.append(value)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Value) -> bool:
        return value in self._codes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Domain({len(self._values)} values)"


#: relation → (mutation version at scan time, all-int verdict).  Memoizes
#: the :func:`domain_for` scan so repeated evaluations over the same
#: relations (a query stream, the serving layer, the differential harness)
#: pay it once.  Keyed on the relation's ``version`` counter, so *every*
#: effective mutation invalidates — including the len-preserving ones the
#: previous row-count key missed (a stale verdict was safe either way, but
#: the counter makes the cache exact); weak keys let dropped relations
#: leave the cache.
_int_only_cache: "weakref.WeakKeyDictionary[Relation, tuple]" = weakref.WeakKeyDictionary()


def _relation_int_only(relation: Relation) -> bool:
    cached = _int_only_cache.get(relation)
    version = relation.version
    if cached is not None and cached[0] == version:
        return cached[1]
    verdict = all(type(value) is int for row in relation.rows() for value in row)
    _int_only_cache[relation] = (version, verdict)
    return verdict


def domain_for(program, database) -> Optional[Domain]:
    """A fresh :class:`Domain` when interning is enabled *and* would help.

    When every value stored under the program's predicates is already a
    machine int, the encoding is the identity map: the fixpoint would hash
    exactly the same ints, and the encode/decode passes would be pure
    overhead.  Such databases (most benchmark graph workloads) evaluate raw;
    the first non-int value anywhere makes the whole evaluation interned.
    """
    if not interning_enabled():
        return None
    for name in program.predicates():
        if database.has_relation(name) and not _relation_int_only(database.relation(name)):
            return Domain()
    return None


def encode_program_relations(program, database, domain: Domain) -> Dict[str, Relation]:
    """Int-row relations for every program predicate stored in ``database``.

    Only predicates the program can actually read are encoded — rules mention
    nothing else, so unrelated relations never pay the interning pass.

    The encoding is rebuilt per evaluation call by design: caching encoded
    *rows* across calls requires invalidation on every mutation (unlike the
    :func:`_relation_int_only` verdict, which is safe when stale).
    ``Relation.version`` now makes such a cache sound; it is left unbuilt
    because the serving layer (:mod:`repro.service`) already amortizes
    repeated evaluations at a higher level — the epoch result cache — where
    one hit skips the entire evaluation, not just the encode pass.
    """
    return {
        name: domain.encode_relation(database.relation(name))
        for name in program.predicates()
        if database.has_relation(name)
    }


def engine_relations(program, database):
    """``(domain, name → relation)`` for one evaluation over ``database``.

    The shared entry boundary of the fixpoint engines and the counting
    baseline: pick the interning decision (:func:`domain_for`), then hand
    back either the encoded relation map or the raw stored relations.
    """
    domain = domain_for(program, database)
    if domain is not None:
        return domain, encode_program_relations(program, database, domain)
    return None, {relation.name: relation for relation in database.relations()}


def intern_plan(plan: CompiledRule, domain: Domain) -> CompiledRule:
    """``plan`` with its embedded constants replaced by their domain codes.

    A compiled plan bakes rule constants into probe signatures and head
    projections; evaluating it against encoded relations requires those
    constants in code space too.  Everything structural (join order, slots,
    checks) carries over unchanged, so instrumentation counts are identical.
    """
    steps = tuple(
        AtomStep(
            step.atom_index,
            step.predicate,
            tuple((position, domain.intern(value)) for position, value in step.const_cols),
            step.bound_cols,
            step.check_cols,
            step.store_cols,
        )
        for step in plan.steps
    )
    head_ops = tuple(
        (True, domain.intern(value)) if is_const else (is_const, value)
        for is_const, value in plan.head_ops
    )
    return CompiledRule(
        plan.rule,
        plan.order,
        steps,
        head_ops,
        plan.producible,
        plan.initial_slots,
        plan.slot_count,
    )


def intern_plans(plans, domain: Optional[Domain]):
    """Intern a batch of plans; passthrough when ``domain`` is ``None``."""
    if domain is None:
        return plans
    return [intern_plan(plan, domain) for plan in plans]
