"""Evaluation instrumentation.

The point of the paper's Section 4 is not only *what* the one-sided
algorithms compute but *how* they compute it:

* **Property 1** — simple termination conditions (``while carry not empty``),
* **Property 2** — minimal state (only ``seen`` is remembered),
* **Property 3** — no unrestricted lookups on nonrecursive relations.

:class:`EvaluationStats` gives every evaluation strategy in the library a
common vocabulary of counters so the benchmark harness can report those
properties side by side: tuples examined (retrieved from storage), tuples
produced, join probes, unrestricted lookups, fixpoint iterations, and the
peak size of the state the algorithm keeps between iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class EvaluationStats:
    """Counters accumulated during one evaluation run."""

    #: tuples retrieved from stored relations (after index restriction)
    tuples_examined: int = 0
    #: tuples inserted into derived relations / carry / seen / answers
    tuples_produced: int = 0
    #: number of index probes / scans issued against stored relations
    lookups: int = 0
    #: lookups issued with no bound column at all ("unrestricted", Property 3)
    unrestricted_lookups: int = 0
    #: fixpoint / while-loop iterations (Property 1)
    iterations: int = 0
    #: join plans compiled (engine v2 compiles once per fixpoint, not per iteration)
    plans_compiled: int = 0
    #: peak number of tuples kept as inter-iteration state (Property 2)
    peak_state_tuples: int = 0
    #: sum over state relations of (arity of the relation), at the peak
    peak_state_columns: int = 0
    #: tuples added to a materialized view by incremental maintenance
    tuples_inserted: int = 0
    #: tuples removed from a materialized view by incremental maintenance
    #: (DRed counts its whole overestimate here; the put-back phase counts
    #: reinstated tuples under ``tuples_rederived``)
    tuples_deleted: int = 0
    #: tuples put back by DRed rederivation after an over-deletion
    tuples_rederived: int = 0
    #: wall-clock seconds, when measured through :meth:`timed`
    elapsed_seconds: float = 0.0
    #: free-form per-strategy extras (e.g. "magic_rules", "carry_arity")
    extra: Dict[str, float] = field(default_factory=dict)

    _started_at: Optional[float] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------
    def record_lookup(self, examined: int, restricted: bool) -> None:
        """Record one probe against a stored relation."""
        self.lookups += 1
        if not restricted:
            self.unrestricted_lookups += 1
        self.tuples_examined += examined

    def record_produced(self, count: int = 1) -> None:
        """Record tuples added to a derived relation."""
        self.tuples_produced += count

    def record_iteration(self) -> None:
        """Record one pass of the outer fixpoint / while loop."""
        self.iterations += 1

    def record_plans_compiled(self, count: int = 1) -> None:
        """Record join plans compiled for a fixpoint (engine-v2 bookkeeping)."""
        self.plans_compiled += count

    def record_inserted(self, count: int = 1) -> None:
        """Record tuples a maintenance step added to a materialized view."""
        self.tuples_inserted += count

    def record_deleted(self, count: int = 1) -> None:
        """Record tuples a maintenance step removed from a materialized view."""
        self.tuples_deleted += count

    def record_rederived(self, count: int = 1) -> None:
        """Record tuples DRed put back after an over-deletion."""
        self.tuples_rederived += count

    def record_state(self, tuples: int, columns: int = 0) -> None:
        """Record the current size of the inter-iteration state.

        Call once per iteration with the total number of state tuples and the
        total number of state columns; peaks are tracked automatically.
        """
        self.peak_state_tuples = max(self.peak_state_tuples, tuples)
        self.peak_state_columns = max(self.peak_state_columns, columns)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def start_timer(self) -> None:
        """Start (or restart) the wall-clock timer."""
        self._started_at = time.perf_counter()

    def stop_timer(self) -> None:
        """Stop the timer and accumulate elapsed time."""
        if self._started_at is not None:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    # ------------------------------------------------------------------
    # combination / presentation
    # ------------------------------------------------------------------
    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Accumulate another stats object into this one (returns ``self``)."""
        self.tuples_examined += other.tuples_examined
        self.tuples_produced += other.tuples_produced
        self.lookups += other.lookups
        self.unrestricted_lookups += other.unrestricted_lookups
        self.iterations += other.iterations
        self.plans_compiled += other.plans_compiled
        self.peak_state_tuples = max(self.peak_state_tuples, other.peak_state_tuples)
        self.peak_state_columns = max(self.peak_state_columns, other.peak_state_columns)
        self.tuples_inserted += other.tuples_inserted
        self.tuples_deleted += other.tuples_deleted
        self.tuples_rederived += other.tuples_rederived
        self.elapsed_seconds += other.elapsed_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    def as_dict(self) -> Dict[str, float]:
        """A flat dictionary view, convenient for report tables."""
        result: Dict[str, float] = {
            "tuples_examined": self.tuples_examined,
            "tuples_produced": self.tuples_produced,
            "lookups": self.lookups,
            "unrestricted_lookups": self.unrestricted_lookups,
            "iterations": self.iterations,
            "plans_compiled": self.plans_compiled,
            "peak_state_tuples": self.peak_state_tuples,
            "peak_state_columns": self.peak_state_columns,
            "tuples_inserted": self.tuples_inserted,
            "tuples_deleted": self.tuples_deleted,
            "tuples_rederived": self.tuples_rederived,
            "elapsed_seconds": self.elapsed_seconds,
        }
        result.update(self.extra)
        return result

    def __str__(self) -> str:
        return (
            f"examined={self.tuples_examined} produced={self.tuples_produced} "
            f"lookups={self.lookups} (unrestricted={self.unrestricted_lookups}) "
            f"iterations={self.iterations} peak_state={self.peak_state_tuples}"
        )
