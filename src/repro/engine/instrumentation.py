"""Evaluation instrumentation.

The point of the paper's Section 4 is not only *what* the one-sided
algorithms compute but *how* they compute it:

* **Property 1** — simple termination conditions (``while carry not empty``),
* **Property 2** — minimal state (only ``seen`` is remembered),
* **Property 3** — no unrestricted lookups on nonrecursive relations.

:class:`EvaluationStats` gives every evaluation strategy in the library a
common vocabulary of counters so the benchmark harness can report those
properties side by side: tuples examined (retrieved from storage), tuples
produced, join probes, unrestricted lookups, fixpoint iterations, and the
peak size of the state the algorithm keeps between iterations.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..datalog.errors import QueryTimeout

# ----------------------------------------------------------------------
# cooperative per-thread evaluation deadlines
# ----------------------------------------------------------------------
# Every fixpoint driver in the library calls ``stats.record_iteration()``
# once per outer loop pass, which makes that hook the one place a deadline
# can be enforced across all engines (interpreted, kernel, columnar, magic,
# counting) without threading a parameter through every driver.  The
# deadline is thread-local: the serving layer arms it around one query's
# evaluation in one reader thread; concurrent queries are unaffected.
_deadline_local = threading.local()


def active_deadline() -> Optional[float]:
    """The calling thread's armed deadline (``time.perf_counter`` basis)."""
    return getattr(_deadline_local, "value", None)


def check_deadline() -> None:
    """Raise :class:`QueryTimeout` when the thread's armed deadline passed."""
    deadline = getattr(_deadline_local, "value", None)
    if deadline is not None and time.perf_counter() >= deadline:
        raise QueryTimeout(
            f"evaluation exceeded its deadline by "
            f"{time.perf_counter() - deadline:.3f}s"
        )


@contextmanager
def evaluation_deadline(deadline: Optional[float]):
    """Arm a cooperative deadline for the enclosed evaluation.

    ``deadline`` is an absolute ``time.perf_counter()`` instant (``None``
    disarms nothing and arms nothing).  Nested deadlines keep the tighter
    one; the previous value is always restored on exit, so reader-pool
    threads never leak a stale deadline into the next query.
    """
    if deadline is None:
        yield
        return
    previous = getattr(_deadline_local, "value", None)
    _deadline_local.value = deadline if previous is None else min(previous, deadline)
    try:
        yield
    finally:
        _deadline_local.value = previous


# ----------------------------------------------------------------------
# per-query trace context: trace ID + profile recorder
# ----------------------------------------------------------------------
# The same thread-local channel idiom as the deadline above, reused for
# query-level observability: the serving layer (or ``answer(profile=True)``)
# arms a trace ID and optionally a profile recorder around one query's
# evaluation in one thread.  Engine hot paths then ask two one-``getattr``
# questions — "is a trace armed?" for span/slow-log stamping, and "is a
# profile armed?" before recording a dispatch decision or an iteration
# sample — so a query that is neither traced nor profiled pays a ``None``
# check and nothing else.  The recorder is deliberately opaque here (it is a
# :class:`repro.obs.profile.ProfileRecorder`); the engine talks to it duck
# typed, keeping ``repro.engine`` free of any import of ``repro.obs``.
_trace_local = threading.local()


def active_trace_id() -> Optional[str]:
    """The calling thread's armed per-query trace ID, if any."""
    return getattr(_trace_local, "trace_id", None)


def active_profile():
    """The calling thread's armed profile recorder, if any."""
    return getattr(_trace_local, "profile", None)


@contextmanager
def query_trace(trace_id: Optional[str], profile=None):
    """Arm a per-query trace ID (and optional profile recorder) for this thread.

    Nested arming stacks: the previous pair is always restored on exit, so a
    reader-pool thread never leaks one query's trace context into the next.
    Passing ``trace_id=None`` with ``profile=None`` is a no-op passthrough.
    """
    if trace_id is None and profile is None:
        yield
        return
    previous = (
        getattr(_trace_local, "trace_id", None),
        getattr(_trace_local, "profile", None),
    )
    _trace_local.trace_id = trace_id if trace_id is not None else previous[0]
    _trace_local.profile = profile if profile is not None else previous[1]
    try:
        yield
    finally:
        _trace_local.trace_id, _trace_local.profile = previous


@dataclass
class EvaluationStats:
    """Counters accumulated during one evaluation run."""

    #: tuples retrieved from stored relations (after index restriction)
    tuples_examined: int = 0
    #: tuples inserted into derived relations / carry / seen / answers
    tuples_produced: int = 0
    #: number of index probes / scans issued against stored relations
    lookups: int = 0
    #: lookups issued with no bound column at all ("unrestricted", Property 3)
    unrestricted_lookups: int = 0
    #: fixpoint / while-loop iterations (Property 1)
    iterations: int = 0
    #: join plans compiled (engine v2 compiles once per fixpoint, not per iteration)
    plans_compiled: int = 0
    #: peak number of tuples kept as inter-iteration state (Property 2)
    peak_state_tuples: int = 0
    #: sum over state relations of (arity of the relation), at the peak
    peak_state_columns: int = 0
    #: tuples added to a materialized view by incremental maintenance
    tuples_inserted: int = 0
    #: tuples removed from a materialized view by incremental maintenance
    #: (DRed counts its whole overestimate here; the put-back phase counts
    #: reinstated tuples under ``tuples_rederived``)
    tuples_deleted: int = 0
    #: tuples put back by DRed rederivation after an over-deletion
    tuples_rederived: int = 0
    #: wall-clock seconds, when measured through :meth:`timed`
    elapsed_seconds: float = 0.0
    #: free-form per-strategy extras (e.g. "magic_rules", "carry_arity")
    extra: Dict[str, float] = field(default_factory=dict)

    _started_at: Optional[float] = field(default=None, repr=False, compare=False)

    # ------------------------------------------------------------------
    # recording helpers
    # ------------------------------------------------------------------
    def record_lookup(self, examined: int, restricted: bool) -> None:
        """Record one probe against a stored relation."""
        self.lookups += 1
        if not restricted:
            self.unrestricted_lookups += 1
        self.tuples_examined += examined

    def record_produced(self, count: int = 1) -> None:
        """Record tuples added to a derived relation."""
        self.tuples_produced += count

    def record_iteration(self) -> None:
        """Record one pass of the outer fixpoint / while loop.

        Doubles as the cooperative cancellation point: when the calling
        thread has an :func:`evaluation_deadline` armed and it has passed,
        this raises :class:`~repro.datalog.errors.QueryTimeout` — one
        ``getattr`` per fixpoint iteration when disarmed.
        """
        self.iterations += 1
        deadline = getattr(_deadline_local, "value", None)
        if deadline is not None and time.perf_counter() >= deadline:
            raise QueryTimeout(
                f"evaluation exceeded its deadline at iteration {self.iterations}"
            )

    def record_plans_compiled(self, count: int = 1) -> None:
        """Record join plans compiled for a fixpoint (engine-v2 bookkeeping)."""
        self.plans_compiled += count

    def record_inserted(self, count: int = 1) -> None:
        """Record tuples a maintenance step added to a materialized view."""
        self.tuples_inserted += count

    def record_deleted(self, count: int = 1) -> None:
        """Record tuples a maintenance step removed from a materialized view."""
        self.tuples_deleted += count

    def record_rederived(self, count: int = 1) -> None:
        """Record tuples DRed put back after an over-deletion."""
        self.tuples_rederived += count

    def record_state(self, tuples: int, columns: int = 0) -> None:
        """Record the current size of the inter-iteration state.

        Call once per iteration with the total number of state tuples and the
        total number of state columns; peaks are tracked automatically.
        """
        self.peak_state_tuples = max(self.peak_state_tuples, tuples)
        self.peak_state_columns = max(self.peak_state_columns, columns)

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------
    def start_timer(self) -> None:
        """Start (or restart) the wall-clock timer."""
        self._started_at = time.perf_counter()

    def stop_timer(self) -> None:
        """Stop the timer and accumulate elapsed time."""
        if self._started_at is not None:
            self.elapsed_seconds += time.perf_counter() - self._started_at
            self._started_at = None

    # ------------------------------------------------------------------
    # combination / presentation
    # ------------------------------------------------------------------
    def merge(self, other: "EvaluationStats") -> "EvaluationStats":
        """Accumulate another stats object into this one (returns ``self``)."""
        self.tuples_examined += other.tuples_examined
        self.tuples_produced += other.tuples_produced
        self.lookups += other.lookups
        self.unrestricted_lookups += other.unrestricted_lookups
        self.iterations += other.iterations
        self.plans_compiled += other.plans_compiled
        self.peak_state_tuples = max(self.peak_state_tuples, other.peak_state_tuples)
        self.peak_state_columns = max(self.peak_state_columns, other.peak_state_columns)
        self.tuples_inserted += other.tuples_inserted
        self.tuples_deleted += other.tuples_deleted
        self.tuples_rederived += other.tuples_rederived
        self.elapsed_seconds += other.elapsed_seconds
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    def as_dict(self) -> Dict[str, float]:
        """A flat dictionary view, convenient for report tables."""
        result: Dict[str, float] = {
            "tuples_examined": self.tuples_examined,
            "tuples_produced": self.tuples_produced,
            "lookups": self.lookups,
            "unrestricted_lookups": self.unrestricted_lookups,
            "iterations": self.iterations,
            "plans_compiled": self.plans_compiled,
            "peak_state_tuples": self.peak_state_tuples,
            "peak_state_columns": self.peak_state_columns,
            "tuples_inserted": self.tuples_inserted,
            "tuples_deleted": self.tuples_deleted,
            "tuples_rederived": self.tuples_rederived,
            "elapsed_seconds": self.elapsed_seconds,
        }
        result.update(self.extra)
        return result

    def __str__(self) -> str:
        return (
            f"examined={self.tuples_examined} produced={self.tuples_produced} "
            f"lookups={self.lookups} (unrestricted={self.unrestricted_lookups}) "
            f"iterations={self.iterations} peak_state={self.peak_state_tuples}"
        )


# ----------------------------------------------------------------------
# the registry bridge: per-query stats -> repro_engine_* metric families
# ----------------------------------------------------------------------
class NullStatsBridge:
    """The bridge when observability is off: ``record`` is one no-op call."""

    null = True

    def __init__(self) -> None:
        #: an empty aggregate so ``/statusz`` consumers need no special case
        self.totals = EvaluationStats()

    def record(self, strategy: str, stats: "EvaluationStats") -> None:
        pass


class StatsBridge:
    """Feeds per-query :class:`EvaluationStats` into ``repro_engine_*`` metrics.

    One bridge owns the engine-side metric families of a registry: a query
    counter plus ``tuples_examined``/``lookups`` histograms, each labeled by
    the evaluation strategy that produced the stats (so a scrape shows the
    paper's Property 1–3 cost profile per strategy, not one blurred total).
    The bridge also keeps a merged :class:`EvaluationStats` aggregate, and a
    registry collector mirrors its monotone totals into
    ``repro_engine_*_total`` counters at scrape time — the exposition always
    agrees with the in-process aggregate.

    ``record`` is called once per answered query (and once per maintenance
    round), never inside evaluation inner loops: instrumenting the engine at
    the stats boundary keeps the hot fixpoints untouched.
    """

    null = False

    #: log-spaced bounds for tuple/lookup *count* histograms (1 .. ~1M)
    COUNT_BUCKETS = tuple(4.0**exponent for exponent in range(11))

    def __init__(self, registry) -> None:
        self.totals = EvaluationStats()
        self._lock = threading.Lock()
        self._queries = registry.counter(
            "repro_engine_queries_total",
            "Queries evaluated, by strategy (snapshot lookups, fallbacks, maintenance).",
            labels=("strategy",),
        )
        self._examined = registry.histogram(
            "repro_engine_tuples_examined",
            "Tuples retrieved from stored relations per evaluation, by strategy.",
            labels=("strategy",),
            buckets=self.COUNT_BUCKETS,
        )
        self._lookups = registry.histogram(
            "repro_engine_lookups",
            "Index probes issued against stored relations per evaluation, by strategy.",
            labels=("strategy",),
            buckets=self.COUNT_BUCKETS,
        )
        registry.register_collector(self._collect)
        self._counters = {
            key: registry.counter(
                f"repro_engine_{key}_total", f"Total {key.replace('_', ' ')} across evaluations."
            )
            for key in (
                "tuples_examined",
                "tuples_produced",
                "lookups",
                "unrestricted_lookups",
                "iterations",
            )
        }

    def record(self, strategy: str, stats: "EvaluationStats") -> None:
        """Record one evaluation's stats under its strategy label."""
        with self._lock:
            self.totals.merge(stats)
        self._queries.labels(strategy).inc()
        self._examined.labels(strategy).observe(stats.tuples_examined)
        self._lookups.labels(strategy).observe(stats.lookups)

    def _collect(self) -> None:
        with self._lock:
            snapshot = self.totals.as_dict()
        for key, counter in self._counters.items():
            counter.set_total(snapshot[key])


def stats_bridge(registry) -> "StatsBridge":
    """The right bridge for ``registry`` (a no-op one for a NullRegistry)."""
    if getattr(registry, "null", False):
        return NullStatsBridge()
    return StatsBridge(registry)
