"""Evaluation strata for positive Datalog programs.

Bottom-up evaluation processes IDB predicates in dependency order; mutually
recursive predicates must be evaluated jointly.  This module computes the
strongly connected components of the IDB dependency graph (Tarjan's
algorithm) and returns them in topological order, which is exactly the
evaluation schedule both the naive and the semi-naive engines use.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Set, Tuple

from ..datalog.rules import Program


def strongly_connected_components(graph: Dict[str, Set[str]]) -> List[List[str]]:
    """Tarjan's SCC algorithm, iterative, deterministic ordering.

    ``graph`` maps each node to its successors.  Nodes referenced only as
    successors are treated as sinks with no outgoing edges.  The result lists
    components in reverse topological order of the condensation (i.e. a
    component appears *after* the components it depends on are reversed by the
    caller as needed); :func:`evaluation_strata` returns them dependencies
    first.
    """
    index_counter = 0
    indexes: Dict[str, int] = {}
    lowlinks: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[List[str]] = []

    nodes = sorted(set(graph) | {succ for succs in graph.values() for succ in succs})

    def successors(node: str) -> List[str]:
        return sorted(graph.get(node, set()))

    for root in nodes:
        if root in indexes:
            continue
        work: List[tuple] = [(root, iter(successors(root)))]
        indexes[root] = index_counter
        lowlinks[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, iterator = work[-1]
            advanced = False
            for successor in iterator:
                if successor not in indexes:
                    indexes[successor] = index_counter
                    lowlinks[successor] = index_counter
                    index_counter += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(successors(successor))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlinks[node] = min(lowlinks[node], indexes[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlinks[parent] = min(lowlinks[parent], lowlinks[node])
            if lowlinks[node] == indexes[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(sorted(component))
    return components


def evaluation_strata(program: Program) -> List[List[str]]:
    """IDB predicate groups in bottom-up evaluation order (dependencies first).

    Each group is either a single non-recursive predicate or a maximal set of
    mutually recursive predicates.  EDB predicates never appear in the result.
    """
    idb = program.idb_predicates()
    graph: Dict[str, Set[str]] = {}
    for predicate in idb:
        dependencies = set()
        for rule in program.rules_for(predicate):
            dependencies |= {p for p in rule.body_predicates() if p in idb}
        graph[predicate] = dependencies
    components = strongly_connected_components(graph)
    # Tarjan emits components such that every component appears after the
    # components it depends on have been emitted (reverse topological order of
    # the condensation is children-first), which is already the order we want;
    # filter to IDB-only groups.
    return [component for component in components if any(p in idb for p in component)]


@lru_cache(maxsize=256)
def cached_evaluation_strata(program: Program) -> Tuple[Tuple[str, ...], ...]:
    """:func:`evaluation_strata` memoized on the (immutable) program.

    The incremental-maintenance paths recompute the schedule on every
    update of a fixed program; programs are frozen and hashable, so the SCC
    work is paid once per program instead of once per mutation.  Returns
    tuples so cached values cannot be mutated by callers.
    """
    return tuple(tuple(group) for group in evaluation_strata(program))


def group_is_recursive(program: Program, group: List[str]) -> bool:
    """``True`` when the predicates of ``group`` depend on the group itself."""
    group_set = set(group)
    for predicate in group:
        for rule in program.rules_for(predicate):
            if any(body in group_set for body in rule.body_predicates()):
                return True
    return False
