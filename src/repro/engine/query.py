"""Selection queries on IDB predicates, and the library's one query front door.

The paper studies queries of the form "column = constant" on a recursively
defined relation — e.g. ``t(X, n0)?`` or ``t(n0, Y)?``.  :class:`SelectionQuery`
is the library-wide representation of such a query: a predicate name plus a
mapping from (0-based) column numbers to constants.  Free columns are the
output columns.

:func:`answer` is the front door over every evaluation strategy the library
implements: it runs the :mod:`repro.optimize` pass chain first
(rewrite-then-evaluate), then picks unfolded / one-sided / counting / magic /
semi-naive per query, and reports both the chosen strategy and the
optimizer's rewrite provenance on the returned :class:`QueryResult`.

Whatever strategy is picked, the joins underneath run on the engine's fast
runtime: compiled plans evaluate through generated kernels
(:mod:`repro.engine.kernels`, ``REPRO_KERNELS=off`` to disable) and the
fixpoint strategies evaluate over the interned value domain
(:mod:`repro.engine.domain`, ``REPRO_INTERN=off``), with every answer set
decoded back to the caller's original values before it reaches a
:class:`QueryResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple, Union

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ProgramError, ReproError
from ..datalog.relation import Row, Value
from ..datalog.rules import Program
from ..datalog.terms import Constant, Variable, is_variable
from .instrumentation import EvaluationStats


@dataclass(frozen=True)
class SelectionQuery:
    """A ``column = constant`` selection on an IDB predicate.

    Attributes
    ----------
    predicate:
        The IDB predicate being queried.
    arity:
        Its arity.
    bindings:
        Mapping of bound columns (0-based) to the selection constants.  An
        empty mapping asks for the whole relation.
    """

    predicate: str
    arity: int
    bindings: Tuple[Tuple[int, Value], ...] = ()

    @staticmethod
    def of(predicate: str, arity: int, bindings: Optional[Dict[int, Value]] = None) -> "SelectionQuery":
        """Build a query from a plain ``{column: constant}`` dictionary."""
        items = tuple(sorted((bindings or {}).items()))
        for column, _value in items:
            if column < 0 or column >= arity:
                raise EvaluationError(
                    f"query on {predicate}/{arity}: column {column} out of range"
                )
        return SelectionQuery(predicate, arity, items)

    @staticmethod
    def from_atom(atom: Atom) -> "SelectionQuery":
        """Build a query from a query atom such as ``t(1, Y)``.

        Constant arguments become bindings; variable arguments are output
        columns.  Repeated variables are rejected (the paper only considers
        single-column selections and free columns).
        """
        seen: Set[Variable] = set()
        bindings: Dict[int, Value] = {}
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                bindings[position] = arg.value
            elif is_variable(arg):
                if arg in seen:
                    raise EvaluationError(
                        f"query {atom} repeats variable {arg}; use distinct output variables"
                    )
                seen.add(arg)
        return SelectionQuery.of(atom.predicate, atom.arity, bindings)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def bindings_dict(self) -> Dict[int, Value]:
        """The bindings as a plain dictionary."""
        return dict(self.bindings)

    def bound_columns(self) -> Tuple[int, ...]:
        """The bound column numbers, ascending."""
        return tuple(column for column, _ in self.bindings)

    def free_columns(self) -> Tuple[int, ...]:
        """The unbound (output) column numbers, ascending."""
        bound = set(self.bound_columns())
        return tuple(column for column in range(self.arity) if column not in bound)

    def matches(self, row: Row) -> bool:
        """``True`` when ``row`` satisfies every binding."""
        return all(row[column] == value for column, value in self.bindings)

    def select(self, rows: Set[Row]) -> Set[Row]:
        """Filter a tuple set down to the tuples satisfying the query."""
        return {row for row in rows if self.matches(row)}

    def __str__(self) -> str:
        parts = []
        bindings = self.bindings_dict()
        for column in range(self.arity):
            parts.append(str(bindings[column]) if column in bindings else f"C{column}")
        return f"{self.predicate}({', '.join(parts)})?"


@dataclass
class QueryResult:
    """Answers to a selection query plus the stats of the strategy that produced them."""

    query: SelectionQuery
    answers: Set[Row]
    stats: EvaluationStats
    strategy: str = "unspecified"
    #: optimizer provenance (an :class:`repro.optimize.passes.OptimizationResult`)
    #: when the query went through :func:`answer`; ``None`` otherwise
    provenance: Optional[object] = field(default=None, repr=False, compare=False)
    #: the EXPLAIN ANALYZE record (a :class:`repro.obs.profile.QueryProfile`)
    #: when the query ran with ``profile=True``; ``None`` otherwise
    profile: Optional[object] = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.answers)

    def projected(self) -> Set[Row]:
        """The answers projected onto the query's free (output) columns."""
        free = self.query.free_columns()
        return {tuple(row[column] for column in free) for row in self.answers}

    def __str__(self) -> str:
        return f"{self.query} -> {len(self.answers)} answers via {self.strategy} [{self.stats}]"


def as_selection_query(program: Program, query: Union[SelectionQuery, Atom, str]) -> SelectionQuery:
    """Coerce a string, query atom or :class:`SelectionQuery` into a checked query.

    Strings parse with :func:`repro.datalog.parser.parse_query`; the query's
    arity is validated against the program when the predicate appears in it.
    """
    if isinstance(query, str):
        from ..datalog.parser import parse_query

        query = parse_query(query)
    if isinstance(query, Atom):
        query = SelectionQuery.from_atom(query)
    if not isinstance(query, SelectionQuery):
        raise EvaluationError(f"cannot interpret {query!r} as a selection query")
    if query.predicate in program.predicates() and program.arity_of(query.predicate) != query.arity:
        raise EvaluationError(
            f"query {query} has arity {query.arity}, but {query.predicate} has arity "
            f"{program.arity_of(query.predicate)} in the program"
        )
    return query


#: strategies :func:`answer` resolves itself; the rest delegate to the planner
_FORCED_PLANNER_STRATEGIES = ("naive", "seminaive", "magic", "one-sided")


def answer(
    program: Program,
    database: Database,
    query: Union[SelectionQuery, Atom, str],
    strategy: str = "auto",
    optimizer: Optional[object] = None,
    max_unfold_depth: int = 8,
    counting_depth: int = 2_000,
    profile: bool = False,
    trace_id: Optional[str] = None,
) -> QueryResult:
    """Answer a selection query through the optimizer: rewrite, then evaluate.

    The front door over every strategy in the library.  With
    ``strategy="auto"`` it:

    1. runs the :mod:`repro.optimize` pass chain on the query's predicate
       (redundancy removal, boundedness, sidedness, bounded-recursion
       unfolding), sharing the library-wide containment cache;
    2. picks the cheapest applicable strategy, in order: **unfolded** (the
       recursion was rewritten into a nonrecursive union — evaluated
       recursion-free with the selection pushed into each compiled join),
       **one-sided** (the Figure 9 schema, also used for fully covered
       many-sided selections), **counting** (chain shapes with a column-0
       selection), **magic** (any bound query), and finally plain
       **semi-naive** evaluation plus selection;
    3. attaches the optimizer's :class:`~repro.optimize.passes.OptimizationResult`
       as ``result.provenance``, so callers can see exactly which rewrites
       fired (``result.provenance.describe()``).

    ``profile=True`` is EXPLAIN ANALYZE: the evaluation runs with a
    :class:`repro.obs.profile.ProfileRecorder` armed on the thread-local
    channel, and the finished :class:`~repro.obs.profile.QueryProfile` —
    dispatch decisions, iteration timings, rewrites, the result's own stats —
    is attached as ``result.profile``.  ``trace_id`` stamps the profile and
    every span the evaluation emits (one is generated when profiling without
    an explicit ID).

    Forcing ``strategy="unfolded"`` raises
    :class:`~repro.datalog.errors.EvaluationError` when no boundedness
    witness exists within ``max_unfold_depth``; the other named strategies
    (``"naive"``, ``"seminaive"``, ``"magic"``, ``"counting"``,
    ``"one-sided"``) behave as in :func:`repro.core.planner.answer_query`.
    """
    selection = as_selection_query(program, query)

    if profile or trace_id is not None:
        from time import perf_counter

        from ..obs.profile import ProfileRecorder
        from .instrumentation import query_trace

        recorder = ProfileRecorder(str(selection), trace_id=trace_id) if profile else None
        armed_trace = recorder.trace_id if recorder is not None else trace_id
        started = perf_counter()
        with query_trace(armed_trace, recorder):
            result = _answer_selection(
                program, database, selection, strategy, optimizer,
                max_unfold_depth, counting_depth,
            )
        if recorder is not None:
            result.profile = recorder.build(
                strategy=result.strategy,
                stats=result.stats,
                outcome="ok",
                execution_seconds=perf_counter() - started,
                provenance=result.provenance,
            )
        return result

    return _answer_selection(
        program, database, selection, strategy, optimizer,
        max_unfold_depth, counting_depth,
    )


def _answer_selection(
    program: Program,
    database: Database,
    selection: SelectionQuery,
    strategy: str,
    optimizer: Optional[object],
    max_unfold_depth: int,
    counting_depth: int,
) -> QueryResult:
    """The strategy ladder behind :func:`answer` (selection already coerced)."""
    if strategy in _FORCED_PLANNER_STRATEGIES:
        from ..core.planner import answer_query

        return answer_query(program, database, selection, strategy=strategy)

    if strategy == "counting":
        from ..baselines.counting import counting_query, counting_scope_reason

        reason = counting_scope_reason(program, selection)
        if reason:
            raise EvaluationError(f"counting strategy unavailable: {reason}")
        return counting_query(program, database, selection, max_depth=counting_depth)

    if strategy not in ("auto", "unfolded"):
        raise EvaluationError(f"unknown evaluation strategy {strategy!r}")

    from ..optimize.passes import Optimizer, UnfoldingPass, default_passes, detection_passes
    from ..optimize.unfold import evaluate_unfolded

    if optimizer is not None:
        chosen = optimizer
    elif strategy == "unfolded":
        # a forced unfolding request searches the full requested depth even
        # when structural boundedness is undecided (repeated predicates)
        chosen = Optimizer(
            detection_passes()
            + (UnfoldingPass(max_depth=max_unfold_depth, fallback_depth=None),)
        )
    else:
        chosen = Optimizer(default_passes(max_unfold_depth))
    try:
        result = chosen.run(program, selection.predicate)
    except ProgramError:
        result = None  # e.g. the predicate is not defined by the program

    if strategy == "unfolded":
        if result is None or result.unfolded is None:
            raise EvaluationError(
                f"{selection.predicate} is not provably bounded within depth "
                f"{max_unfold_depth}; cannot evaluate by unfolding"
            )
        answers, stats = evaluate_unfolded(result.unfolded, database, selection)
        return QueryResult(selection, answers, stats, strategy="unfolded", provenance=result)

    # ------------------------------------------------------------------
    # auto: the rewrites decide the strategy
    # ------------------------------------------------------------------
    if result is not None and result.unfolded is not None:
        answers, stats = evaluate_unfolded(result.unfolded, database, selection)
        return QueryResult(selection, answers, stats, strategy="unfolded (auto)", provenance=result)

    if result is not None and result.one_sided:
        from ..core.schema import OneSidedSchema

        try:
            schema = OneSidedSchema(result.optimized, selection.predicate, selection)
            routed = schema.run(database)
            routed.strategy = f"{routed.strategy} (auto)"
            routed.provenance = result
            return routed
        except ReproError:
            pass  # fall through to the general strategies

    # Section 5's observation: a many-sided recursion whose unbounded sides
    # each receive a selection constant can still ride the Figure 9 schema.
    if (
        result is not None
        and not result.one_sided
        and result.report is not None
        and selection.bound_columns()
    ):
        from ..core.classify import selection_covers_unbounded_sides
        from ..core.schema import OneSidedSchema

        try:
            if selection_covers_unbounded_sides(
                result.optimized, selection.predicate, set(selection.bound_columns())
            ):
                schema = OneSidedSchema(
                    result.optimized, selection.predicate, selection, require_one_sided=False
                )
                routed = schema.run(database)
                routed.strategy = f"{routed.strategy} (bounded sides, auto)"
                routed.provenance = result
                return routed
        except ReproError:
            pass

    from ..baselines.counting import counting_query, counting_scope_reason

    if not counting_scope_reason(program, selection):
        try:
            routed = counting_query(program, database, selection, max_depth=counting_depth)
            routed.strategy = f"{routed.strategy} (auto)"
            routed.provenance = result
            return routed
        except EvaluationError:
            pass  # e.g. cyclic reachable data tripping the depth bound

    if selection.bound_columns():
        from ..baselines.magic import magic_query

        try:
            routed = magic_query(program, database, selection)
            routed.strategy = f"{routed.strategy} (auto)"
            routed.provenance = result
            return routed
        except ReproError:
            pass

    from .seminaive import seminaive_query

    answers, stats = seminaive_query(
        program, database, selection.predicate, selection.bindings_dict()
    )
    return QueryResult(selection, answers, stats, strategy="seminaive (auto)", provenance=result)
