"""Selection queries on IDB predicates.

The paper studies queries of the form "column = constant" on a recursively
defined relation — e.g. ``t(X, n0)?`` or ``t(n0, Y)?``.  :class:`SelectionQuery`
is the library-wide representation of such a query: a predicate name plus a
mapping from (0-based) column numbers to constants.  Free columns are the
output columns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.errors import EvaluationError
from ..datalog.relation import Row, Value
from ..datalog.terms import Constant, Variable, is_variable
from .instrumentation import EvaluationStats


@dataclass(frozen=True)
class SelectionQuery:
    """A ``column = constant`` selection on an IDB predicate.

    Attributes
    ----------
    predicate:
        The IDB predicate being queried.
    arity:
        Its arity.
    bindings:
        Mapping of bound columns (0-based) to the selection constants.  An
        empty mapping asks for the whole relation.
    """

    predicate: str
    arity: int
    bindings: Tuple[Tuple[int, Value], ...] = ()

    @staticmethod
    def of(predicate: str, arity: int, bindings: Optional[Dict[int, Value]] = None) -> "SelectionQuery":
        """Build a query from a plain ``{column: constant}`` dictionary."""
        items = tuple(sorted((bindings or {}).items()))
        for column, _value in items:
            if column < 0 or column >= arity:
                raise EvaluationError(
                    f"query on {predicate}/{arity}: column {column} out of range"
                )
        return SelectionQuery(predicate, arity, items)

    @staticmethod
    def from_atom(atom: Atom) -> "SelectionQuery":
        """Build a query from a query atom such as ``t(1, Y)``.

        Constant arguments become bindings; variable arguments are output
        columns.  Repeated variables are rejected (the paper only considers
        single-column selections and free columns).
        """
        seen: Set[Variable] = set()
        bindings: Dict[int, Value] = {}
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                bindings[position] = arg.value
            elif is_variable(arg):
                if arg in seen:
                    raise EvaluationError(
                        f"query {atom} repeats variable {arg}; use distinct output variables"
                    )
                seen.add(arg)
        return SelectionQuery.of(atom.predicate, atom.arity, bindings)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def bindings_dict(self) -> Dict[int, Value]:
        """The bindings as a plain dictionary."""
        return dict(self.bindings)

    def bound_columns(self) -> Tuple[int, ...]:
        """The bound column numbers, ascending."""
        return tuple(column for column, _ in self.bindings)

    def free_columns(self) -> Tuple[int, ...]:
        """The unbound (output) column numbers, ascending."""
        bound = set(self.bound_columns())
        return tuple(column for column in range(self.arity) if column not in bound)

    def matches(self, row: Row) -> bool:
        """``True`` when ``row`` satisfies every binding."""
        return all(row[column] == value for column, value in self.bindings)

    def select(self, rows: Set[Row]) -> Set[Row]:
        """Filter a tuple set down to the tuples satisfying the query."""
        return {row for row in rows if self.matches(row)}

    def __str__(self) -> str:
        parts = []
        bindings = self.bindings_dict()
        for column in range(self.arity):
            parts.append(str(bindings[column]) if column in bindings else f"C{column}")
        return f"{self.predicate}({', '.join(parts)})?"


@dataclass
class QueryResult:
    """Answers to a selection query plus the stats of the strategy that produced them."""

    query: SelectionQuery
    answers: Set[Row]
    stats: EvaluationStats
    strategy: str = "unspecified"

    def __len__(self) -> int:
        return len(self.answers)

    def projected(self) -> Set[Row]:
        """The answers projected onto the query's free (output) columns."""
        free = self.query.free_columns()
        return {tuple(row[column] for column in free) for row in self.answers}

    def __str__(self) -> str:
        return f"{self.query} -> {len(self.answers)} answers via {self.strategy} [{self.stats}]"
