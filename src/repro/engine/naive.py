"""Naive bottom-up fixpoint evaluation.

The simplest complete evaluation strategy: repeatedly apply every rule to the
whole current database until nothing new is derived.  It exists as the
semantic reference point — every other strategy (semi-naive, magic sets,
counting, the one-sided schema) is tested against it — and as the slowest
baseline in the benchmark sweeps.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..datalog.database import Database
from ..datalog.relation import Relation
from ..datalog.rules import Program
from .compile import compile_program_rules
from .domain import engine_relations, intern_plans
from .instrumentation import EvaluationStats
from .strata import evaluation_strata, group_is_recursive


def naive_evaluate(
    program: Program,
    database: Database,
    stats: Optional[EvaluationStats] = None,
) -> Dict[str, Relation]:
    """Compute the minimal model's IDB relations by naive iteration.

    Returns a map from IDB predicate name to its derived relation.  The input
    database is not modified.  Like semi-naive evaluation, the iteration runs
    over the interned value domain (decoded at return) unless
    ``REPRO_INTERN=off``.
    """
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()

    domain, relations = engine_relations(program, database)
    derived: Dict[str, Relation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        derived[predicate] = Relation(predicate, arity)
        # IDB relations shadow same-named EDB relations during evaluation,
        # but pre-existing tuples (if any) are kept as seed facts.
        if predicate in relations:
            derived[predicate].union_update(relations[predicate].rows())
        relations[predicate] = derived[predicate]

    for group in evaluation_strata(program):
        rules = [rule for predicate in group for rule in program.rules_for(predicate)]
        # Plans are compiled once per stratum and reused by every iteration.
        plans = intern_plans(compile_program_rules(rules, relations), domain)
        stats.record_plans_compiled(len(plans))
        recursive_group = group_is_recursive(program, group)
        while True:
            stats.record_iteration()
            changed = False
            for plan in plans:
                target = derived[plan.rule.head.predicate]
                fresh_rows = plan.evaluate(relations, stats=stats) - target.rows()
                if fresh_rows:
                    target.union_update(fresh_rows)
                    changed = True
                    stats.record_produced(len(fresh_rows))
            stats.record_state(
                sum(len(derived[p]) for p in group),
                sum(len(derived[p]) * derived[p].arity for p in group),
            )
            if not changed or not recursive_group:
                break

    if domain is not None:
        derived = {p: domain.decode_relation(r) for p, r in derived.items()}
    stats.stop_timer()
    return derived


def naive_query(
    program: Program,
    database: Database,
    predicate: str,
    bindings: Optional[Dict[int, object]] = None,
    stats: Optional[EvaluationStats] = None,
) -> Tuple[set, EvaluationStats]:
    """Answer a ``column = constant`` selection by full naive evaluation + selection.

    ``bindings`` maps 0-based column numbers of ``predicate`` to constants.
    Returns ``(answer tuples, stats)``.
    """
    stats = stats if stats is not None else EvaluationStats()
    derived = naive_evaluate(program, database, stats)
    if predicate not in derived:
        return set(), stats
    relation = derived[predicate]
    bindings = bindings or {}
    answers = {row for row in relation if all(row[c] == v for c, v in bindings.items())}
    return answers, stats
