"""Semi-naive bottom-up fixpoint evaluation.

Semi-naive evaluation is the standard "good general algorithm" the paper
contrasts the one-sided schema against: each iteration re-derives only the
consequences of the *delta* (tuples new in the previous iteration), so no
derivation is repeated.  It is complete for arbitrary positive Datalog and is
the evaluator used underneath the magic-sets and counting baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.database import Database
from ..datalog.relation import Relation, Row
from ..datalog.rules import Program, Rule
from .cq_eval import evaluate_rule, evaluate_rule_with_delta
from .instrumentation import EvaluationStats
from .strata import evaluation_strata, group_is_recursive


def seminaive_evaluate(
    program: Program,
    database: Database,
    stats: Optional[EvaluationStats] = None,
) -> Dict[str, Relation]:
    """Compute the minimal model's IDB relations by semi-naive iteration.

    Returns a map from IDB predicate name to its derived relation.  The input
    database is not modified.
    """
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()

    relations: Dict[str, Relation] = {r.name: r for r in database.relations()}
    derived: Dict[str, Relation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        derived[predicate] = Relation(predicate, arity)
        if predicate in relations:
            derived[predicate].add_all(relations[predicate].rows())
        relations[predicate] = derived[predicate]

    for group in evaluation_strata(program):
        _evaluate_group(program, group, relations, derived, stats)

    stats.stop_timer()
    return derived


def _evaluate_group(
    program: Program,
    group: List[str],
    relations: Dict[str, Relation],
    derived: Dict[str, Relation],
    stats: EvaluationStats,
) -> None:
    """Evaluate one stratum (a set of mutually recursive predicates) to fixpoint."""
    group_set = set(group)
    rules = [rule for predicate in group for rule in program.rules_for(predicate)]
    recursive_rules = [rule for rule in rules if any(p in group_set for p in rule.body_predicates())]
    base_rules = [rule for rule in rules if rule not in recursive_rules]

    # Initialisation: pre-existing facts for the group's predicates (e.g. a
    # magic seed placed in the database) count as freshly derived, then the
    # nonrecursive rules are applied once.
    deltas: Dict[str, Set[Row]] = {predicate: set(derived[predicate].rows()) for predicate in group}
    stats.record_iteration()
    for rule in base_rules:
        for row in evaluate_rule(rule, relations, stats=stats):
            if derived[rule.head.predicate].add(row):
                deltas[rule.head.predicate].add(row)
                stats.record_produced()

    if not group_is_recursive(program, group):
        return

    # Iterate: apply recursive rules to the deltas only.
    while any(deltas.values()):
        stats.record_iteration()
        stats.record_state(
            sum(len(d) for d in deltas.values()),
            sum(len(d) * derived[p].arity for p, d in deltas.items()),
        )
        new_deltas: Dict[str, Set[Row]] = {predicate: set() for predicate in group}
        delta_relations = {
            predicate: Relation(predicate, derived[predicate].arity, rows)
            for predicate, rows in deltas.items()
            if rows
        }
        for rule in recursive_rules:
            for delta_predicate, delta_relation in delta_relations.items():
                if delta_predicate not in rule.body_predicates():
                    continue
                rows = evaluate_rule_with_delta(rule, relations, delta_predicate, delta_relation, stats)
                for row in rows:
                    if row not in derived[rule.head.predicate].rows():
                        new_deltas[rule.head.predicate].add(row)
        for predicate, rows in new_deltas.items():
            for row in rows:
                if derived[predicate].add(row):
                    stats.record_produced()
        deltas = new_deltas


def seminaive_query(
    program: Program,
    database: Database,
    predicate: str,
    bindings: Optional[Dict[int, object]] = None,
    stats: Optional[EvaluationStats] = None,
) -> Tuple[Set[Row], EvaluationStats]:
    """Answer a ``column = constant`` selection by full semi-naive evaluation + selection.

    This is the "evaluate everything, then select" strategy that the paper's
    one-sided algorithms are designed to beat when the selection is narrow.
    """
    stats = stats if stats is not None else EvaluationStats()
    derived = seminaive_evaluate(program, database, stats)
    if predicate not in derived:
        return set(), stats
    relation = derived[predicate]
    bindings = bindings or {}
    answers = {row for row in relation if all(row[c] == v for c, v in bindings.items())}
    return answers, stats
