"""Semi-naive bottom-up fixpoint evaluation.

Semi-naive evaluation is the standard "good general algorithm" the paper
contrasts the one-sided schema against: each iteration re-derives only the
consequences of the *delta* (tuples new in the previous iteration), so no
derivation is repeated.  It is complete for arbitrary positive Datalog and is
the evaluator used underneath the magic-sets and counting baselines.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..datalog.database import Database
from ..datalog.relation import Relation, Row
from ..datalog.rules import Program
from .compile import compile_delta_variants, compile_program_rules
from .instrumentation import EvaluationStats
from .strata import evaluation_strata, group_is_recursive


def seminaive_evaluate(
    program: Program,
    database: Database,
    stats: Optional[EvaluationStats] = None,
) -> Dict[str, Relation]:
    """Compute the minimal model's IDB relations by semi-naive iteration.

    Returns a map from IDB predicate name to its derived relation.  The input
    database is not modified.
    """
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()

    relations: Dict[str, Relation] = {r.name: r for r in database.relations()}
    derived: Dict[str, Relation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        derived[predicate] = Relation(predicate, arity)
        if predicate in relations:
            derived[predicate].add_all(relations[predicate].rows())
        relations[predicate] = derived[predicate]

    for group in evaluation_strata(program):
        _evaluate_group(program, group, relations, derived, stats)

    stats.stop_timer()
    return derived


def _evaluate_group(
    program: Program,
    group: List[str],
    relations: Dict[str, Relation],
    derived: Dict[str, Relation],
    stats: EvaluationStats,
) -> None:
    """Evaluate one stratum (a set of mutually recursive predicates) to fixpoint."""
    group_set = set(group)
    rules = [rule for predicate in group for rule in program.rules_for(predicate)]
    recursive_rules = [rule for rule in rules if any(p in group_set for p in rule.body_predicates())]
    base_rules = [rule for rule in rules if rule not in recursive_rules]
    base_plans = compile_program_rules(base_rules, relations)
    stats.record_plans_compiled(len(base_plans))

    # The deltas are persistent, double-buffered relations: ``current`` holds
    # the tuples new in the previous iteration, ``spare`` collects this
    # iteration's discoveries.  At the end of an iteration the buffers swap
    # and the stale one is cleared — its lazily-built indexes keep their
    # registered column-sets, so delta joins in later iterations are
    # maintained incrementally instead of being rebuilt from row sets.
    current: Dict[str, Relation] = {p: Relation(f"delta_{p}", derived[p].arity) for p in group}
    spare: Dict[str, Relation] = {p: Relation(f"delta_{p}", derived[p].arity) for p in group}

    # Initialisation: pre-existing facts for the group's predicates (e.g. a
    # magic seed placed in the database) count as freshly derived, then the
    # nonrecursive rules are applied once.
    for predicate in group:
        current[predicate].add_all(derived[predicate].rows())
    stats.record_iteration()
    for plan in base_plans:
        target = derived[plan.rule.head.predicate]
        delta = current[plan.rule.head.predicate]
        for row in plan.evaluate(relations, stats=stats):
            if target.add(row):
                delta.add(row)
                stats.record_produced()

    if not group_is_recursive(program, group):
        return

    # One compiled plan per occurrence of a group predicate in a recursive
    # rule body, reused verbatim by every delta iteration below.
    delta_plans = []
    for rule in recursive_rules:
        delta_plans.extend(compile_delta_variants(rule, group_set, relations))
    stats.record_plans_compiled(len(delta_plans))

    # Iterate: apply recursive rules to the deltas only.
    while any(not current[p].is_empty() for p in group):
        stats.record_iteration()
        stats.record_state(
            sum(len(current[p]) for p in group),
            sum(len(current[p]) * derived[p].arity for p in group),
        )
        for delta_predicate, occurrence, plan in delta_plans:
            delta_relation = current[delta_predicate]
            if delta_relation.is_empty():
                continue
            head = plan.rule.head.predicate
            seen = derived[head]
            fresh = spare[head]
            for row in plan.evaluate(relations, stats=stats, overrides={occurrence: delta_relation}):
                if row not in seen:
                    fresh.add(row)
        for predicate in group:
            target = derived[predicate]
            for row in spare[predicate].rows():
                if target.add(row):
                    stats.record_produced()
            stale = current[predicate]
            stale.clear()
            current[predicate] = spare[predicate]
            spare[predicate] = stale


def seminaive_query(
    program: Program,
    database: Database,
    predicate: str,
    bindings: Optional[Dict[int, object]] = None,
    stats: Optional[EvaluationStats] = None,
) -> Tuple[Set[Row], EvaluationStats]:
    """Answer a ``column = constant`` selection by full semi-naive evaluation + selection.

    This is the "evaluate everything, then select" strategy that the paper's
    one-sided algorithms are designed to beat when the selection is narrow.
    """
    stats = stats if stats is not None else EvaluationStats()
    derived = seminaive_evaluate(program, database, stats)
    if predicate not in derived:
        return set(), stats
    relation = derived[predicate]
    bindings = bindings or {}
    answers = {row for row in relation if all(row[c] == v for c, v in bindings.items())}
    return answers, stats
