"""Semi-naive bottom-up fixpoint evaluation.

Semi-naive evaluation is the standard "good general algorithm" the paper
contrasts the one-sided schema against: each iteration re-derives only the
consequences of the *delta* (tuples new in the previous iteration), so no
derivation is repeated.  It is complete for arbitrary positive Datalog and is
the evaluator used underneath the magic-sets and counting baselines.

The fixpoint itself runs on the interned value domain
(:mod:`repro.engine.domain`): the stored relations are encoded to int rows
on entry, rule constants are interned into the compiled plans, every delta
round hashes machine ints, and the derived relations are decoded back to
user values on exit — so callers (and the magic/counting baselines and the
incremental registry riding this module) never see a code.  ``REPRO_INTERN=off``
evaluates directly over the user values instead.
"""

from __future__ import annotations

from time import perf_counter as _perf
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.database import Database
from ..datalog.relation import Relation, Row
from ..datalog.rules import Program
from .columnar import build_group_executor, columnar_enabled, columnar_forced
from .compile import PlanCache, compile_delta_variants, compile_program_rules
from .domain import Domain, engine_relations, intern_plan, intern_plans
from .instrumentation import EvaluationStats, active_profile
from .strata import cached_evaluation_strata, evaluation_strata, group_is_recursive

#: stable detail strings for profile `StratumDecision` records (asserted by
#: the differential harness's profile-consistency checks, so keep them fixed)
DECISION_COLUMNAR_OFF = "columnar-off"
DECISION_NO_TEMPLATE = "no-batch-template"
DECISION_FORCED = "forced"
DECISION_PROFITABLE = "score>=threshold"
DECISION_UNPROFITABLE = "score<threshold"


def seminaive_evaluate(
    program: Program,
    database: Database,
    stats: Optional[EvaluationStats] = None,
) -> Dict[str, Relation]:
    """Compute the minimal model's IDB relations by semi-naive iteration.

    Returns a map from IDB predicate name to its derived relation.  The input
    database is not modified.
    """
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()

    domain, relations = engine_relations(program, database)
    derived: Dict[str, Relation] = {}
    for predicate in program.idb_predicates():
        arity = program.arity_of(predicate)
        derived[predicate] = Relation(predicate, arity)
        if predicate in relations:
            derived[predicate].union_update(relations[predicate].rows())
        relations[predicate] = derived[predicate]

    for stratum, group in enumerate(evaluation_strata(program)):
        _evaluate_group(program, group, relations, derived, stats, domain, stratum)

    if domain is not None:
        derived = {p: domain.decode_relation(r) for p, r in derived.items()}
    stats.stop_timer()
    return derived


def _evaluate_group(
    program: Program,
    group: List[str],
    relations: Dict[str, Relation],
    derived: Dict[str, Relation],
    stats: EvaluationStats,
    domain: Optional[Domain] = None,
    stratum: int = 0,
) -> None:
    """Evaluate one stratum (a set of mutually recursive predicates) to fixpoint."""
    profile = active_profile()
    if profile is not None:
        profile.record_stratum(stratum, group)
    group_set = set(group)
    rules = [rule for predicate in group for rule in program.rules_for(predicate)]
    recursive_rules = [rule for rule in rules if any(p in group_set for p in rule.body_predicates())]
    base_rules = [rule for rule in rules if rule not in recursive_rules]
    base_plans = intern_plans(compile_program_rules(base_rules, relations), domain)
    stats.record_plans_compiled(len(base_plans))

    # The deltas are persistent, double-buffered relations: ``current`` holds
    # the tuples new in the previous iteration, ``spare`` collects this
    # iteration's discoveries.  At the end of an iteration the buffers swap
    # and the stale one is cleared — its lazily-built indexes keep their
    # registered column-sets, so delta joins in later iterations are
    # maintained incrementally instead of being rebuilt from row sets.
    current: Dict[str, Relation] = {p: Relation(f"delta_{p}", derived[p].arity) for p in group}
    spare: Dict[str, Relation] = {p: Relation(f"delta_{p}", derived[p].arity) for p in group}

    # Initialisation: pre-existing facts for the group's predicates (e.g. a
    # magic seed placed in the database) count as freshly derived, then the
    # nonrecursive rules are applied once.
    for predicate in group:
        current[predicate].union_update(derived[predicate].rows())
    stats.record_iteration()
    for plan in base_plans:
        target = derived[plan.rule.head.predicate]
        delta = current[plan.rule.head.predicate]
        fresh_rows = plan.evaluate(relations, stats=stats) - target.rows()
        if fresh_rows:
            target.union_update(fresh_rows)
            delta.union_update(fresh_rows)
            stats.record_produced(len(fresh_rows))

    if not group_is_recursive(program, group):
        return

    # One compiled plan per occurrence of a group predicate in a recursive
    # rule body, reused verbatim by every delta iteration below.
    delta_plans = []
    for rule in recursive_rules:
        variants = compile_delta_variants(rule, group_set, relations)
        if domain is not None:
            variants = [
                (predicate, occurrence, intern_plan(plan, domain))
                for predicate, occurrence, plan in variants
            ]
        delta_plans.extend(variants)
    stats.record_plans_compiled(len(delta_plans))

    # Columnar batch execution: when every delta variant fits a vectorizable
    # template (and the workload looks fat enough to amortize it — or
    # ``REPRO_COLUMNAR=force`` says to go regardless), the whole delta
    # iteration runs set-at-a-time with identical results and identical
    # instrumentation totals; otherwise the kernel loop below runs as before.
    if columnar_enabled():
        executor = build_group_executor(group, delta_plans, relations, derived, current)
        if executor is not None:
            score = None if columnar_forced() else executor.profit_score()
            if score is None or score >= executor.PROFIT_THRESHOLD:
                if profile is not None:
                    profile.record_group(
                        stratum,
                        group,
                        "columnar",
                        score=score,
                        detail=DECISION_FORCED if score is None else DECISION_PROFITABLE,
                    )
                executor.stratum_index = stratum
                executor.run(stats)
                return
            if profile is not None:
                profile.record_group(
                    stratum, group, "kernel-loop", score=score, detail=DECISION_UNPROFITABLE
                )
        elif profile is not None:
            profile.record_group(stratum, group, "kernel-loop", detail=DECISION_NO_TEMPLATE)
    elif profile is not None:
        profile.record_group(stratum, group, "kernel-loop", detail=DECISION_COLUMNAR_OFF)

    # Iterate: apply recursive rules to the deltas only.
    iteration = 0
    while any(not current[p].is_empty() for p in group):
        stats.record_iteration()
        delta_total = sum(len(current[p]) for p in group)
        stats.record_state(
            delta_total,
            sum(len(current[p]) * derived[p].arity for p in group),
        )
        if profile is not None:
            iteration += 1
            iteration_started = _perf()
        for delta_predicate, occurrence, plan in delta_plans:
            delta_relation = current[delta_predicate]
            if delta_relation.is_empty():
                continue
            head = plan.rule.head.predicate
            produced = plan.evaluate(relations, stats=stats, overrides={occurrence: delta_relation})
            new_rows = produced - derived[head].rows()
            if new_rows:
                spare[head].union_update(new_rows)
        for predicate in group:
            added = derived[predicate].union_update(spare[predicate].rows())
            if added:
                stats.record_produced(added)
            stale = current[predicate]
            stale.clear()
            current[predicate] = spare[predicate]
            spare[predicate] = stale
        if profile is not None:
            profile.record_iteration(
                stratum, iteration, delta_total, _perf() - iteration_started
            )


def overlay_relations(database: Database, derived: Dict[str, Relation]) -> Dict[str, Relation]:
    """Name → relation map with derived IDB relations shadowing stored ones.

    The shared construction for every maintenance entry point: rules read the
    materialized IDB state, everything else reads the database.
    """
    relations: Dict[str, Relation] = {r.name: r for r in database.relations()}
    relations.update(derived)
    return relations


def group_insert_closure(
    program: Program,
    group: List[str],
    relations: Dict[str, Relation],
    derived: Dict[str, Relation],
    seeds: Dict[str, Set[Row]],
    external: Dict[str, Set[Row]],
    stats: EvaluationStats,
    cache: Optional[PlanCache] = None,
) -> Dict[str, Set[Row]]:
    """Close one stratum over freshly inserted tuples (one delta round).

    ``derived`` holds the group's materialized relations, already containing
    the direct ``seeds``; ``external`` maps changed *non-group* predicate
    names to their inserted rows, with ``relations`` reading the post-change
    state everywhere.  Two phases, both riding the compiled delta variants of
    :mod:`repro.engine.compile`:

    1. every occurrence of an externally changed predicate in a group rule is
       evaluated once with that occurrence overridden by the delta (any new
       derivation must use at least one inserted tuple, so this finds them
       all — possibly enumerating a derivation twice, which set semantics
       absorbs);
    2. the newly derived group tuples seed the ordinary semi-naive delta
       iteration of the group's recursive rules until no tuple is new.

    ``cache`` memoizes the compiled plans across calls (an update stream pays
    compilation once per rule shape); without one, plans compile per call,
    exactly as the fixpoint engine compiles per fixpoint.

    Returns the rows this call added to each group relation (seeds included).
    """
    cache = cache if cache is not None else PlanCache()
    group_set = set(group)
    inserted: Dict[str, Set[Row]] = {p: set(seeds.get(p, ())) for p in group}
    rules = [rule for predicate in group for rule in program.rules_for(predicate)]

    changed = {name for name, rows in external.items() if rows and name not in group_set}
    if changed:
        overlays = {
            name: Relation(f"delta_{name}", program.arity_of(name), external[name])
            for name in changed
            if name in program.predicates()
        }
        for rule in rules:
            for index, atom in enumerate(rule.body):
                if atom.predicate not in overlays:
                    continue
                plan = cache.get(rule, relations, first=index, stats=stats)
                target = derived[rule.head.predicate]
                produced = plan.evaluate(relations, stats=stats, overrides={index: overlays[atom.predicate]})
                new_rows = produced - target.rows()
                if new_rows:
                    target.union_update(new_rows)
                    inserted[rule.head.predicate] |= new_rows
                    stats.record_produced(len(new_rows))

    if group_is_recursive(program, group) and any(inserted.values()):
        group_rules = [rule for rule in rules if any(p in group_set for p in rule.body_predicates())]
        delta_plans = []
        for rule in group_rules:
            for index, atom in enumerate(rule.body):
                if atom.predicate in group_set:
                    plan = cache.get(rule, relations, first=index, stats=stats)
                    delta_plans.append((atom.predicate, index, plan))

        current = {p: Relation(f"delta_{p}", derived[p].arity, inserted[p]) for p in group}
        spare = {p: Relation(f"delta_{p}", derived[p].arity) for p in group}
        while any(not current[p].is_empty() for p in group):
            stats.record_iteration()
            stats.record_state(
                sum(len(current[p]) for p in group),
                sum(len(current[p]) * derived[p].arity for p in group),
            )
            for delta_predicate, occurrence, plan in delta_plans:
                delta_relation = current[delta_predicate]
                if delta_relation.is_empty():
                    continue
                head = plan.rule.head.predicate
                produced = plan.evaluate(relations, stats=stats, overrides={occurrence: delta_relation})
                new_rows = produced - derived[head].rows()
                if new_rows:
                    spare[head].union_update(new_rows)
            for predicate in group:
                added_rows = spare[predicate].rows() - derived[predicate].rows()
                if added_rows:
                    derived[predicate].union_update(added_rows)
                    inserted[predicate] |= added_rows
                    stats.record_produced(len(added_rows))
                stale = current[predicate]
                stale.clear()
                current[predicate] = spare[predicate]
                spare[predicate] = stale

    return inserted


def propagate_insertions(
    program: Program,
    database: Database,
    derived: Dict[str, Relation],
    deltas: Dict[str, Set[Row]],
    stats: Optional[EvaluationStats] = None,
    cache: Optional[PlanCache] = None,
) -> Dict[str, Set[Row]]:
    """Continue a finished fixpoint after base-fact insertions.

    ``derived`` is the materialized minimal model of ``program`` over the
    database *before* the insertion; ``database`` is the database *after* it;
    ``deltas`` maps relation names to the rows just inserted (EDB relations,
    or base facts of IDB predicates).  One delta round per stratum — seeded
    by the inserted tuples instead of the whole relations — brings ``derived``
    to the new minimal model in place, and the per-IDB sets of rows actually
    added are returned.  This is the insertion half of incremental view
    maintenance (:mod:`repro.incremental`): the same compiled delta variants
    the fixpoint uses across iterations, reused across *time*.

    Maintenance joins run through the generated kernels like every other
    compiled-plan evaluation, but over the *user-value* materialized
    relations rather than an interned encoding: the view's rows live across
    updates and are served to queries directly, so there is no single
    evaluation boundary at which codes could be decoded.
    """
    stats = stats if stats is not None else EvaluationStats()
    cache = cache if cache is not None else PlanCache()
    relations = overlay_relations(database, derived)
    known = program.predicates()
    external: Dict[str, Set[Row]] = {
        name: set(rows) for name, rows in deltas.items() if rows and name in known
    }
    inserted_total: Dict[str, Set[Row]] = {p: set() for p in derived}
    for group in cached_evaluation_strata(program):
        seeds: Dict[str, Set[Row]] = {p: set() for p in group}
        for predicate in group:
            # base facts inserted directly into a group predicate's relation
            for row in external.get(predicate, ()):
                if derived[predicate].add(row):
                    seeds[predicate].add(row)
                    stats.record_produced()
        inserted = group_insert_closure(
            program, group, relations, derived, seeds, external, stats, cache
        )
        for predicate in group:
            if inserted[predicate]:
                inserted_total[predicate] |= inserted[predicate]
                external[predicate] = inserted[predicate]
    total = sum(len(rows) for rows in inserted_total.values())
    if total:
        stats.record_inserted(total)
    return inserted_total


def seminaive_query(
    program: Program,
    database: Database,
    predicate: str,
    bindings: Optional[Dict[int, object]] = None,
    stats: Optional[EvaluationStats] = None,
) -> Tuple[Set[Row], EvaluationStats]:
    """Answer a ``column = constant`` selection by full semi-naive evaluation + selection.

    This is the "evaluate everything, then select" strategy that the paper's
    one-sided algorithms are designed to beat when the selection is narrow.
    """
    stats = stats if stats is not None else EvaluationStats()
    derived = seminaive_evaluate(program, database, stats)
    if predicate not in derived:
        return set(), stats
    relation = derived[predicate]
    bindings = bindings or {}
    answers = {row for row in relation if all(row[c] == v for c, v in bindings.items())}
    return answers, stats
