"""Bound-aware conjunctive-query (rule body) evaluation.

Every evaluation strategy in the library — naive and semi-naive bottom-up,
magic sets, counting, and the one-sided schema of Figure 9 — ultimately has to
evaluate a conjunction of atoms against stored relations with some variables
already bound.  This module implements that single primitive well:

* atoms are joined in a greedy *bound-first* order, so a bound variable or a
  constant restricts the index probe on the stored relation (this is what
  makes Property 3, "no unrestricted lookups", achievable and measurable);
* every probe is recorded in an :class:`~repro.engine.instrumentation.EvaluationStats`;
* atoms over predicates that have no relation are treated as empty, so partial
  databases simply yield no derivations instead of crashing.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.relation import Relation, Row, Value
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable, is_variable
from .instrumentation import EvaluationStats

Bindings = Dict[Variable, Value]
RelationMap = Mapping[str, Relation]


def as_relation(name: str, arity: int, rows: Iterable[Row]) -> Relation:
    """Wrap a transient tuple set into an indexable :class:`Relation`.

    Semi-naive deltas and the carry/seen sets of the one-sided schema are
    wrapped through this helper so that joins against them stay indexed.
    """
    return Relation(name, arity, rows)


def _atom_bound_columns(atom: Atom, bound: Set[Variable]) -> int:
    """How many argument positions of ``atom`` are bound under ``bound``."""
    count = 0
    for arg in atom.args:
        if isinstance(arg, Constant) or (is_variable(arg) and arg in bound):
            count += 1
    return count


def plan_order(
    atoms: Sequence[Atom],
    initially_bound: Set[Variable],
    relations: Optional[RelationMap] = None,
    first: Optional[int] = None,
) -> List[int]:
    """Greedy join order: repeatedly pick the atom with the most bound columns.

    Ties are broken by preferring smaller stored relations (when sizes are
    available) and then by textual order, which keeps plans deterministic.
    Returns the atom indexes in evaluation order.  When ``first`` is given,
    that atom is forced to the front (semi-naive plans put the delta
    occurrence first — it is the most selective input by construction) and
    the rest are planned greedily with its variables counted as bound.
    """
    remaining = list(range(len(atoms)))
    bound = set(initially_bound)
    order: List[int] = []
    if first is not None:
        remaining.remove(first)
        order.append(first)
        bound |= atoms[first].variable_set()
    while remaining:
        def sort_key(index: int) -> Tuple[int, int, int]:
            atom = atoms[index]
            bound_columns = _atom_bound_columns(atom, bound)
            size = 0
            if relations is not None and atom.predicate in relations:
                size = len(relations[atom.predicate])
            return (-bound_columns, size, index)

        best = min(remaining, key=sort_key)
        remaining.remove(best)
        order.append(best)
        bound |= atoms[best].variable_set()
    return order


def _match_rows(
    atom: Atom,
    relation: Optional[Relation],
    binding: Bindings,
    stats: Optional[EvaluationStats],
) -> List[Bindings]:
    """All extensions of ``binding`` that make ``atom`` true in ``relation``."""
    if relation is None:
        if stats is not None:
            stats.record_lookup(0, restricted=True)
        return []
    bound_columns: Dict[int, Value] = {}
    for position, arg in enumerate(atom.args):
        if isinstance(arg, Constant):
            bound_columns[position] = arg.value
        elif is_variable(arg) and arg in binding:
            bound_columns[position] = binding[arg]
    rows = relation.lookup(bound_columns)
    if stats is not None:
        stats.record_lookup(len(rows), restricted=bool(bound_columns))
    results: List[Bindings] = []
    for row in rows:
        extended = dict(binding)
        consistent = True
        for position, arg in enumerate(atom.args):
            if not is_variable(arg):
                continue
            value = row[position]
            existing = extended.get(arg)
            if existing is None:
                extended[arg] = value
            elif existing != value:
                consistent = False
                break
        if consistent:
            results.append(extended)
    return results


def evaluate_body(
    atoms: Sequence[Atom],
    relations: RelationMap,
    bindings: Optional[Bindings] = None,
    stats: Optional[EvaluationStats] = None,
    order: Optional[Sequence[int]] = None,
) -> List[Bindings]:
    """All satisfying assignments of a conjunction of atoms.

    Parameters
    ----------
    atoms:
        The conjunction (a rule body, an expansion string, ...).
    relations:
        Name → relation map covering the EDB and any already-derived IDB
        relations.  Missing predicates are treated as empty.
    bindings:
        Variables already bound (e.g. the query's "column = constant"
        selection pushed into the head).
    stats:
        Optional counter sink.
    order:
        Explicit evaluation order (atom indexes); by default a greedy
        bound-first order is planned.
    """
    initial: Bindings = dict(bindings or {})
    if order is None:
        order = plan_order(atoms, set(initial), relations)
    frontier: List[Bindings] = [initial]
    for index in order:
        atom = atoms[index]
        relation = relations.get(atom.predicate)
        next_frontier: List[Bindings] = []
        for binding in frontier:
            next_frontier.extend(_match_rows(atom, relation, binding, stats))
        frontier = next_frontier
        if not frontier:
            return []
    return frontier


def evaluate_body_project(
    atoms: Sequence[Atom],
    relations: RelationMap,
    output: Sequence[Variable],
    bindings: Optional[Bindings] = None,
    stats: Optional[EvaluationStats] = None,
) -> Set[Row]:
    """Satisfying assignments projected onto ``output`` (a set of value tuples).

    Output variables that the body never binds (possible for queries over
    partially instantiated heads) appear as ``None`` in the result tuples.
    """
    assignments = evaluate_body(atoms, relations, bindings, stats)
    result: Set[Row] = set()
    for assignment in assignments:
        result.add(tuple(assignment.get(var) for var in output))
    if stats is not None:
        stats.record_produced(len(result))
    return result


def evaluate_rule(
    rule: Rule,
    relations: RelationMap,
    bindings: Optional[Bindings] = None,
    stats: Optional[EvaluationStats] = None,
) -> Set[Row]:
    """Head tuples derived by one application of ``rule``.

    Constants in the head are emitted as-is; head variables take their values
    from the satisfying assignments of the body.
    """
    assignments = evaluate_body(rule.body, relations, bindings, stats)
    result: Set[Row] = set()
    for assignment in assignments:
        row: List[Value] = []
        grounded = True
        for arg in rule.head.args:
            if isinstance(arg, Constant):
                row.append(arg.value)
            else:
                value = assignment.get(arg)
                if value is None:
                    grounded = False
                    break
                row.append(value)
        if grounded:
            result.add(tuple(row))
    if stats is not None:
        stats.record_produced(len(result))
    return result


def evaluate_rule_with_delta(
    rule: Rule,
    relations: RelationMap,
    delta_predicate: str,
    delta_relation: Relation,
    stats: Optional[EvaluationStats] = None,
) -> Set[Row]:
    """Semi-naive rule application: one body occurrence of ``delta_predicate``
    ranges over the delta, the others over the full relations.

    For each occurrence of the delta predicate in the body, the rule is
    evaluated once with that occurrence bound to ``delta_relation``; the union
    of the results is returned.  (For linear rules there is exactly one
    occurrence, so this degenerates to the textbook delta rule.)
    """
    result: Set[Row] = set()
    occurrences = [i for i, atom in enumerate(rule.body) if atom.predicate == delta_predicate]
    for occurrence in occurrences:
        def relation_for(index: int, atom: Atom) -> Optional[Relation]:
            if index == occurrence:
                return delta_relation
            return relations.get(atom.predicate)

        # Evaluate with a per-occurrence relation override.  We reuse
        # evaluate_body by temporarily renaming the delta occurrence to a
        # reserved predicate name bound to the delta relation.
        reserved = f"__delta__{delta_predicate}"
        patched_body = list(rule.body)
        patched_body[occurrence] = Atom(reserved, rule.body[occurrence].args)
        patched_relations: Dict[str, Relation] = dict(relations)
        patched_relations[reserved] = delta_relation
        patched_rule = Rule(rule.head, tuple(patched_body))
        result |= evaluate_rule(patched_rule, patched_relations, stats=stats)
    return result
