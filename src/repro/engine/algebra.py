"""Instrumented relational-algebra operators.

Figures 7 and 8 of the paper are written directly in relational algebra
(``carry := π1(σ$2=n0(b))``, ``carry := π2(carry ⋈ a)`` ...).  This module
provides exactly those operators over either :class:`~repro.datalog.relation.Relation`
objects or plain Python sets of tuples, recording every probe in an
:class:`~repro.engine.instrumentation.EvaluationStats` so the literal
algorithm transcriptions in :mod:`repro.core.algorithms` stay one line per
paper line.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Set, Tuple, Union

from ..datalog.relation import Relation, Row, Value
from .instrumentation import EvaluationStats

TupleSet = Set[Row]
RelationLike = Union[Relation, TupleSet]


def _rows(source: RelationLike) -> Iterable[Row]:
    if isinstance(source, Relation):
        return source.rows()
    return source


def select(
    source: RelationLike,
    bindings: Mapping[int, Value],
    stats: Optional[EvaluationStats] = None,
) -> TupleSet:
    """``σ`` — tuples of ``source`` whose columns match ``bindings``.

    When ``source`` is a stored :class:`Relation`, the lookup goes through the
    relation's index and only matching tuples are counted as examined; a
    selection over a transient tuple set scans it.
    """
    if isinstance(source, Relation):
        matched = source.lookup(dict(bindings))
        if stats is not None:
            stats.record_lookup(len(matched), restricted=bool(bindings))
        return set(matched)
    result = {row for row in source if all(row[c] == v for c, v in bindings.items())}
    if stats is not None:
        stats.record_lookup(len(source), restricted=bool(bindings))
    return result


def project(source: RelationLike, columns: Sequence[int], stats: Optional[EvaluationStats] = None) -> TupleSet:
    """``π`` — projection onto the listed columns (duplicates removed)."""
    result = {tuple(row[c] for c in columns) for row in _rows(source)}
    if stats is not None:
        stats.record_produced(len(result))
    return result


def join(
    left: TupleSet,
    right: RelationLike,
    left_column: int,
    right_column: int,
    stats: Optional[EvaluationStats] = None,
) -> TupleSet:
    """Equi-join ``left ⋈ left.$i = right.$j right``.

    The result tuples are the concatenation of the left tuple and the right
    tuple.  When ``right`` is a stored relation, each left tuple issues one
    restricted index probe (this is the "use values from the previous string"
    step of the paper's algorithms); when it is a transient set, a hash join
    is used.
    """
    result: TupleSet = set()
    if isinstance(right, Relation):
        for left_row in left:
            matches = right.lookup({right_column: left_row[left_column]})
            if stats is not None:
                stats.record_lookup(len(matches), restricted=True)
            for right_row in matches:
                result.add(left_row + right_row)
    else:
        index: dict = {}
        for right_row in right:
            index.setdefault(right_row[right_column], []).append(right_row)
        for left_row in left:
            for right_row in index.get(left_row[left_column], ()):  # type: ignore[arg-type]
                result.add(left_row + right_row)
        if stats is not None:
            stats.record_lookup(len(right), restricted=True)
    if stats is not None:
        stats.record_produced(len(result))
    return result


def semijoin(
    keys: Set[Value],
    source: RelationLike,
    column: int,
    stats: Optional[EvaluationStats] = None,
) -> TupleSet:
    """Tuples of ``source`` whose ``column`` value appears in ``keys``.

    This is the restricted lookup used by lines 5 of Figures 7 and 8: ask the
    stored relation only for tuples joining with the current ``carry``.
    """
    result: TupleSet = set()
    if isinstance(source, Relation):
        for key in keys:
            matches = source.lookup({column: key})
            if stats is not None:
                stats.record_lookup(len(matches), restricted=True)
            result.update(matches)
    else:
        for row in source:
            if row[column] in keys:
                result.add(row)
        if stats is not None:
            stats.record_lookup(len(source), restricted=True)
    if stats is not None:
        stats.record_produced(len(result))
    return result


def union(left: TupleSet, right: TupleSet, stats: Optional[EvaluationStats] = None) -> TupleSet:
    """``∪`` — set union."""
    result = left | right
    if stats is not None:
        stats.record_produced(max(0, len(result) - len(left)))
    return result


def difference(left: TupleSet, right: TupleSet) -> TupleSet:
    """``−`` — set difference (the ``carry := carry − seen`` step)."""
    return left - right


def scan(source: RelationLike, stats: Optional[EvaluationStats] = None) -> TupleSet:
    """A full, *unrestricted* scan of ``source``.

    Kept separate from :func:`select` so that algorithms which genuinely need
    a full scan (e.g. the cross-product rewriting of Section 4) show up with a
    nonzero ``unrestricted_lookups`` counter.
    """
    rows = set(_rows(source))
    if stats is not None:
        stats.record_lookup(len(rows), restricted=False)
    return rows


def columns_of(source: RelationLike) -> int:
    """Arity of a relation or of the tuples in a set (0 for an empty set)."""
    if isinstance(source, Relation):
        return source.arity
    for row in source:
        return len(row)
    return 0
