"""Compiled rule plans — the engine-v2 hot path.

The interpreted evaluator in :mod:`repro.engine.cq_eval` re-plans the join
order and re-discovers each atom's bound/free structure on *every* rule
application; inside a fixpoint that work is identical across iterations.  This
module performs that analysis exactly once per rule (per fixpoint) and
compiles it into a flat plan:

* a **join order** (greedy bound-first, the same policy ``plan_order`` uses),
* per atom, a **bound-column signature**: which positions carry constants,
  which are filled from variables bound by earlier atoms, which positions
  repeat a variable first seen in the same atom, and which introduce new
  variables, and
* a **projection map** turning a satisfying assignment directly into a head
  tuple.

Variables are erased at compile time: an assignment is a flat tuple of value
*slots* (assigned in discovery order along the plan), so the inner evaluation
loop does no dictionary copying and no per-row ``isinstance`` dispatch.  The
instrumentation contract is unchanged — every probe against a stored relation
is still recorded through :meth:`EvaluationStats.record_lookup`, so the
paper's restricted/unrestricted accounting (Property 3) is preserved.

Semi-naive evaluation compiles one **delta variant** per occurrence of each
recursive predicate: the variant forces that occurrence to the front of the
join order (the delta is the most selective input by construction) and reads
it from an *override* relation at evaluation time, so the same compiled plan
is reused by every delta iteration of the fixpoint.

On top of the plan, :mod:`repro.engine.kernels` generates a fused nested-loop
closure per plan (probe keys, equality checks, slot stores and head
projection inlined into straight-line Python); :meth:`CompiledRule.join` and
:meth:`CompiledRule.evaluate` dispatch to it whenever kernels are enabled and
every body relation resolves, and otherwise run the interpreted step machine
below.  Both paths record identical instrumentation.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.relation import Relation, Row, Value
from ..datalog.rules import Rule
from ..datalog.terms import Constant, Variable
from .columnar import columnar_enabled, leapfrog_join, wcoj_eligible
from .cq_eval import plan_order
from .instrumentation import EvaluationStats, active_profile
from .kernels import build_kernel, kernels_enabled

RelationMap = Mapping[str, Relation]


class AtomStep:
    """One join step of a compiled plan (one body atom, analysed).

    Attributes
    ----------
    atom_index:
        The atom's position in the *original* rule body; evaluation-time
        overrides (semi-naive deltas) are keyed by this index.
    const_cols / bound_cols:
        The probe signature: ``(position, constant value)`` pairs and
        ``(position, slot)`` pairs restricting the index lookup.
    probe_columns / key_ops:
        The same signature pre-sorted for :meth:`Relation.probe`:
        ``probe_columns`` is the sorted tuple of restricted positions and
        ``key_ops`` builds the matching index key — ``(True, constant)`` or
        ``(False, slot)`` per position.
    check_cols:
        ``(position, earlier position)`` pairs for variables repeated within
        this atom whose first occurrence is also in this atom.
    store_cols:
        ``(position, slot)`` pairs introducing new slots, in slot order.
    """

    __slots__ = (
        "atom_index",
        "predicate",
        "const_cols",
        "bound_cols",
        "probe_columns",
        "key_ops",
        "check_cols",
        "store_cols",
    )

    def __init__(
        self,
        atom_index: int,
        predicate: str,
        const_cols: Tuple[Tuple[int, Value], ...],
        bound_cols: Tuple[Tuple[int, int], ...],
        check_cols: Tuple[Tuple[int, int], ...],
        store_cols: Tuple[Tuple[int, int], ...],
    ) -> None:
        self.atom_index = atom_index
        self.predicate = predicate
        self.const_cols = const_cols
        self.bound_cols = bound_cols
        self.check_cols = check_cols
        self.store_cols = store_cols
        signature = {position: (True, value) for position, value in const_cols}
        signature.update({position: (False, slot) for position, slot in bound_cols})
        self.probe_columns = tuple(sorted(signature))
        self.key_ops = tuple(signature[position] for position in self.probe_columns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AtomStep({self.predicate}@{self.atom_index} const={self.const_cols} "
            f"bound={self.bound_cols} check={self.check_cols} store={self.store_cols})"
        )


class CompiledRule:
    """A rule with its join order, probe signatures and projection precomputed.

    Build with :func:`compile_rule`; evaluate with :meth:`evaluate`.  A
    compiled rule is immutable and reusable across fixpoint iterations — the
    whole point is that :meth:`evaluate` does no planning work.
    """

    __slots__ = (
        "rule",
        "order",
        "steps",
        "head_ops",
        "producible",
        "initial_slots",
        "slot_count",
        "_kernels",
    )

    def __init__(
        self,
        rule: Rule,
        order: Tuple[int, ...],
        steps: Tuple[AtomStep, ...],
        head_ops: Tuple[Tuple[bool, object], ...],
        producible: bool,
        initial_slots: Tuple[Variable, ...],
        slot_count: int,
    ) -> None:
        self.rule = rule
        self.order = order
        self.steps = steps
        #: per head position: ``(True, constant value)`` or ``(False, slot)``
        self.head_ops = head_ops
        #: False when some head variable is bound by neither the body nor the
        #: initial bindings, so no grounded head tuple can ever be produced
        self.producible = producible
        #: variables pre-bound at compile time, in slot order (slots 0..k-1)
        self.initial_slots = initial_slots
        self.slot_count = slot_count
        #: lazily generated ``[join_kernel, eval_kernel]`` (each built on
        #: first use — a plan evaluated only through one entry point never
        #: pays codegen for the other)
        self._kernels = [None, None]

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _initial(self, bindings: Optional[Mapping[Variable, Value]]) -> Tuple[Value, ...]:
        if not self.initial_slots:
            return ()
        if bindings is None:
            raise ValueError("compiled rule expects bindings for its bound variables")
        return tuple(bindings[variable] for variable in self.initial_slots)

    def _resolve(
        self,
        relations: RelationMap,
        overrides: Optional[Mapping[int, Relation]],
    ) -> Optional[Tuple[Relation, ...]]:
        """Per-step relations, or ``None`` when some body relation is missing.

        The missing case falls back to the interpreted path so the lookup
        that discovers the absence is recorded at the step where evaluation
        actually stops, exactly as before.
        """
        resolved: List[Relation] = []
        for step in self.steps:
            relation = None
            if overrides is not None:
                relation = overrides.get(step.atom_index)
            if relation is None:
                relation = relations.get(step.predicate)
            if relation is None:
                return None
            resolved.append(relation)
        return tuple(resolved)

    def kernels(self):
        """The plan's generated ``(join_kernel, eval_kernel)`` pair (memoized)."""
        return (self._kernel(False), self._kernel(True) if self.producible else None)

    def _kernel(self, project: bool):
        index = 1 if project else 0
        kernel = self._kernels[index]
        if kernel is None:
            kernel = build_kernel(self, project)
            self._kernels[index] = kernel
        return kernel

    def join(
        self,
        relations: RelationMap,
        stats: Optional[EvaluationStats] = None,
        overrides: Optional[Mapping[int, Relation]] = None,
        bindings: Optional[Mapping[Variable, Value]] = None,
    ) -> List[Tuple[Value, ...]]:
        """All satisfying assignments as slot tuples (no head projection).

        ``overrides`` maps original body-atom indexes to replacement relations
        (the semi-naive delta hook).  ``bindings`` supplies values for the
        variables declared ``bound`` at compile time; all of them must be
        given.
        """
        initial = self._initial(bindings)
        profile = active_profile()
        if kernels_enabled():
            resolved = self._resolve(relations, overrides)
            if resolved is not None:
                if profile is not None:
                    profile.record_dispatch(self, "kernel")
                return self._kernel(False)(resolved, initial, stats)
        if profile is not None:
            profile.record_dispatch(self, "interpreted")
        return self._join_interpreted(relations, stats, overrides, initial)

    def _join_interpreted(
        self,
        relations: RelationMap,
        stats: Optional[EvaluationStats],
        overrides: Optional[Mapping[int, Relation]],
        initial: Tuple[Value, ...],
    ) -> List[Tuple[Value, ...]]:
        """The step-machine evaluator (the ``REPRO_KERNELS=off`` path)."""
        frontier: List[Tuple[Value, ...]] = [initial]
        for step in self.steps:
            relation = None
            if overrides is not None:
                relation = overrides.get(step.atom_index)
            if relation is None:
                relation = relations.get(step.predicate)
            if relation is None:
                if stats is not None:
                    stats.record_lookup(0, restricted=True)
                return []
            next_frontier: List[Tuple[Value, ...]] = []
            probe_columns = step.probe_columns
            key_ops = step.key_ops
            check_cols = step.check_cols
            store_cols = step.store_cols
            restricted = bool(probe_columns)
            single_key = key_ops[0] if len(key_ops) == 1 else None
            probe = relation.probe
            for current in frontier:
                if restricted:
                    if single_key is not None:
                        is_const, value = single_key
                        key: object = value if is_const else current[value]
                    else:
                        key = tuple(value if is_const else current[value] for is_const, value in key_ops)
                    rows = probe(probe_columns, key)
                else:
                    rows = relation.rows()
                if stats is not None:
                    stats.record_lookup(len(rows), restricted=restricted)
                for row in rows:
                    if check_cols:
                        ok = True
                        for position, earlier in check_cols:
                            if row[position] != row[earlier]:
                                ok = False
                                break
                        if not ok:
                            continue
                    if store_cols:
                        next_frontier.append(current + tuple(row[position] for position, _slot in store_cols))
                    else:
                        next_frontier.append(current)
            frontier = next_frontier
            if not frontier:
                return []
        return frontier

    def evaluate(
        self,
        relations: RelationMap,
        stats: Optional[EvaluationStats] = None,
        overrides: Optional[Mapping[int, Relation]] = None,
        bindings: Optional[Mapping[Variable, Value]] = None,
    ) -> Set[Row]:
        """Head tuples derived by one application of the compiled rule."""
        if not self.producible:
            return set()
        profile = active_profile()
        if overrides is None and bindings is None and columnar_enabled():
            # worst-case-optimal dispatch: cyclic nonrecursive bodies (e.g.
            # the triangle query) run the leapfrog join, whose tuple visits
            # are bounded by the AGM bound instead of the best binary plan's
            # intermediate size (see repro.engine.columnar)
            resolved = wcoj_eligible(self, relations)
            if resolved is not None:
                if profile is not None:
                    profile.record_dispatch(
                        self, "leapfrog", "cyclic body, worst-case-optimal"
                    )
                result = leapfrog_join(self, resolved, stats)
                if stats is not None:
                    stats.record_produced(len(result))
                return result
        if kernels_enabled():
            initial = self._initial(bindings)
            resolved = self._resolve(relations, overrides)
            if resolved is not None:
                if profile is not None:
                    profile.record_dispatch(self, "kernel")
                result = self._kernel(True)(resolved, initial, stats)
                if stats is not None:
                    stats.record_produced(len(result))
                return result
            if profile is not None:
                profile.record_dispatch(self, "interpreted", "unresolved body relation")
            assignments = self._join_interpreted(relations, stats, overrides, initial)
        else:
            if profile is not None:
                profile.record_dispatch(self, "interpreted")
            assignments = self._join_interpreted(relations, stats, overrides, self._initial(bindings))
        head_ops = self.head_ops
        result = set()
        for assignment in assignments:
            result.add(tuple(value if is_const else assignment[value] for is_const, value in head_ops))
        if stats is not None:
            stats.record_produced(len(result))
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledRule({self.rule!s} order={self.order})"


def compile_rule(
    rule: Rule,
    relations: Optional[RelationMap] = None,
    bound: Sequence[Variable] = (),
    first: Optional[int] = None,
) -> CompiledRule:
    """Compile ``rule`` into a reusable join plan.

    Parameters
    ----------
    rule:
        The rule to compile.
    relations:
        Optional name → relation map used only for the planner's size-based
        tie-breaking; sizes are read once, at compile time.
    bound:
        Variables that will be supplied as ``bindings`` at evaluation time
        (e.g. a query's selection constants); they occupy the first slots.
    first:
        Index of a body atom forced to the front of the join order (the
        semi-naive delta occurrence); the remaining atoms are planned greedily
        with that atom's variables counted as bound.
    """
    slots: Dict[Variable, int] = {}
    for variable in bound:
        if variable not in slots:
            slots[variable] = len(slots)
    initial_slots = tuple(sorted(slots, key=slots.__getitem__))

    order = plan_order(rule.body, set(slots), relations, first=first)

    steps: List[AtomStep] = []
    for atom_index in order:
        atom = rule.body[atom_index]
        const_cols: List[Tuple[int, Value]] = []
        bound_cols: List[Tuple[int, int]] = []
        check_cols: List[Tuple[int, int]] = []
        store_cols: List[Tuple[int, int]] = []
        first_position: Dict[Variable, int] = {}
        pending: List[Tuple[int, Variable]] = []
        for position, arg in enumerate(atom.args):
            if isinstance(arg, Constant):
                const_cols.append((position, arg.value))
            elif arg in slots:
                bound_cols.append((position, slots[arg]))
            elif arg in first_position:
                # repeated within this atom: the row must agree with the first
                # occurrence (the variable has no slot to probe with yet)
                check_cols.append((position, first_position[arg]))
            else:
                first_position[arg] = position
                pending.append((position, arg))
        for position, variable in pending:
            slots[variable] = len(slots)
            store_cols.append((position, slots[variable]))
        steps.append(
            AtomStep(
                atom_index,
                atom.predicate,
                tuple(const_cols),
                tuple(bound_cols),
                tuple(check_cols),
                tuple(store_cols),
            )
        )

    head_ops: List[Tuple[bool, object]] = []
    producible = True
    for arg in rule.head.args:
        if isinstance(arg, Constant):
            head_ops.append((True, arg.value))
        elif arg in slots:
            head_ops.append((False, slots[arg]))
        else:
            producible = False
            head_ops.append((False, -1))

    return CompiledRule(
        rule,
        tuple(order),
        tuple(steps),
        tuple(head_ops),
        producible,
        initial_slots,
        len(slots),
    )


class PlanCache:
    """Memoized :func:`compile_rule` keyed on ``(rule, first, bound)``.

    A compiled plan depends only on the rule, the forced-first atom and the
    compile-time bound variables — never on relation contents — so callers
    that evaluate the same rule shapes repeatedly (a fixpoint, an incremental
    maintenance stream) pay the compilation cost once per shape.
    """

    def __init__(self, max_plans: Optional[int] = None) -> None:
        self._plans: Dict[Tuple[Rule, Optional[int], Tuple[Variable, ...]], CompiledRule] = {}
        #: optional size cap for module-lifetime caches: the cache is cleared
        #: wholesale when full, bounding memory without per-entry bookkeeping
        self._max_plans = max_plans

    def get(
        self,
        rule: Rule,
        relations: Optional[RelationMap] = None,
        first: Optional[int] = None,
        bound: Tuple[Variable, ...] = (),
        stats: Optional[EvaluationStats] = None,
    ) -> CompiledRule:
        """The memoized compiled plan; compiles (and counts it) on first use."""
        key = (rule, first, bound)
        plan = self._plans.get(key)
        profile = active_profile()
        if plan is None:
            plan = compile_rule(rule, relations, bound=bound, first=first)
            if self._max_plans is not None and len(self._plans) >= self._max_plans:
                self._plans.clear()
            self._plans[key] = plan
            if stats is not None:
                stats.record_plans_compiled()
            if profile is not None:
                profile.record_plan_cache(False)
        elif profile is not None:
            profile.record_plan_cache(True)
        return plan

    def __len__(self) -> int:
        return len(self._plans)


def compile_delta_variants(
    rule: Rule,
    delta_predicates: Set[str],
    relations: Optional[RelationMap] = None,
) -> List[Tuple[str, int, CompiledRule]]:
    """One compiled plan per occurrence of each delta predicate in ``rule``.

    Returns ``(delta predicate, occurrence index, compiled variant)`` triples;
    each variant forces its occurrence to the front of the join order and
    reads it through ``overrides={occurrence index: delta relation}``.
    """
    variants: List[Tuple[str, int, CompiledRule]] = []
    for index, atom in enumerate(rule.body):
        if atom.predicate in delta_predicates:
            variants.append((atom.predicate, index, compile_rule(rule, relations, first=index)))
    return variants


def compile_program_rules(
    rules: Sequence[Rule],
    relations: Optional[RelationMap] = None,
) -> List[CompiledRule]:
    """Compile a batch of rules against one snapshot of relation sizes."""
    return [compile_rule(rule, relations) for rule in rules]
