"""Generated join kernels — ``exec``-compiled fused loops for compiled plans.

:class:`~repro.engine.compile.CompiledRule` already hoists all planning out
of the fixpoint, but its interpreted :meth:`join` still pays a per-row
machine: a frontier list per step, a ``key_ops`` dispatch per probe, a tuple
concatenation per stored slot and a ``record_lookup`` method call per probe.
This module erases that machinery with code generation: each plan is turned
into Python *source* for one flat nested loop — probe-key construction,
within-atom equality checks, slot stores and head projection fused inline —
and ``exec``-compiled into a closure that runs at the speed of the bytecode
interpreter's tightest loops.

For the delta variant of a transitive-closure rule the generated kernel is
literally::

    def _kernel(rels, initial, stats):
        ...
        for row0 in rows0:          # unrestricted scan of the delta
            s0 = row0[0]
            s1 = row0[1]
            rows1 = get1(s0, _E)    # single dict lookup per probe
            _lk += 1; _ex += len(rows1)
            for row1 in rows1:
                out_add((row1[0], s1))

Instrumentation contract
------------------------
The kernels preserve :meth:`EvaluationStats.record_lookup` accounting
exactly: every probe against a stored relation contributes one lookup (one
*unrestricted* lookup for a scan) and its retrieved rows to
``tuples_examined``, identically to the interpreted path — the counters are
accumulated in locals and flushed once per kernel call, so the Fig. 7/8
restricted/unrestricted accounting and the maintenance counters pin to the
same values with kernels on or off.  A plan whose body references a missing
relation falls back to the interpreted path, which records the
missing-relation lookup at the step where evaluation actually stops.

The ``REPRO_KERNELS`` environment variable (``off``/``0``/``false``/``no``)
is the escape hatch: it forces every plan back onto the interpreted
evaluator, which is what the differential harness uses to assert
interpreted == kernel results tuple for tuple.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .flags import EngineFlag
from .instrumentation import active_profile

__all__ = [
    "build_kernel",
    "build_kernels",
    "kernel_mode",
    "kernel_source",
    "kernels_enabled",
    "set_kernels_enabled",
]

#: the ``REPRO_KERNELS`` switch (see :mod:`repro.engine.flags`)
KERNELS_FLAG = EngineFlag("REPRO_KERNELS")


def kernels_enabled() -> bool:
    """``True`` when compiled plans should run their generated kernels."""
    return KERNELS_FLAG.enabled()


def set_kernels_enabled(enabled: Optional[bool]) -> None:
    """Force kernels on/off; ``None`` restores the ``REPRO_KERNELS`` switch."""
    KERNELS_FLAG.set(enabled)


def kernel_mode(enabled: Optional[bool]):
    """Temporarily force kernels on or off (differential-testing hook)."""
    return KERNELS_FLAG.mode(enabled)


# ----------------------------------------------------------------------
# code generation
# ----------------------------------------------------------------------
def _emit(plan, project: bool) -> Tuple[str, Dict[str, object]]:
    """Source + exec environment for one kernel of ``plan``.

    ``project=True`` emits the *evaluate* kernel (head tuples, deduplicated
    into a set); ``project=False`` the *join* kernel (one slot tuple per
    satisfying assignment, duplicates preserved — the counting maintenance
    layer consumes assignment multiplicities).
    """
    env: Dict[str, object] = {"_E": ()}
    lines: List[str] = ["def _kernel(rels, initial, stats):"]
    w = lines.append
    body = "    "
    w(body + "_lk = 0; _ur = 0; _ex = 0")
    if project:
        w(body + "out = set()")
        w(body + "out_add = out.add")
    else:
        w(body + "out = []")
        w(body + "out_add = out.append")

    initial_count = len(plan.initial_slots)
    if initial_count:
        w(body + ", ".join(f"s{i}" for i in range(initial_count))
          + ("," if initial_count == 1 else "") + " = initial")

    # hoists: one index resolution / scan per step, done once per call (the
    # relations are static for the duration of one rule application)
    for i, step in enumerate(plan.steps):
        if step.probe_columns:
            env[f"COLS{i}"] = step.probe_columns
            w(body + f"get{i} = rels[{i}]._index_for(COLS{i}).get")
            for j, (is_const, value) in enumerate(step.key_ops):
                if is_const:
                    env[f"K{i}_{j}"] = value
        else:
            w(body + f"scan{i} = rels[{i}].rows()")
            w(body + f"nscan{i} = len(scan{i})")

    depth = body
    for i, step in enumerate(plan.steps):
        if step.probe_columns:
            parts = [
                (f"K{i}_{j}" if is_const else f"s{value}")
                for j, (is_const, value) in enumerate(step.key_ops)
            ]
            key = parts[0] if len(parts) == 1 else "(" + ", ".join(parts) + ")"
            w(depth + f"rows{i} = get{i}({key}, _E)")
            w(depth + f"_lk += 1; _ex += len(rows{i})")
        else:
            w(depth + f"rows{i} = scan{i}")
            w(depth + f"_lk += 1; _ur += 1; _ex += nscan{i}")
        w(depth + f"for row{i} in rows{i}:")
        depth += "    "
        for position, earlier in step.check_cols:
            w(depth + f"if row{i}[{position}] != row{i}[{earlier}]:")
            w(depth + "    continue")
        for position, slot in step.store_cols:
            w(depth + f"s{slot} = row{i}[{position}]")

    if project:
        parts = []
        for j, (is_const, value) in enumerate(plan.head_ops):
            if is_const:
                env[f"H{j}"] = value
                parts.append(f"H{j}")
            else:
                parts.append(f"s{value}")
    else:
        parts = [f"s{i}" for i in range(plan.slot_count)]
    emitted = "(" + ", ".join(parts) + ("," if len(parts) == 1 else "") + ")"
    w(depth + f"out_add({emitted})")

    w(body + "if stats is not None:")
    w(body + "    stats.lookups += _lk")
    w(body + "    stats.unrestricted_lookups += _ur")
    w(body + "    stats.tuples_examined += _ex")
    w(body + "return out")
    return "\n".join(lines) + "\n", env


#: source → compiled code object.  The generated source encodes only the
#: plan's *structure* (constants and column tuples live in the exec
#: environment), so plans recompiled per query — the unfolded evaluator
#: builds fresh plans per selection — reuse one code object per join shape
#: and pay only a cheap ``exec`` to close over their own constants.
_code_cache: Dict[str, object] = {}

#: (source, environment items) → finished kernel function.  One level above
#: the code cache: two plans with the same structure *and* the same embedded
#: constants (the common case for per-query recompiled plans, whose
#: selection constants travel through ``initial`` bindings rather than the
#: environment) share the very same function object.  Cleared wholesale at a
#: size cap so pathological constant churn cannot grow it without bound.
_function_cache: Dict[object, Callable] = {}
_FUNCTION_CACHE_LIMIT = 4096


def build_kernel(plan, project: bool) -> Callable:
    """One generated kernel for ``plan`` (eval when ``project``, else join)."""
    profile = active_profile()
    if profile is not None:
        profile.record_kernel_built(plan)
    source, env = _emit(plan, project)
    try:
        key = (source, tuple(sorted(env.items())))
        kernel = _function_cache.get(key)
    except TypeError:  # an unorderable/unhashable constant: skip this cache
        key = None
        kernel = None
    if kernel is not None:
        return kernel
    code = _code_cache.get(source)
    if code is None:
        code = compile(source, f"<kernel {'eval' if project else 'join'}>", "exec")
        _code_cache[source] = code
    namespace = dict(env)
    exec(code, namespace)  # noqa: S102 - the source is generated above, not user input
    kernel = namespace["_kernel"]
    kernel.__kernel_source__ = source
    if key is not None:
        if len(_function_cache) >= _FUNCTION_CACHE_LIMIT:
            _function_cache.clear()
        _function_cache[key] = kernel
    return kernel


def build_kernels(plan) -> Tuple[Callable, Optional[Callable]]:
    """``(join_kernel, eval_kernel)`` for ``plan``.

    ``eval_kernel`` is ``None`` for unproducible plans (a head variable bound
    nowhere), whose :meth:`evaluate` short-circuits to the empty set anyway.
    Plan objects build each kernel lazily on first use and memoize it, so —
    plans themselves being memoized in
    :class:`~repro.engine.compile.PlanCache` — each rule shape is
    code-generated at most once per fixpoint or maintenance stream.
    """
    join_kernel = build_kernel(plan, project=False)
    eval_kernel = build_kernel(plan, project=True) if plan.producible else None
    return join_kernel, eval_kernel


def kernel_source(plan, project: bool = True) -> str:
    """The generated source of one of ``plan``'s kernels (debugging aid)."""
    source, _env = _emit(plan, project)
    return source
