"""Engine feature flags — the shared env-var/override machinery.

Every engine fast path ships behind the same three-part switch:

* an environment variable (``REPRO_KERNELS``, ``REPRO_INTERN``,
  ``REPRO_COLUMNAR``) that turns the path off for a whole process
  (``off``/``0``/``false``/``no``/``disabled``);
* a tri-state programmatic override (``set_*_enabled``) where ``None``
  restores the environment variable's verdict; and
* a context manager (``*_mode``) that forces the flag for a scope and
  restores the previous override on exit — the differential harness's hook
  for pinning each execution mode.

:class:`EngineFlag` implements that contract once; :mod:`repro.engine.kernels`,
:mod:`repro.engine.domain` and :mod:`repro.engine.columnar` each instantiate
it and re-export their historical function names on top.

Beyond on/off, a flag can carry a *forcing* state (``force``/``always``).
The columnar engine uses it: ``on`` means "batch execution where the adaptive
planner predicts a win", while ``force`` bypasses the prediction so tests can
exercise the batch path on workloads too small to profit from it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Optional, Union

__all__ = ["DISABLING_VALUES", "FORCING_VALUES", "EngineFlag"]

#: environment values that turn a flag off
DISABLING_VALUES = frozenset(("off", "0", "false", "no", "disabled"))
#: environment values that additionally bypass adaptive heuristics
FORCING_VALUES = frozenset(("force", "always"))


class EngineFlag:
    """One engine feature switch: environment variable + tri-state override."""

    __slots__ = ("env_var", "default", "_forced")

    def __init__(self, env_var: str, default: str = "on") -> None:
        self.env_var = env_var
        self.default = default
        #: override installed by :meth:`set`; ``None`` defers to the
        #: environment variable
        self._forced: Optional[str] = None

    def state(self) -> str:
        """The effective setting string (override first, then environment)."""
        if self._forced is not None:
            return self._forced
        return os.environ.get(self.env_var, self.default).strip().lower()

    def enabled(self) -> bool:
        """``True`` unless the effective setting is a disabling value."""
        return self.state() not in DISABLING_VALUES

    def forced(self) -> bool:
        """``True`` when the effective setting bypasses adaptive heuristics."""
        return self.state() in FORCING_VALUES

    def set(self, enabled: Union[bool, str, None]) -> None:
        """Install an override; ``None`` restores the environment switch.

        Booleans map to ``"on"``/``"off"``; a string installs that state
        verbatim (e.g. ``"force"``).
        """
        if enabled is None:
            self._forced = None
        elif isinstance(enabled, str):
            self._forced = enabled.strip().lower()
        else:
            self._forced = "on" if enabled else "off"

    @contextmanager
    def mode(self, enabled: Union[bool, str, None]):
        """Temporarily force the flag for a scope (differential-testing hook)."""
        previous = self._forced
        self.set(enabled)
        try:
            yield
        finally:
            self._forced = previous

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EngineFlag({self.env_var}={self.state()!r})"
