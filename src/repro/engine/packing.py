"""Interned-row packing — the one codec behind snapshots, WAL and columns.

Three consumers share the "rows as little-endian ``int64`` codes" layout:

* the durable storage layer (:mod:`repro.storage.format` /
  :mod:`repro.storage.snapshot`) persists every relation as a packed code
  matrix;
* :meth:`repro.datalog.relation.Relation.packed_rows` /
  :meth:`~repro.datalog.relation.Relation.from_packed_rows` are the
  storage-facing row codec of the relation class; and
* the columnar engine (:mod:`repro.engine.columnar`) stores relations as one
  ``array('q')`` per column.

This module is the single implementation.  The row layout is unchanged from
the earlier per-module copies: ``arity`` codes per row, rows in sorted code
order, so the bytes for a given (relation, dictionary) pair stay
deterministic and snapshot files remain diffable and backward compatible.

The column view is the new part: :func:`columns_from_packed` turns a packed
matrix into per-column ``array('q')`` vectors with ``frombytes`` + extended
slicing — no per-tuple Python loop — which is what lets a snapshot hydrate a
column store (or a column store adopt a snapshot) at C speed.
:func:`unpack_rows` uses the same trick for row sets: the columns are sliced
out and re-zipped, so tuple construction happens inside ``zip`` rather than
in bytecode.

The module deliberately imports nothing from the rest of the package, so the
storage layer and the relation class can both delegate to it without import
cycles.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, List, Optional, Sequence, Set, Tuple

Row = Tuple[object, ...]

__all__ = [
    "columns_from_packed",
    "pack_columns",
    "pack_rows",
    "unpack_rows",
]


def pack_rows(
    rows: Iterable[Sequence[object]],
    intern: Optional[Callable[[object], int]] = None,
) -> Tuple[int, bytes]:
    """``(row_count, packed)`` — rows as sorted little-endian ``int64`` codes.

    Every value is mapped through ``intern`` (a domain dictionary's encoder;
    omit it when the rows already carry int codes), duplicates are
    eliminated, and the coded rows are written in sorted order — so the bytes
    for a given (rows, dictionary) pair are deterministic, which makes
    snapshots diffable and byte-identity checks meaningful.
    """
    if intern is None:
        coded = sorted({tuple(row) for row in rows})
    else:
        coded = sorted({tuple(intern(value) for value in row) for row in rows})
    flat = array("q", (code for row in coded for code in row))
    return len(coded), _as_little_endian_bytes(flat)


def columns_from_packed(packed: bytes, arity: int, count: int) -> List[array]:
    """Per-column ``array('q')`` vectors of a packed code matrix.

    The bulk hydration path: one ``frombytes`` plus ``arity`` extended
    slices, all at C speed — no per-tuple Python loop.  Row order is
    preserved (column ``j``'s ``i``-th entry belongs to row ``i``).
    """
    expected = count * arity * 8
    if len(packed) != expected:
        raise ValueError(f"packed rows have {len(packed)} bytes, expected {expected}")
    flat = array("q")
    flat.frombytes(packed)
    if _BIG_ENDIAN:
        flat.byteswap()
    return [flat[j::arity] for j in range(arity)]


def pack_columns(columns: Sequence[array], count: int) -> Tuple[int, bytes]:
    """``(row_count, packed)`` from per-column vectors (sorted row order).

    The inverse of :func:`columns_from_packed` modulo row order: rows are
    sorted (and deduplicated) to keep the packed form canonical.
    """
    if not columns:
        return (1, b"") if count else (0, b"")
    return pack_rows(zip(*columns))


def unpack_rows(
    packed: bytes,
    arity: int,
    count: int,
    decode: Optional[Callable[[int], object]] = None,
) -> Set[Row]:
    """The row set behind a packed code matrix.

    ``decode`` maps codes back to stored values (omit it to keep raw int
    rows).  Tuples are built by ``zip`` over the column vectors and values
    are decoded with ``map``, so no per-value bytecode loop runs.  The
    zero-arity matrices carry no bytes, so ``count`` disambiguates ``{}``
    from ``{()}``.
    """
    if arity == 0:
        return {()} if count else set()
    columns = columns_from_packed(packed, arity, count)
    if decode is not None:
        columns = [list(map(decode, column)) for column in columns]
    return set(zip(*columns))


_BIG_ENDIAN = array("q", [1]).tobytes() != (1).to_bytes(8, "little", signed=True)


def _as_little_endian_bytes(flat: array) -> bytes:
    if _BIG_ENDIAN:
        swapped = array("q", flat)
        swapped.byteswap()
        return swapped.tobytes()
    return flat.tobytes()
