"""Lightweight lifecycle tracing: spans, a bounded ring, a slow-query log.

A :class:`Tracer` records named spans with monotonic durations::

    with tracer.span("flush", rows=42):
        ...

Finished spans land in a bounded ring buffer (old spans fall off; tracing a
long-lived service never grows memory), spans slower than the configured
threshold are additionally kept in a separate slow log (the slow-query log —
its capacity is independent, so a burst of fast spans cannot evict the
interesting outliers), and the whole ring exports as JSONL for offline
tooling.  Exceptions inside a span still record it, tagged with the error.

:class:`NullTracer` is the default when observability is off: ``span()``
returns one shared no-op context manager, so a traced call site costs two
no-op method calls and nothing else.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import IO, Dict, List, Optional, Union

from ..engine.instrumentation import active_trace_id

__all__ = ["NullTracer", "Span", "Tracer"]

_now = time.perf_counter


class Span:
    """One finished span: name, wall-clock start, duration, attributes."""

    __slots__ = ("name", "started_at", "duration", "attributes")

    def __init__(
        self, name: str, started_at: float, duration: float, attributes: Dict[str, object]
    ) -> None:
        self.name = name
        #: wall-clock start (``time.time()``), for correlating exports
        self.started_at = started_at
        #: monotonic seconds between enter and exit
        self.duration = duration
        self.attributes = attributes

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "started_at": self.started_at,
            "duration_seconds": self.duration,
            "attributes": self.attributes,
        }

    def __str__(self) -> str:
        extras = " ".join(f"{key}={value}" for key, value in self.attributes.items())
        return f"span {self.name} {self.duration * 1000:.3f}ms" + (
            f" [{extras}]" if extras else ""
        )


class _SpanContext:
    """The in-flight side of one span (allocated per traced call)."""

    __slots__ = ("_tracer", "_name", "_attributes", "_wall", "_tick")

    def __init__(self, tracer: "Tracer", name: str, attributes: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes

    def annotate(self, **attributes) -> "_SpanContext":
        """Attach attributes discovered mid-span (e.g. a result count)."""
        self._attributes.update(attributes)
        return self

    def __enter__(self) -> "_SpanContext":
        self._wall = time.time()
        self._tick = _now()
        return self

    def __exit__(self, exc_type, exc, _tb) -> None:
        duration = _now() - self._tick
        if exc is not None:
            self._attributes["error"] = repr(exc)
        self._tracer._record(Span(self._name, self._wall, duration, self._attributes))


class _NullSpanContext:
    """The shared no-op span (NullTracer and fast-path short-circuits)."""

    __slots__ = ()

    def annotate(self, **attributes) -> "_NullSpanContext":
        return self

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *_exc_info) -> None:
        pass


_NULL_SPAN = _NullSpanContext()


class Tracer:
    """A bounded span recorder with a slow-span side log."""

    null = False

    def __init__(
        self,
        capacity: int = 2048,
        *,
        slow_threshold_seconds: float = 0.1,
        slow_capacity: int = 256,
    ) -> None:
        if capacity < 1 or slow_capacity < 1:
            raise ValueError("Tracer capacities must be at least 1")
        if slow_threshold_seconds < 0:
            raise ValueError("slow_threshold_seconds cannot be negative")
        self.capacity = capacity
        self.slow_threshold_seconds = slow_threshold_seconds
        self._lock = threading.Lock()
        self._spans: "deque[Span]" = deque(maxlen=capacity)
        self._slow: "deque[Span]" = deque(maxlen=slow_capacity)
        #: lifetime counters (the ring forgets; these do not)
        self.spans_recorded = 0
        self.slow_spans_recorded = 0

    def span(self, name: str, **attributes) -> _SpanContext:
        """A context manager timing one operation (records on exit)."""
        return _SpanContext(self, name, attributes)

    def record(self, name: str, duration: float, **attributes) -> Span:
        """Record an already-measured span post hoc.

        The slow-query-log idiom: the caller times the operation itself and
        only calls this when the duration clears
        :attr:`slow_threshold_seconds`, so the fast path never allocates a
        span context at all.
        """
        span = Span(name, time.time(), duration, attributes)
        self._record(span)
        return span

    def _record(self, span: Span) -> None:
        # stamp the calling thread's armed per-query trace ID (the
        # ``query_trace`` channel) so every span a query emits — and every
        # post-hoc slow-query record — links back to that query's profile;
        # an explicit trace_id attribute always wins
        if "trace_id" not in span.attributes:
            trace_id = active_trace_id()
            if trace_id is not None:
                span.attributes["trace_id"] = trace_id
        with self._lock:
            self._spans.append(span)
            self.spans_recorded += 1
            if span.duration >= self.slow_threshold_seconds:
                self._slow.append(span)
                self.slow_spans_recorded += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Span]:
        """The retained spans, oldest first (optionally filtered by name)."""
        with self._lock:
            retained = list(self._spans)
        if name is None:
            return retained
        return [span for span in retained if span.name == name]

    def slow_spans(self) -> List[Span]:
        """The retained slow spans (duration >= the threshold), oldest first."""
        with self._lock:
            return list(self._slow)

    def dropped(self) -> int:
        """How many spans the ring has forgotten (recorded - retained)."""
        with self._lock:
            return self.spans_recorded - len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._slow.clear()

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def export_jsonl(self, destination: Union[str, Path, IO[str]]) -> int:
        """Write the retained spans as JSON Lines; returns the span count."""
        spans = self.spans()
        if hasattr(destination, "write"):
            for span in spans:
                destination.write(json.dumps(span.as_dict(), default=str) + "\n")
        else:
            with open(destination, "w") as handle:
                for span in spans:
                    handle.write(json.dumps(span.as_dict(), default=str) + "\n")
        return len(spans)

    def __str__(self) -> str:
        return (
            f"Tracer({len(self.spans())}/{self.capacity} spans, "
            f"{len(self.slow_spans())} slow)"
        )


class NullTracer:
    """The default when observability is off: spans cost two no-op calls."""

    null = True
    slow_threshold_seconds = float("inf")
    spans_recorded = 0
    slow_spans_recorded = 0

    def span(self, name: str, **attributes) -> _NullSpanContext:
        return _NULL_SPAN

    def record(self, name: str, duration: float, **attributes) -> None:
        return None

    def spans(self, name: Optional[str] = None) -> List[Span]:
        return []

    def slow_spans(self) -> List[Span]:
        return []

    def dropped(self) -> int:
        return 0

    def clear(self) -> None:
        pass

    def export_jsonl(self, destination) -> int:
        return 0

    def __str__(self) -> str:
        return "NullTracer()"
