"""Per-query profiling: EXPLAIN / EXPLAIN ANALYZE and the flight recorder.

The service-level observability of :mod:`repro.obs.metrics` aggregates; this
module explains *one query*:

* :class:`QueryProfile` — everything one query did: its text and trace ID,
  the strategy the front door picked and the optimizer rewrites that drove
  it, the compiled-plan shape per rule (join order plus the dispatch choice
  among interpreted / kernel / columnar / leapfrog, with the adaptive
  profitability score where one was computed), per-stratum and
  per-fixpoint-iteration timings with delta sizes, the full
  :class:`~repro.engine.instrumentation.EvaluationStats`, the cache outcome
  (EpochCache and PlanCache), the epoch observed, the queueing-vs-execution
  split and the outcome — renderable as text (:meth:`QueryProfile.render`)
  or JSON (:meth:`QueryProfile.as_dict`);
* :class:`ProfileRecorder` — the mutable sink the engine hot paths feed
  while a profile is armed on the thread-local channel of
  :mod:`repro.engine.instrumentation` (``query_trace``); every hook is one
  ``getattr`` + ``None`` check when disarmed, so unprofiled queries pay
  nothing measurable (the E22 benchmark gates the sampled overhead);
* :class:`FlightRecorder` — a bounded ring of recent profiles plus a live
  table of in-flight queries (start, elapsed, deadline), served as JSON at
  ``/debug/queries`` by the :class:`~repro.obs.exporter.ObservabilityServer`;
* :func:`explain` — the plan-only half: run the optimizer passes, predict
  the strategy :func:`repro.engine.query.answer` would pick, and describe
  the compiled join plans **without executing anything**.

``answer(..., profile=True)`` and ``DatalogService.query(..., profile=True)``
are the EXPLAIN ANALYZE half: the same profile, filled in by an actual run.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine.instrumentation import EvaluationStats

__all__ = [
    "FlightRecorder",
    "IterationSample",
    "PlanProfile",
    "ProfileRecorder",
    "QueryProfile",
    "StratumDecision",
    "explain",
    "new_trace_id",
]

_now = time.perf_counter


def new_trace_id() -> str:
    """A fresh 16-hex-character trace ID (unique per query, cheap to log)."""
    return uuid.uuid4().hex[:16]


# ----------------------------------------------------------------------
# the profile's building blocks
# ----------------------------------------------------------------------
@dataclass
class PlanProfile:
    """One compiled rule's shape and the dispatch decision that ran it."""

    #: the rule, as parsed (head :- body)
    rule: str
    #: body predicates in join order, annotated with their probe signature:
    #: ``p[probe 0,1]`` (index probe on those columns) or ``p[scan]``
    join_order: Tuple[str, ...]
    #: ``interpreted`` | ``kernel`` | ``leapfrog`` (worst-case-optimal)
    dispatch: str
    #: free-form extra (e.g. why a fallback happened)
    detail: str = ""
    #: how many times this (plan, dispatch) pair ran during the query
    applications: int = 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "join_order": list(self.join_order),
            "dispatch": self.dispatch,
            "detail": self.detail,
            "applications": self.applications,
        }

    def __str__(self) -> str:
        order = " ⨝ ".join(self.join_order) if self.join_order else "(no body)"
        extra = f" ({self.detail})" if self.detail else ""
        return f"{order} via {self.dispatch} ×{self.applications}{extra}  [{self.rule}]"


@dataclass
class StratumDecision:
    """One recursive stratum's executor choice (columnar batch vs kernel loop)."""

    #: stratum position in evaluation order (0-based)
    stratum: int
    #: the mutually recursive predicates evaluated together
    predicates: Tuple[str, ...]
    #: ``columnar`` (batch executor) or ``kernel-loop`` (per-plan dispatch)
    dispatch: str
    #: the adaptive ``looks_profitable`` score that drove the choice, when
    #: one was computed (``None`` when the flag decided without scoring)
    score: Optional[float] = None
    #: why (``forced`` / ``score>=2.0`` / ``score<2.0`` / ``no-batch-template``
    #: / ``columnar-off``)
    detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "stratum": self.stratum,
            "predicates": list(self.predicates),
            "dispatch": self.dispatch,
            "score": self.score,
            "detail": self.detail,
        }

    def __str__(self) -> str:
        score = f" score={self.score:.2f}" if self.score is not None else ""
        return (
            f"stratum {self.stratum} {{{', '.join(self.predicates)}}}: "
            f"{self.dispatch}{score} ({self.detail})"
        )


@dataclass
class IterationSample:
    """One fixpoint iteration: which stratum, delta size, wall-clock cost."""

    stratum: int
    iteration: int
    delta_tuples: int
    elapsed_seconds: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "stratum": self.stratum,
            "iteration": self.iteration,
            "delta_tuples": self.delta_tuples,
            "elapsed_seconds": self.elapsed_seconds,
        }


@dataclass
class QueryProfile:
    """The full EXPLAIN / EXPLAIN ANALYZE record of one query."""

    #: the query, as text (``t(1, Y)?``)
    query: str
    #: the per-query trace ID, shared with spans and slow-query records
    trace_id: str
    #: the strategy the front door picked (``explain`` reports a prediction)
    strategy: str = "unspecified"
    #: ``ok`` | ``timeout`` | ``error`` | ``shed`` | ``plan-only``
    outcome: str = "ok"
    #: EpochCache outcome: ``hit`` | ``miss`` | ``none`` (no epoch cache ran)
    cache: str = "none"
    #: the epoch the query observed (``None`` outside the serving layer)
    epoch: Optional[int] = None
    #: time spent queued (reader pool / admission) before evaluation began
    queued_seconds: float = 0.0
    #: time spent answering (lookup or evaluation), excluding queueing
    execution_seconds: float = 0.0
    #: wall-clock start (``time.time()``), for correlating with span exports
    started_at: float = 0.0
    #: True when chosen by ``profile_sample`` 1/N sampling
    sampled: bool = False
    #: True when assembled post hoc because the query was slow / timed out /
    #: errored (no engine hooks were armed, so plans/iterations are empty)
    forced: bool = False
    #: one line per optimizer pass (``Rewrite`` provenance summary)
    rewrites: List[str] = field(default_factory=list)
    #: per-rule compiled-plan shapes with their dispatch decisions
    plans: List[PlanProfile] = field(default_factory=list)
    #: per-recursive-stratum executor decisions (with profitability scores)
    strata: List[StratumDecision] = field(default_factory=list)
    #: per-fixpoint-iteration timings with delta sizes
    iterations: List[IterationSample] = field(default_factory=list)
    #: the evaluation's full stats (identical totals to the result's stats)
    stats: EvaluationStats = field(default_factory=EvaluationStats)
    #: auxiliary counters: plan_cache_hits/misses, kernels_built,
    #: strata_entered, iterations_sampled (+ dropped when capped)
    counters: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        """A JSON-serializable view (what ``/debug/queries`` serves)."""
        return {
            "query": self.query,
            "trace_id": self.trace_id,
            "strategy": self.strategy,
            "outcome": self.outcome,
            "cache": self.cache,
            "epoch": self.epoch,
            "queued_seconds": self.queued_seconds,
            "execution_seconds": self.execution_seconds,
            "started_at": self.started_at,
            "sampled": self.sampled,
            "forced": self.forced,
            "rewrites": list(self.rewrites),
            "plans": [plan.as_dict() for plan in self.plans],
            "strata": [decision.as_dict() for decision in self.strata],
            "iterations": [sample.as_dict() for sample in self.iterations],
            "stats": self.stats.as_dict(),
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """The text EXPLAIN / EXPLAIN ANALYZE rendering, one section per part."""
        lines = [
            f"QUERY    {self.query}",
            f"TRACE    {self.trace_id}",
            f"STRATEGY {self.strategy}",
            f"OUTCOME  {self.outcome}"
            + (f"  cache={self.cache}" if self.cache != "none" else "")
            + (f"  epoch={self.epoch}" if self.epoch is not None else ""),
        ]
        if self.outcome != "plan-only":
            lines.append(
                f"TIMING   queued={self.queued_seconds * 1000:.3f}ms "
                f"execution={self.execution_seconds * 1000:.3f}ms"
            )
        if self.rewrites:
            lines.append("REWRITES")
            lines.extend(f"  {rewrite}" for rewrite in self.rewrites)
        if self.plans:
            lines.append("PLANS")
            lines.extend(f"  {plan}" for plan in self.plans)
        if self.strata:
            lines.append("STRATA")
            lines.extend(f"  {decision}" for decision in self.strata)
        if self.iterations:
            lines.append(f"ITERATIONS ({len(self.iterations)} sampled)")
            lines.extend(
                f"  stratum {sample.stratum} iter {sample.iteration}: "
                f"delta={sample.delta_tuples} "
                f"{sample.elapsed_seconds * 1000:.3f}ms"
                for sample in self.iterations
            )
        if self.outcome != "plan-only":
            lines.append(f"STATS    {self.stats}")
        if self.counters:
            rendered = " ".join(
                f"{key}={value}" for key, value in sorted(self.counters.items())
            )
            lines.append(f"COUNTERS {rendered}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"QueryProfile({self.query} via {self.strategy}: {self.outcome}, "
            f"{len(self.plans)} plans, {len(self.iterations)} iterations)"
        )


# ----------------------------------------------------------------------
# the recorder the engine hooks feed
# ----------------------------------------------------------------------
class ProfileRecorder:
    """The mutable sink armed on the thread-local channel during one query.

    The engine talks to it duck typed (``repro.engine`` never imports this
    module): :meth:`record_dispatch` from
    :meth:`~repro.engine.compile.CompiledRule.evaluate`/``join``,
    :meth:`record_stratum` / :meth:`record_group` / :meth:`record_iteration`
    from the semi-naive drivers, :meth:`record_plan_cache` from
    :class:`~repro.engine.compile.PlanCache`, :meth:`record_kernel_built`
    from the kernel code generator.  Lists are capped (``max_plans``,
    ``max_iterations``) so a pathological query cannot grow a profile without
    bound; everything dropped is counted.

    A recorder is used by the single thread evaluating the query — the
    engine is single-threaded per query — so it needs no lock.
    """

    __slots__ = (
        "query_text",
        "trace_id",
        "sampled",
        "forced",
        "started_at",
        "max_plans",
        "max_iterations",
        "plans",
        "strata",
        "iterations",
        "plan_cache_hits",
        "plan_cache_misses",
        "kernels_built",
        "strata_entered",
        "iterations_dropped",
        "plans_dropped",
        "_dispatches",
    )

    def __init__(
        self,
        query_text: str,
        *,
        trace_id: Optional[str] = None,
        sampled: bool = False,
        forced: bool = False,
        max_plans: int = 64,
        max_iterations: int = 512,
    ) -> None:
        self.query_text = query_text
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.sampled = sampled
        self.forced = forced
        self.started_at = time.time()
        self.max_plans = max_plans
        self.max_iterations = max_iterations
        self.plans: List[PlanProfile] = []
        self.strata: List[StratumDecision] = []
        self.iterations: List[IterationSample] = []
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.kernels_built = 0
        self.strata_entered = 0
        self.iterations_dropped = 0
        self.plans_dropped = 0
        #: (id(plan), dispatch) -> PlanProfile, for O(1) dedupe + counting
        self._dispatches: Dict[Tuple[int, str], PlanProfile] = {}

    # -- engine hooks (duck typed; keep them cheap) ---------------------
    def record_dispatch(self, plan, dispatch: str, detail: str = "") -> None:
        """One compiled-plan application and the path that ran it."""
        key = (id(plan), dispatch)
        existing = self._dispatches.get(key)
        if existing is not None:
            existing.applications += 1
            return
        if len(self.plans) >= self.max_plans:
            self.plans_dropped += 1
            return
        entry = PlanProfile(
            rule=str(plan.rule),
            join_order=tuple(
                f"{step.predicate}[probe {','.join(map(str, step.probe_columns))}]"
                if step.probe_columns
                else f"{step.predicate}[scan]"
                for step in plan.steps
            ),
            dispatch=dispatch,
            detail=detail,
        )
        self._dispatches[key] = entry
        self.plans.append(entry)

    def record_stratum(self, stratum: int, predicates) -> None:
        """Entry into one evaluation stratum (recursive or not)."""
        self.strata_entered += 1

    def record_group(
        self,
        stratum: int,
        predicates,
        dispatch: str,
        score: Optional[float] = None,
        detail: str = "",
    ) -> None:
        """One recursive stratum's executor decision (columnar vs kernel loop)."""
        self.strata.append(
            StratumDecision(stratum, tuple(predicates), dispatch, score, detail)
        )

    def record_iteration(
        self, stratum: int, iteration: int, delta_tuples: int, elapsed_seconds: float
    ) -> None:
        """One fixpoint iteration's delta size and wall-clock cost."""
        if len(self.iterations) >= self.max_iterations:
            self.iterations_dropped += 1
            return
        self.iterations.append(
            IterationSample(stratum, iteration, delta_tuples, elapsed_seconds)
        )

    def record_plan_cache(self, hit: bool) -> None:
        """One PlanCache probe (compiled-plan memoization hit or miss)."""
        if hit:
            self.plan_cache_hits += 1
        else:
            self.plan_cache_misses += 1

    def record_kernel_built(self, plan) -> None:
        """One generated kernel compiled (codegen happened during this query)."""
        self.kernels_built += 1

    # -- assembly -------------------------------------------------------
    def counters_dict(self) -> Dict[str, int]:
        counters = {
            "plan_cache_hits": self.plan_cache_hits,
            "plan_cache_misses": self.plan_cache_misses,
            "kernels_built": self.kernels_built,
            "strata_entered": self.strata_entered,
            "iterations_sampled": len(self.iterations),
        }
        if self.iterations_dropped:
            counters["iterations_dropped"] = self.iterations_dropped
        if self.plans_dropped:
            counters["plans_dropped"] = self.plans_dropped
        return counters

    def build(
        self,
        *,
        strategy: str,
        stats: Optional[EvaluationStats] = None,
        outcome: str = "ok",
        cache: str = "none",
        epoch: Optional[int] = None,
        queued_seconds: float = 0.0,
        execution_seconds: float = 0.0,
        rewrites: Optional[List[str]] = None,
        provenance=None,
    ) -> QueryProfile:
        """Assemble the finished :class:`QueryProfile`.

        ``provenance`` is an
        :class:`~repro.optimize.passes.OptimizationResult`; its ``rewrites``
        become the profile's rewrite summary when ``rewrites`` is not given
        explicitly.
        """
        if rewrites is None:
            rewrites = []
            if provenance is not None:
                for rewrite in getattr(provenance, "rewrites", ()):
                    rewrites.append(str(rewrite))
        return QueryProfile(
            query=self.query_text,
            trace_id=self.trace_id,
            strategy=strategy,
            outcome=outcome,
            cache=cache,
            epoch=epoch,
            queued_seconds=queued_seconds,
            execution_seconds=execution_seconds,
            started_at=self.started_at,
            sampled=self.sampled,
            forced=self.forced,
            rewrites=rewrites,
            plans=list(self.plans),
            strata=list(self.strata),
            iterations=list(self.iterations),
            stats=stats if stats is not None else EvaluationStats(),
            counters=self.counters_dict(),
        )


# ----------------------------------------------------------------------
# the flight recorder: recent profiles + live in-flight queries
# ----------------------------------------------------------------------
class FlightRecorder:
    """A bounded ring of recent :class:`QueryProfile` plus an in-flight table.

    The serving layer records every profile it assembles (sampled, explicit
    and forced alike) and registers queries that go past the epoch cache —
    the ones that can actually be slow — in the in-flight table for the
    duration of their evaluation.  ``/debug/queries`` serves
    :meth:`as_dict`.  All operations are O(1) under one lock.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("FlightRecorder needs room for at least one profile")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._profiles: "deque[QueryProfile]" = deque(maxlen=capacity)
        self._inflight: Dict[int, Dict[str, object]] = {}
        self._tokens = itertools.count(1)
        #: lifetime counter (the ring forgets; this does not)
        self.profiles_recorded = 0

    # -- in-flight tracking ---------------------------------------------
    def begin(
        self,
        trace_id: str,
        query: str,
        *,
        deadline: Optional[float] = None,
        epoch: Optional[int] = None,
    ) -> int:
        """Register an in-flight query; returns the token for :meth:`end`.

        ``deadline`` is an absolute ``time.perf_counter()`` instant (the
        serving layer's basis); the live table reports the remaining budget.
        """
        token = next(self._tokens)
        entry = {
            "trace_id": trace_id,
            "query": query,
            "started_at": time.time(),
            "epoch": epoch,
            "_tick": _now(),
            "_deadline": deadline,
        }
        with self._lock:
            self._inflight[token] = entry
        return token

    def end(self, token: int) -> None:
        """Deregister an in-flight query (idempotent)."""
        with self._lock:
            self._inflight.pop(token, None)

    def in_flight(self) -> List[Dict[str, object]]:
        """The live table: one row per currently evaluating query."""
        with self._lock:
            entries = list(self._inflight.values())
        now = _now()
        rows = []
        for entry in entries:
            deadline = entry["_deadline"]
            rows.append(
                {
                    "trace_id": entry["trace_id"],
                    "query": entry["query"],
                    "started_at": entry["started_at"],
                    "epoch": entry["epoch"],
                    "elapsed_seconds": now - entry["_tick"],
                    "deadline_seconds": (
                        None if deadline is None else deadline - now
                    ),
                }
            )
        return rows

    def in_flight_count(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- the profile ring -----------------------------------------------
    def record(self, profile: QueryProfile) -> None:
        """Append one finished profile to the ring (old profiles fall off)."""
        with self._lock:
            self._profiles.append(profile)
            self.profiles_recorded += 1

    def profiles(self) -> List[QueryProfile]:
        """The retained profiles, oldest first."""
        with self._lock:
            return list(self._profiles)

    def clear(self) -> None:
        with self._lock:
            self._profiles.clear()

    def as_dict(self) -> Dict[str, object]:
        """The ``/debug/queries`` payload: live table + recent profiles."""
        with self._lock:
            profiles = list(self._profiles)
            recorded = self.profiles_recorded
        return {
            "in_flight": self.in_flight(),
            "recent_profiles": [profile.as_dict() for profile in profiles],
            "profiles_recorded": recorded,
            "capacity": self.capacity,
        }

    def __len__(self) -> int:
        with self._lock:
            return len(self._profiles)

    def __str__(self) -> str:
        return (
            f"FlightRecorder({len(self)}/{self.capacity} profiles, "
            f"{self.in_flight_count()} in flight)"
        )


# ----------------------------------------------------------------------
# EXPLAIN — plan only, no execution
# ----------------------------------------------------------------------
def explain(
    program,
    query,
    database=None,
    *,
    max_unfold_depth: int = 8,
) -> QueryProfile:
    """Explain how :func:`repro.engine.query.answer` would evaluate ``query``.

    Runs the full optimizer pass chain (the rewrites are analysis, not
    evaluation), predicts the strategy the ``auto`` front door would pick by
    replaying its decision ladder, and compiles the join plans the strategy
    would run — **without touching a single stored tuple**.  ``database`` is
    optional and used only for the planner's size-based join-order
    tie-breaking and for the leapfrog-eligibility check; passing the real
    database makes the reported join orders exactly the ones evaluation
    would use.

    The returned :class:`QueryProfile` has ``outcome="plan-only"``, empty
    stats/iterations, and a predicted ``strategy``.  The prediction matches
    what ``answer`` picks except where an evaluation-time failure (e.g. a
    counting depth bound tripping on cyclic data) makes ``answer`` fall
    through to the next strategy mid-flight — something no plan-only
    analysis can see.
    """
    from ..baselines.counting import counting_scope_reason
    from ..core.classify import selection_covers_unbounded_sides
    from ..datalog.errors import ProgramError, ReproError
    from ..engine.columnar import columnar_enabled, wcoj_eligible
    from ..engine.compile import compile_rule
    from ..engine.kernels import kernels_enabled
    from ..engine.query import as_selection_query
    from ..engine.strata import evaluation_strata
    from ..optimize.passes import Optimizer, default_passes

    selection = as_selection_query(program, query)
    recorder = ProfileRecorder(str(selection))
    try:
        result = Optimizer(default_passes(max_unfold_depth)).run(
            program, selection.predicate
        )
    except ProgramError:
        result = None

    relations = (
        {relation.name: relation for relation in database.relations()}
        if database is not None
        else None
    )

    def predicted_dispatch(plan) -> Tuple[str, str]:
        if (
            relations is not None
            and columnar_enabled()
            and wcoj_eligible(plan, relations) is not None
        ):
            return "leapfrog", "cyclic body, worst-case-optimal"
        if kernels_enabled():
            return "kernel", ""
        return "interpreted", "REPRO_KERNELS=off"

    def describe_rules(rules, bound=()) -> None:
        for rule in rules:
            plan = compile_rule(rule, relations, bound=bound)
            dispatch, detail = predicted_dispatch(plan)
            recorder.record_dispatch(plan, dispatch, detail)

    # replay answer()'s auto decision ladder, minus the evaluation
    strategy = "seminaive (auto)"
    if result is not None and result.unfolded is not None:
        strategy = "unfolded (auto)"
        from ..datalog.atoms import Atom
        from ..datalog.rules import Rule

        bindings = selection.bindings_dict()
        for string in result.unfolded.strings:
            bound = tuple(
                dict.fromkeys(
                    string.distinguished[column]
                    for column in bindings
                    if column < len(string.distinguished)
                )
            )
            rule = Rule(
                Atom(result.unfolded.predicate, tuple(string.distinguished)),
                tuple(string.atoms),
            )
            describe_rules([rule], bound=bound)
    else:
        one_sided = False
        if result is not None:
            if result.one_sided:
                one_sided = True
                strategy = "one-sided (auto)"
            elif result.report is not None and selection.bound_columns():
                try:
                    if selection_covers_unbounded_sides(
                        result.optimized,
                        selection.predicate,
                        set(selection.bound_columns()),
                    ):
                        one_sided = True
                        strategy = "one-sided (bounded sides, auto)"
                except ReproError:
                    pass
        if not one_sided:
            # magic (and counting) need rules defining the predicate; with
            # none, the ladder's attempts fail and it lands on semi-naive —
            # statically knowable, so predict it instead of "magic"
            defined = bool(program.rules_for(selection.predicate))
            if not counting_scope_reason(program, selection):
                strategy = "counting (auto)"
            elif selection.bound_columns() and defined:
                strategy = "magic (auto)"
        to_plan = result.program if result is not None else program
        for group in evaluation_strata(to_plan):
            describe_rules(
                rule for predicate in group for rule in to_plan.rules_for(predicate)
            )

    return recorder.build(
        strategy=strategy,
        outcome="plan-only",
        provenance=result,
    )
