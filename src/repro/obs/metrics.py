"""A hand-rolled, stdlib-only metrics registry with Prometheus exposition.

The paper's whole argument is made through cost counters — tuples examined,
lookups, iterations, peak state — and the repo pins them in
:class:`~repro.engine.instrumentation.EvaluationStats`,
:class:`~repro.service.service.ServiceStats` and
:class:`~repro.storage.store.StorageStats`.  This module puts those counters
on the wire: a thread-safe :class:`MetricsRegistry` of :class:`Counter` /
:class:`Gauge` / :class:`Histogram` metric families (each family may carry a
label set) and a renderer for the Prometheus text exposition format
(``text/plain; version=0.0.4``), scrapeable through
:class:`~repro.obs.exporter.ObservabilityServer`.

Design points:

* **labels resolve once, off the hot path** — ``family.labels(...)`` returns
  a child instrument the caller keeps; the hot path is one ``inc``/``observe``
  call on a prefetched child, whose critical section is a handful of list and
  float operations under a per-child lock (no torn reads: a scrape snapshots
  each child under that same lock, so a histogram's ``_count`` always equals
  its ``+Inf`` bucket);
* **collectors bridge pinned stats** — a callable registered with
  :meth:`MetricsRegistry.register_collector` runs at scrape time and copies
  the pinned ``as_dict()`` counters into metric values, so the exposition
  agrees with the in-process stats by construction instead of by duplicate
  increments;
* **off means free** — :class:`NullRegistry` answers the same API with one
  shared no-op instrument, so instrumented call sites cost a no-op method
  call when observability is disabled (the default).
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_right
from collections import OrderedDict, deque
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "exponential_buckets",
    "latency_buckets",
]

#: the exposition content type the renderer produces
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_PATTERN = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_PATTERN = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_INF = float("inf")


def latency_buckets() -> Tuple[float, ...]:
    """Fixed log-spaced latency buckets, 10µs .. 10s (1-2.5-5 per decade)."""
    bounds: List[float] = []
    for exponent in range(-5, 1):
        for mantissa in (1.0, 2.5, 5.0):
            bounds.append(round(mantissa * 10.0**exponent, 10))
    bounds.append(10.0)
    return tuple(bounds)


def exponential_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """``count`` log-spaced bounds starting at ``start`` (for size histograms)."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("exponential_buckets needs start > 0, factor > 1, count >= 1")
    return tuple(start * factor**index for index in range(count))


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format (backslash-first)."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def escape_help(text: str) -> str:
    """Escape a HELP line (only backslash and newline are special there)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Render one sample value (ints without a decimal point, inf as +Inf)."""
    if value == _INF:
        return "+Inf"
    if value == -_INF:
        return "-Inf"
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if number.is_integer() and abs(number) < 1e17:
        return str(int(number))
    return repr(number)


# ----------------------------------------------------------------------
# children: the instruments hot paths actually touch
# ----------------------------------------------------------------------
class _CounterChild:
    """One (label values) cell of a counter family.  Monotone."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for decrements")
        with self._lock:
            self._value += amount

    def set_total(self, value: float) -> None:
        """Set the absolute total (the stats-collector bridge's verb).

        The pinned stats dictionaries are monotone, and so is this: a value
        below the current total is clamped (never rewinds a counter a scraper
        already saw).
        """
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        return [("", (), self.value)]


class _GaugeChild:
    """One cell of a gauge family: settable, or backed by a live callback."""

    __slots__ = ("_lock", "_value", "_function")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._function: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        with self._lock:
            self._function = None
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def set_function(self, function: Callable[[], float]) -> None:
        """Read the gauge from ``function`` at every scrape (live gauges)."""
        with self._lock:
            self._function = function

    @property
    def value(self) -> float:
        with self._lock:
            function = self._function
            if function is None:
                return self._value
        return float(function())

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        return [("", (), self.value)]


#: pending observations per histogram child before the observing thread
#: folds them into buckets (bounds memory at ~16 bytes per entry while
#: amortizing the fold to a fraction of the append cost)
_FOLD_THRESHOLD = 4096


class _HistogramChild:
    """One cell of a histogram family: fixed bounds, cumulative on render.

    The hot path is deliberately not "lock, bisect, increment": per-query
    latency lands here, and at service rates a per-observation lock plus
    bucket search is the single most expensive instruction in the whole
    instrumentation layer.  Instead ``observe`` appends the raw value to a
    deque (``deque.append`` is a single C-level, GIL-atomic operation) and
    observations are *folded* into the bucket counts in batches — by the
    unlucky observer that trips the threshold, or by the scraper at
    snapshot time.  A fold sorts the batch once and resolves every bound
    with one ``bisect`` over the sorted batch, so the per-observation
    folding cost is dominated by the C-speed sort.  Nothing is ever lost
    (every append is popped exactly once, under the fold lock) and scrapes
    stay torn-free: a snapshot folds first, then derives ``_count`` and the
    ``+Inf`` bucket from the same counts copy.
    """

    __slots__ = ("_lock", "_bounds", "_counts", "_sum", "_pending")

    def __init__(self, bounds: Sequence[float]) -> None:
        self._lock = threading.Lock()
        self._bounds = tuple(bounds)
        # one slot per finite bound plus the +Inf overflow slot
        self._counts = [0] * (len(self._bounds) + 1)
        self._sum = 0.0
        self._pending: "deque[float]" = deque()

    def observe(self, value: float) -> None:
        pending = self._pending
        pending.append(value)
        if len(pending) >= _FOLD_THRESHOLD:
            self._fold()

    def _fold(self) -> None:
        """Drain the pending deque into the bucket counts (lock held here)."""
        with self._lock:
            pending = self._pending
            batch: List[float] = []
            take = batch.append
            pop = pending.popleft
            for _ in range(len(pending)):
                try:
                    take(pop())
                except IndexError:  # a concurrent fold got there first
                    break
            if not batch:
                return
            batch.sort()
            counts = self._counts
            below = 0
            for index, bound in enumerate(self._bounds):
                at = bisect_right(batch, bound)
                counts[index] += at - below
                below = at
            counts[-1] += len(batch) - below
            self._sum += sum(batch)

    def snapshot(self) -> Tuple[List[int], float, int]:
        """(cumulative bucket counts incl. +Inf, sum, count) — one atom."""
        self._fold()
        with self._lock:
            counts = list(self._counts)
            total = self._sum
        cumulative: List[int] = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        return cumulative, total, running

    @property
    def count(self) -> int:
        self._fold()
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        self._fold()
        with self._lock:
            return self._sum

    def samples(self) -> List[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        cumulative, total, count = self.snapshot()
        out: List[Tuple[str, Tuple[Tuple[str, str], ...], float]] = []
        for bound, value in zip(self._bounds, cumulative):
            out.append(("_bucket", (("le", format_value(bound)),), value))
        out.append(("_bucket", (("le", "+Inf"),), count))
        out.append(("_sum", (), total))
        out.append(("_count", (), count))
        return out


# ----------------------------------------------------------------------
# families
# ----------------------------------------------------------------------
class _MetricFamily:
    """A named metric plus its labeled children (the registry's unit)."""

    kind = "untyped"
    _child_type: type = _CounterChild

    def __init__(self, name: str, help: str, label_names: Sequence[str] = ()) -> None:
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_PATTERN.match(label) or label.startswith("__"):
                raise ValueError(f"invalid label name {label!r} on metric {name}")
        self.name = name
        self.help = help
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.label_names:
            # the unlabeled cell exists up front so inc/observe/set delegate
            self._children[()] = self._new_child()

    def _new_child(self):
        return self._child_type()

    def labels(self, *values, **kwargs):
        """The child instrument for one concrete label-value tuple."""
        if kwargs:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            try:
                values = tuple(kwargs[name] for name in self.label_names)
            except KeyError as missing:
                raise ValueError(
                    f"metric {self.name} needs label {missing.args[0]!r}"
                ) from None
            if len(kwargs) != len(self.label_names):
                extra = set(kwargs) - set(self.label_names)
                raise ValueError(f"metric {self.name} has no label(s) {sorted(extra)}")
        key = tuple(str(value) for value in values)
        if len(key) != len(self.label_names):
            raise ValueError(
                f"metric {self.name} takes {len(self.label_names)} label value(s), "
                f"got {len(key)}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._new_child()
            return child

    def _default(self):
        if self.label_names:
            raise ValueError(
                f"metric {self.name} is labeled by {list(self.label_names)}; "
                "resolve a child with .labels(...) first"
            )
        return self._children[()]

    def children(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {escape_help(self.help)}",
            f"# TYPE {self.name} {self.kind}",
        ]
        for key, child in self.children():
            base_pairs = tuple(zip(self.label_names, key))
            for suffix, extra_pairs, value in child.samples():
                pairs = base_pairs + extra_pairs
                if pairs:
                    body = ",".join(
                        f'{label}="{escape_label_value(text)}"' for label, text in pairs
                    )
                    lines.append(f"{self.name}{suffix}{{{body}}} {format_value(value)}")
                else:
                    lines.append(f"{self.name}{suffix} {format_value(value)}")
        return lines


class Counter(_MetricFamily):
    """A monotone counter family (convention: name ends in ``_total``)."""

    kind = "counter"
    _child_type = _CounterChild

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set_total(self, value: float) -> None:
        self._default().set_total(value)

    @property
    def value(self) -> float:
        return self._default().value


class Gauge(_MetricFamily):
    """A gauge family: set/inc/dec, or a live callback per scrape."""

    kind = "gauge"
    _child_type = _GaugeChild

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def set_function(self, function: Callable[[], float]) -> None:
        self._default().set_function(function)

    @property
    def value(self) -> float:
        return self._default().value


class Histogram(_MetricFamily):
    """A histogram family over fixed bounds (defaults to latency buckets)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else latency_buckets()
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bucket bound")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram {name} bounds must be strictly increasing")
        if bounds[-1] == _INF:
            bounds = bounds[:-1]  # +Inf is implicit
        self.buckets = bounds
        super().__init__(name, help, label_names)

    def _new_child(self):
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def count(self) -> int:
        return self._default().count

    @property
    def sum(self) -> float:
        return self._default().sum


# ----------------------------------------------------------------------
# registries
# ----------------------------------------------------------------------
class MetricsRegistry:
    """A thread-safe collection of metric families plus the text renderer."""

    #: ``False`` — this registry records; :class:`NullRegistry` overrides
    null = False

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: "OrderedDict[str, _MetricFamily]" = OrderedDict()
        self._collectors: List[Callable[[], None]] = []

    # -- family constructors (get-or-create; shape mismatches raise) ----
    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._family(Histogram, name, help, labels, buckets=buckets)

    def _family(self, family_type, name, help, labels, **kwargs):
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, family_type) or existing.label_names != tuple(
                    labels
                ):
                    raise ValueError(
                        f"metric {name} is already registered as a "
                        f"{existing.kind} with labels {list(existing.label_names)}"
                    )
                return existing
            family = family_type(name, help, labels, **kwargs)
            self._families[name] = family
            return family

    def get(self, name: str) -> Optional[_MetricFamily]:
        with self._lock:
            return self._families.get(name)

    def families(self) -> List[_MetricFamily]:
        with self._lock:
            return list(self._families.values())

    # -- collectors ------------------------------------------------------
    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector`` before every render (the stats-bridge hook).

        Collectors copy pinned stats dictionaries into metric values at
        scrape time, so an exposition always agrees with the in-process
        counters without double-counting on the hot path.
        """
        with self._lock:
            self._collectors.append(collector)

    # -- rendering -------------------------------------------------------
    def render(self) -> str:
        """The full registry in Prometheus text exposition format 0.0.4."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        lines: List[str] = []
        for family in self.families():
            lines.extend(family.render())
        return "\n".join(lines) + ("\n" if lines else "")

    def sample_value(
        self,
        name: str,
        labels: Union[Dict[str, str], Iterable[Tuple[str, str]], None] = None,
    ) -> Optional[float]:
        """One rendered sample's value (collectors run) — a testing helper."""
        with self._lock:
            collectors = list(self._collectors)
        for collector in collectors:
            collector()
        wanted = dict(labels or {})
        for family in self.families():
            for key, child in family.children():
                base = dict(zip(family.label_names, key))
                for suffix, extra_pairs, value in child.samples():
                    if family.name + suffix != name:
                        continue
                    if {**base, **dict(extra_pairs)} == wanted:
                        return value
        return None

    def __str__(self) -> str:
        return f"MetricsRegistry({len(self.families())} families)"


class _NullInstrument:
    """The one no-op instrument every NullRegistry family call returns."""

    __slots__ = ()

    def labels(self, *_values, **_kwargs) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_total(self, value: float) -> None:
        pass

    def set_function(self, function: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    value = 0.0
    count = 0
    sum = 0.0


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """The default when observability is off: same API, near-zero cost.

    Every family constructor hands back one shared no-op instrument, so an
    instrumented call site pays a no-op method call and nothing else; the
    renderer produces an empty exposition.
    """

    null = True

    def counter(self, name: str, help: str, labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str, labels: Sequence[str] = ()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self,
        name: str,
        help: str,
        labels: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def register_collector(self, collector: Callable[[], None]) -> None:
        pass

    def get(self, name: str) -> None:
        return None

    def families(self) -> List[_MetricFamily]:
        return []

    def render(self) -> str:
        return ""

    def sample_value(self, name: str, labels=None) -> None:
        return None

    def __str__(self) -> str:
        return "NullRegistry()"
