"""repro.obs — the stdlib-only observability layer.

Three pieces, each usable alone:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` families with label
  sets and a Prometheus text-format renderer (:data:`CONTENT_TYPE`);
* :mod:`repro.obs.trace` — :class:`Tracer`, bounded-ring span tracing with
  a slow-query log and JSONL export;
* :mod:`repro.obs.exporter` — :class:`ObservabilityServer`, a
  ``ThreadingHTTPServer`` exposing ``/metrics``, ``/healthz``, ``/statusz``
  and ``/debug/queries``;
* :mod:`repro.obs.profile` — per-query EXPLAIN / EXPLAIN ANALYZE:
  :func:`explain`, :class:`QueryProfile`, :class:`ProfileRecorder` and the
  :class:`FlightRecorder` behind ``/debug/queries``.

The :class:`NullRegistry`/:class:`NullTracer` pair is the default wiring
everywhere: instrumented call sites cost a no-op method call until a real
registry is installed (``DatalogService(metrics=...)`` or
``service.serve_metrics(port)``).
"""

from .exporter import HealthReport, ObservabilityServer
from .metrics import (
    CONTENT_TYPE,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    exponential_buckets,
    latency_buckets,
)
from .profile import (
    FlightRecorder,
    ProfileRecorder,
    QueryProfile,
    explain,
    new_trace_id,
)
from .trace import NullTracer, Span, Tracer

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NullTracer",
    "ObservabilityServer",
    "ProfileRecorder",
    "QueryProfile",
    "Span",
    "Tracer",
    "explain",
    "exponential_buckets",
    "latency_buckets",
    "new_trace_id",
]
