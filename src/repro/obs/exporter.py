"""HTTP exposition: ``/metrics``, ``/healthz`` and ``/statusz`` over stdlib.

:class:`ObservabilityServer` wraps a daemonized
:class:`http.server.ThreadingHTTPServer` serving three endpoints:

* ``/metrics`` — the registry rendered in Prometheus text exposition format
  (``text/plain; version=0.0.4``), ready for a scraper;
* ``/healthz`` — liveness: every registered health check runs, and the
  response is ``200 {"status": "ok", ...}`` only when all pass (otherwise
  ``503`` with the failing checks named) — the load-balancer hook;
* ``/statusz`` — a JSON merge of the pinned stats dictionaries plus whatever
  else the owner's status callable reports (epoch, flags, ...) — the
  human/debugging hook;
* ``/debug/queries`` — the owner's query flight recorder
  (:class:`repro.obs.profile.FlightRecorder`): live in-flight queries plus
  the ring of recent :class:`~repro.obs.profile.QueryProfile` records.

The server binds ``127.0.0.1`` by default and picks an ephemeral port when
``port=0``; :attr:`ObservabilityServer.port` is the bound port either way.
It is started by :meth:`repro.service.service.DatalogService.serve_metrics`
but owns nothing service-specific: any registry plus optional health/status
callables make a servable triple.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, Optional, Tuple

from .metrics import CONTENT_TYPE

__all__ = ["HealthReport", "ObservabilityServer"]

#: one health check's outcome: ``(passed, detail)``
CheckResult = Tuple[bool, str]
#: the owner-supplied probe: check name -> outcome
HealthProbe = Callable[[], Dict[str, CheckResult]]
#: the owner-supplied status report (must be JSON-serializable)
StatusProbe = Callable[[], Dict[str, object]]


class HealthReport:
    """The evaluated health checks, as ``/healthz`` serializes them."""

    def __init__(self, checks: Dict[str, CheckResult]) -> None:
        self.checks = checks

    @property
    def healthy(self) -> bool:
        return all(passed for passed, _detail in self.checks.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "status": "ok" if self.healthy else "unhealthy",
            "checks": {
                name: {"ok": passed, "detail": detail}
                for name, (passed, detail) in self.checks.items()
            },
        }


class ObservabilityServer:
    """A background HTTP server exposing one registry (plus health/status)."""

    def __init__(
        self,
        registry,
        *,
        health: Optional[HealthProbe] = None,
        status: Optional[StatusProbe] = None,
        debug: Optional[StatusProbe] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._health = health
        self._status = status
        self._debug = debug
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server's spelling
                try:
                    server._serve(self)
                except BrokenPipeError:  # client went away mid-response
                    pass

            def log_message(self, _format, *_args) -> None:
                pass  # scrapes are periodic; stderr noise helps nobody

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        self._closed = False

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _serve(self, handler: BaseHTTPRequestHandler) -> None:
        path = handler.path.split("?", 1)[0]
        if path == "/metrics":
            body = self.registry.render().encode("utf-8")
            self._respond(handler, 200, CONTENT_TYPE, body)
        elif path == "/healthz":
            report = self.health_report()
            body = (json.dumps(report.as_dict(), indent=2) + "\n").encode("utf-8")
            self._respond(
                handler, 200 if report.healthy else 503, "application/json", body
            )
        elif path == "/statusz":
            status = self._status() if self._status is not None else {}
            body = (json.dumps(status, indent=2, default=str) + "\n").encode("utf-8")
            self._respond(handler, 200, "application/json", body)
        elif path == "/debug/queries":
            debug = self._debug() if self._debug is not None else {}
            body = (json.dumps(debug, indent=2, default=str) + "\n").encode("utf-8")
            self._respond(handler, 200, "application/json", body)
        else:
            self._respond(
                handler, 404, "text/plain; charset=utf-8",
                b"unknown path; try /metrics, /healthz, /statusz or /debug/queries\n",
            )

    @staticmethod
    def _respond(
        handler: BaseHTTPRequestHandler, code: int, content_type: str, body: bytes
    ) -> None:
        handler.send_response(code)
        handler.send_header("Content-Type", content_type)
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def health_report(self) -> HealthReport:
        """Run the health checks now (also usable without HTTP)."""
        checks = self._health() if self._health is not None else {}
        return HealthReport(dict(checks))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def url(self, path: str = "/metrics") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "ObservabilityServer":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __str__(self) -> str:
        return f"ObservabilityServer(http://{self.host}:{self.port})"
