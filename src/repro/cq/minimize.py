"""Conjunctive-query minimization.

A conjunctive query is *minimal* when no proper subset of its atoms defines
the same relation.  Minimization (folding the query onto a core) is used in
two places in the reproduction:

* Appendix A's Lemma A.7 deletes "redundant connected sets" from strings to
  turn an infinite union into a finite nonrecursive definition, and
* the redundancy-removal pipeline of Section 3 uses minimal strings when
  comparing an optimized recursion against the original.

The algorithm is the textbook one: repeatedly try to drop an atom; the drop is
valid when the original query still has a containment mapping onto the reduced
query (so the two are equivalent).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from ..datalog.terms import Variable
from .containment import find_containment_mapping
from .strings import ExpansionString


def minimize(string: ExpansionString, frozen: Optional[Set[Variable]] = None) -> ExpansionString:
    """An equivalent string with a minimal set of atoms (a core of the query).

    ``frozen`` lists extra variables that must be preserved by the folding
    (beyond the distinguished variables), which callers use when the string
    will later be recombined with other atoms.
    """
    current = string
    changed = True
    while changed:
        changed = False
        for index in range(len(current.atoms)):
            candidate_atoms = current.atoms[:index] + current.atoms[index + 1 :]
            candidate_provenance = (
                current.provenance[:index] + current.provenance[index + 1 :]
                if current.provenance
                else ()
            )
            candidate = ExpansionString(current.distinguished, candidate_atoms, candidate_provenance)
            # The reduced query trivially contains the original (fewer
            # constraints).  They are equivalent iff the original maps onto
            # the reduced one.
            if find_containment_mapping(current, candidate, frozen) is not None:
                current = candidate
                changed = True
                break
    return current


def is_minimal(string: ExpansionString) -> bool:
    """``True`` when no single atom can be dropped without changing the relation."""
    return len(minimize(string).atoms) == len(string.atoms)


def minimize_union(
    strings: List[ExpansionString],
    minimizer: Optional[Callable[[ExpansionString], ExpansionString]] = None,
    has_mapping: Optional[Callable[[ExpansionString, ExpansionString], bool]] = None,
) -> List[ExpansionString]:
    """Minimize a union of conjunctive queries.

    Each string is minimized individually, then strings subsumed by another
    string of the union are dropped (keeping the earliest witness).  This is
    the finite analogue of taking "a minimal subset of P′" in Lemma A.7.

    ``minimizer`` and ``has_mapping`` override the per-string minimization and
    the containment-mapping test; :meth:`repro.cq.cache.CQCache.minimize_union`
    passes its memoized versions so the policy lives here exactly once.
    """
    minimizer = minimizer if minimizer is not None else minimize
    if has_mapping is None:
        def has_mapping(source: ExpansionString, target: ExpansionString) -> bool:
            return find_containment_mapping(source, target) is not None
    minimized = [minimizer(string) for string in strings]
    kept: List[ExpansionString] = []
    for index, candidate in enumerate(minimized):
        subsumed = False
        for other_index, other in enumerate(minimized):
            if other_index == index:
                continue
            # candidate is subsumed if its relation is contained in other's
            # relation; prefer keeping the earlier string on mutual containment.
            if not has_mapping(other, candidate):
                continue
            if has_mapping(candidate, other) and other_index > index:
                continue  # equivalent; keep the earlier (this one)
            subsumed = True
            break
        if not subsumed:
            kept.append(candidate)
    return kept
