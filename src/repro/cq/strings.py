"""Expansion strings as conjunctive queries.

Section 2 of the paper: the elements of an expansion are *strings* —
conjunctions of EDB predicate instances with a designated tuple of
distinguished variables.  Each string is a conjunctive query; the recursively
defined relation is the union of the relations specified by the strings.

:class:`ExpansionString` records, for every predicate instance, the iteration
on which the expansion procedure produced it and whether it came from the
nonrecursive (exit) rule — the two pieces of provenance that Definitions
3.1–3.3 and Lemma 3.1 reason about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom, atoms_variables
from ..datalog.relation import Relation, Row
from ..datalog.terms import Variable
from ..engine.cq_eval import evaluate_body_project
from ..engine.instrumentation import EvaluationStats


@dataclass(frozen=True)
class AtomProvenance:
    """Where a predicate instance in a string came from.

    Attributes
    ----------
    iteration:
        The iteration of Procedure *Expand* (Figure 1) that produced the
        instance; iteration numbering starts at 0 as in the paper.
    from_exit:
        ``True`` when the instance was produced by applying the nonrecursive
        rule (the paper frequently "removes the predicate instances produced
        by the nonrecursive rule" before counting connected sets).
    """

    iteration: int
    from_exit: bool = False


@dataclass(frozen=True)
class ExpansionString:
    """One element of an expansion: a conjunctive query over EDB predicates.

    Attributes
    ----------
    distinguished:
        The distinguished variables, in head-argument order.
    atoms:
        The predicate instances of the string, in the order the expansion
        procedure emitted them.
    provenance:
        Parallel to ``atoms``; may be empty for strings built by hand.
    """

    distinguished: Tuple[Variable, ...]
    atoms: Tuple[Atom, ...]
    provenance: Tuple[AtomProvenance, ...] = ()

    def __post_init__(self) -> None:
        if self.provenance and len(self.provenance) != len(self.atoms):
            raise ValueError("provenance must be empty or parallel to atoms")

    # ------------------------------------------------------------------
    # basic views
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.atoms)

    def variables(self) -> Set[Variable]:
        """All variables appearing in the string."""
        return atoms_variables(self.atoms) | set(self.distinguished)

    def nondistinguished_variables(self) -> Set[Variable]:
        """Variables of the string that are not distinguished."""
        return atoms_variables(self.atoms) - set(self.distinguished)

    def predicates(self) -> Set[str]:
        """Predicate names used by the string."""
        return {atom.predicate for atom in self.atoms}

    def provenance_for(self, index: int) -> AtomProvenance:
        """Provenance of atom ``index`` (defaults to iteration 0, non-exit)."""
        if self.provenance:
            return self.provenance[index]
        return AtomProvenance(0, False)

    def atom_indexes(self, include_exit: bool = True) -> List[int]:
        """Indexes of the atoms, optionally dropping exit-rule instances."""
        if include_exit or not self.provenance:
            return list(range(len(self.atoms)))
        return [i for i in range(len(self.atoms)) if not self.provenance[i].from_exit]

    def without_exit_atoms(self) -> "ExpansionString":
        """The string with the exit-rule predicate instances removed.

        This is the "after removing the predicate instances produced by
        applying the nonrecursive rule" operation of Definition 3.3.
        """
        keep = self.atom_indexes(include_exit=False)
        return ExpansionString(
            self.distinguished,
            tuple(self.atoms[i] for i in keep),
            tuple(self.provenance[i] for i in keep) if self.provenance else (),
        )

    def recursion_depth(self) -> int:
        """Number of recursive-rule applications that produced this string.

        The exit rule of string ``k`` is applied on iteration ``k`` (Figure 1),
        so the exit atoms' provenance carries the depth directly; recursive
        rules without nonrecursive atoms (e.g. ``t(X, Y) :- t(Y, X)``) are
        handled correctly this way.
        """
        if not self.provenance:
            return 0
        exit_iterations = [p.iteration for p in self.provenance if p.from_exit]
        if exit_iterations:
            return max(exit_iterations)
        iterations = [p.iteration for p in self.provenance]
        return (max(iterations) + 1) if iterations else 0

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------
    def evaluate(
        self,
        relations: Mapping[str, Relation],
        stats: Optional[EvaluationStats] = None,
        bindings: Optional[Dict[Variable, object]] = None,
    ) -> Set[Row]:
        """The relation specified by the string over the given EDB.

        Section 2: the relation for a string is the projection onto the
        distinguished variables of the satisfying assignments of its atoms.
        """
        return evaluate_body_project(self.atoms, relations, self.distinguished, bindings, stats)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_atoms(self, atoms: Iterable[Atom], provenance: Iterable[AtomProvenance] = ()) -> "ExpansionString":
        """A copy of the string with different atoms (same distinguished variables)."""
        atoms = tuple(atoms)
        provenance = tuple(provenance)
        return ExpansionString(self.distinguished, atoms, provenance)

    def __str__(self) -> str:
        return ", ".join(str(atom) for atom in self.atoms) if self.atoms else "<empty string>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ExpansionString({self!s})"


def string_union_evaluate(
    strings: Sequence[ExpansionString],
    relations: Mapping[str, Relation],
    stats: Optional[EvaluationStats] = None,
) -> Set[Row]:
    """Union of the relations of several strings.

    The recursively defined relation is the union over all strings of the
    expansion; evaluating a finite prefix gives the tuples derivable within
    that many rule applications.
    """
    result: Set[Row] = set()
    for string in strings:
        result |= string.evaluate(relations, stats)
    return result
