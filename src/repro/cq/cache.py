"""Memoized containment and minimization over expansion strings.

The backtracking homomorphism search of :mod:`repro.cq.containment` is run by
several independent callers — the boundedness checks re-test whole expansion
prefixes, redundancy removal re-verifies its rewrites, and the unfolding pass
minimizes the same strings the boundedness witness already visited.  Each of
those callers historically started the NP-complete search from scratch, even
when the (string, string) pair had been decided moments earlier.

:class:`CQCache` closes that gap with two LRU stores keyed by *canonical*
forms of the strings:

* a **containment store** mapping canonicalized ``(source, target, pinned)``
  triples to the boolean answer of the mapping search, and
* a **minimization store** mapping a string (exact form, including
  provenance) to its minimized core.

Canonicalization renames every non-pinned variable by first occurrence, so
two strings that differ only in the names of their nondistinguished
variables share one cache entry.  Pinned variables (distinguished plus any
``frozen`` extras) are kept by name because the mapping search requires them
to map to themselves — renaming them would change the question being asked.

A module-level :data:`shared_cache` is used by default; passes and analyses
that want isolation can carry their own instance.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.terms import Constant, Variable
from .containment import find_containment_mapping
from .minimize import minimize as _minimize_uncached
from .minimize import minimize_union as _minimize_union_uncached
from .strings import ExpansionString

#: key of one canonicalized string: (distinguished names, atom signatures)
CanonicalKey = Tuple[Tuple[str, ...], Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]]


def canonical_atoms(
    string: ExpansionString, pinned: FrozenSet[Variable]
) -> Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]:
    """The atoms of ``string`` with non-pinned variables renamed by first occurrence.

    The result is invariant under any renaming of the non-pinned variables
    that preserves their order of first appearance, which is exactly the
    invariance the containment search has: pinned variables must map to
    themselves, everything else is up for grabs.
    """
    numbering: Dict[Variable, int] = {}
    atom_keys: List[Tuple[str, Tuple[Tuple[str, object], ...]]] = []
    for atom in string.atoms:
        arg_keys: List[Tuple[str, object]] = []
        for arg in atom.args:
            if isinstance(arg, Constant):
                arg_keys.append(("c", arg.value))
            elif arg in pinned:
                arg_keys.append(("p", str(arg)))
            else:
                if arg not in numbering:
                    numbering[arg] = len(numbering)
                arg_keys.append(("v", numbering[arg]))
        atom_keys.append((atom.predicate, tuple(arg_keys)))
    return tuple(atom_keys)


def canonical_key(string: ExpansionString, frozen: Optional[Set[Variable]] = None) -> CanonicalKey:
    """A hashable canonical form of ``string`` (see :func:`canonical_atoms`)."""
    pinned = frozenset(string.distinguished) | frozenset(frozen or ())
    return (
        tuple(str(variable) for variable in string.distinguished),
        canonical_atoms(string, pinned),
    )


class CQCache:
    """An LRU cache for containment verdicts and minimized strings."""

    def __init__(self, maxsize: int = 8192) -> None:
        self.maxsize = maxsize
        self._containment: "OrderedDict[object, bool]" = OrderedDict()
        self._minimized: "OrderedDict[object, ExpansionString]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    # LRU plumbing
    # ------------------------------------------------------------------
    def _lookup(self, store: "OrderedDict[object, object]", key: object) -> Tuple[bool, object]:
        if key in store:
            store.move_to_end(key)
            self.hits += 1
            return True, store[key]
        self.misses += 1
        return False, None

    def _insert(self, store: "OrderedDict[object, object]", key: object, value: object) -> None:
        store[key] = value
        store.move_to_end(key)
        while len(store) > self.maxsize:
            store.popitem(last=False)
            self.evictions += 1

    # ------------------------------------------------------------------
    # containment
    # ------------------------------------------------------------------
    def has_containment_mapping(
        self,
        source: ExpansionString,
        target: ExpansionString,
        frozen: Optional[Set[Variable]] = None,
    ) -> bool:
        """Memoized ``find_containment_mapping(source, target, frozen) is not None``.

        The key pins ``source``'s distinguished variables plus ``frozen`` —
        the variables the search requires to map to themselves — and
        canonicalizes everything else on both sides, so renamed copies of the
        same question share an entry.
        """
        pinned = frozenset(source.distinguished) | frozenset(frozen or ())
        key = (
            tuple(str(variable) for variable in sorted(pinned)),
            canonical_atoms(source, pinned),
            canonical_atoms(target, pinned),
        )
        found, value = self._lookup(self._containment, key)
        if found:
            return bool(value)
        answer = find_containment_mapping(source, target, frozen) is not None
        self._insert(self._containment, key, answer)
        return answer

    def is_contained_in(self, smaller: ExpansionString, larger: ExpansionString) -> bool:
        """Memoized Lemma 2.1 containment: smaller's relation ⊆ larger's relation."""
        return self.has_containment_mapping(larger, smaller)

    def union_contains(self, covering: Sequence[ExpansionString], string: ExpansionString) -> bool:
        """Memoized [SY80] union containment (one covering disjunct suffices)."""
        return any(self.is_contained_in(string, candidate) for candidate in covering)

    def union_contained_in(
        self, smaller: Sequence[ExpansionString], larger: Sequence[ExpansionString]
    ) -> bool:
        """Memoized per-disjunct union containment check."""
        return all(self.union_contains(larger, string) for string in smaller)

    def are_equivalent(self, first: ExpansionString, second: ExpansionString) -> bool:
        """Memoized conjunctive-query equivalence (containment both ways)."""
        return self.is_contained_in(first, second) and self.is_contained_in(second, first)

    # ------------------------------------------------------------------
    # minimization
    # ------------------------------------------------------------------
    def minimize(
        self, string: ExpansionString, frozen: Optional[Set[Variable]] = None
    ) -> ExpansionString:
        """Memoized :func:`repro.cq.minimize.minimize`.

        Keyed by the exact string (atoms, distinguished *and* provenance —
        the minimized result carries a provenance subset, so strings that
        differ only in provenance must not share an entry).
        """
        key = (
            string.distinguished,
            string.atoms,
            string.provenance,
            frozenset(frozen or ()),
        )
        found, value = self._lookup(self._minimized, key)
        if found:
            assert isinstance(value, ExpansionString)
            return value
        minimized = _minimize_uncached(string, frozen)
        self._insert(self._minimized, key, minimized)
        return minimized

    def minimize_union(self, strings: Iterable[ExpansionString]) -> List[ExpansionString]:
        """Memoized :func:`repro.cq.minimize.minimize_union`.

        The subsumption policy lives in :mod:`repro.cq.minimize`; only the
        per-string minimization and the containment tests are swapped for
        their cached counterparts.
        """
        return _minimize_union_uncached(
            list(strings), minimizer=self.minimize, has_mapping=self.has_containment_mapping
        )

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction counters plus current store sizes."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "containment_entries": len(self._containment),
            "minimized_entries": len(self._minimized),
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._containment.clear()
        self._minimized.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CQCache({self.stats()})"


#: the library-wide default cache (boundedness, redundancy verification and
#: the unfolding pass all share it unless handed a private instance)
shared_cache = CQCache()


def cached_has_containment_mapping(
    source: ExpansionString,
    target: ExpansionString,
    frozen: Optional[Set[Variable]] = None,
    cache: Optional[CQCache] = None,
) -> bool:
    """Module-level convenience over :data:`shared_cache`."""
    return (cache or shared_cache).has_containment_mapping(source, target, frozen)


def cached_is_contained_in(
    smaller: ExpansionString, larger: ExpansionString, cache: Optional[CQCache] = None
) -> bool:
    """Module-level convenience over :data:`shared_cache`."""
    return (cache or shared_cache).is_contained_in(smaller, larger)


def cached_union_contains(
    covering: Sequence[ExpansionString],
    string: ExpansionString,
    cache: Optional[CQCache] = None,
) -> bool:
    """Module-level convenience over :data:`shared_cache`."""
    return (cache or shared_cache).union_contains(covering, string)


def cached_minimize(
    string: ExpansionString,
    frozen: Optional[Set[Variable]] = None,
    cache: Optional[CQCache] = None,
) -> ExpansionString:
    """Module-level convenience over :data:`shared_cache`."""
    return (cache or shared_cache).minimize(string, frozen)


def cached_minimize_union(
    strings: Iterable[ExpansionString], cache: Optional[CQCache] = None
) -> List[ExpansionString]:
    """Module-level convenience over :data:`shared_cache`."""
    return (cache or shared_cache).minimize_union(strings)
