"""Conjunctive-query machinery: expansion strings, containment mappings, minimization."""

from .containment import (
    are_equivalent,
    find_containment_mapping,
    has_containment_mapping,
    is_contained_in,
    union_contained_in,
    union_contains,
    verify_containment_mapping,
)
from .minimize import is_minimal, minimize, minimize_union
from .strings import AtomProvenance, ExpansionString, string_union_evaluate

__all__ = [
    "AtomProvenance",
    "ExpansionString",
    "are_equivalent",
    "find_containment_mapping",
    "has_containment_mapping",
    "is_contained_in",
    "is_minimal",
    "minimize",
    "minimize_union",
    "string_union_evaluate",
    "union_contained_in",
    "union_contains",
    "verify_containment_mapping",
]
