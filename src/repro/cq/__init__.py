"""Conjunctive-query machinery: expansion strings, containment, minimization, memoization."""

from .cache import (
    CQCache,
    cached_has_containment_mapping,
    cached_is_contained_in,
    cached_minimize,
    cached_minimize_union,
    cached_union_contains,
    canonical_key,
    shared_cache,
)
from .containment import (
    are_equivalent,
    find_containment_mapping,
    has_containment_mapping,
    is_contained_in,
    union_contained_in,
    union_contains,
    verify_containment_mapping,
)
from .minimize import is_minimal, minimize, minimize_union
from .strings import AtomProvenance, ExpansionString, string_union_evaluate

__all__ = [
    "AtomProvenance",
    "CQCache",
    "ExpansionString",
    "are_equivalent",
    "cached_has_containment_mapping",
    "cached_is_contained_in",
    "cached_minimize",
    "cached_minimize_union",
    "cached_union_contains",
    "canonical_key",
    "find_containment_mapping",
    "has_containment_mapping",
    "is_contained_in",
    "is_minimal",
    "minimize",
    "minimize_union",
    "shared_cache",
    "string_union_evaluate",
    "union_contained_in",
    "union_contains",
    "verify_containment_mapping",
]
