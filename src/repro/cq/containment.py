"""Containment mappings between conjunctive queries (Definition 2.1, Lemma 2.1).

A mapping ``m`` from the variables of a string ``s1`` into the variables of a
string ``s2`` is a *containment mapping* if it maps distinguished variables to
themselves and maps every predicate instance of ``s1`` onto a predicate
instance of ``s2``.  By the Chandra–Merlin / Aho–Sagiv–Ullman theorem
(Lemma 2.1), the relation of ``s1`` contains the relation of ``s2`` exactly
when such a mapping from ``s1`` to ``s2`` exists — equivalently, ``s2``'s
relation is contained in ``s1``'s.

The search is a straightforward backtracking homomorphism search.  Containment
of conjunctive queries is NP-complete in general, but the strings handled here
(expansion prefixes, rewritten rules) are small, and a most-constrained-first
atom order keeps the search fast in practice.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.terms import Constant, Term, Variable, is_variable
from .strings import ExpansionString

Mapping = Dict[Variable, Term]


def _candidate_targets(atom: Atom, targets: Sequence[Atom]) -> List[Atom]:
    """Target atoms that could possibly be the image of ``atom``."""
    return [t for t in targets if t.predicate == atom.predicate and t.arity == atom.arity]


def _extend(mapping: Mapping, source: Atom, target: Atom) -> Optional[Mapping]:
    """Extend ``mapping`` so that ``source`` maps onto ``target``, or fail."""
    extended = dict(mapping)
    for source_arg, target_arg in zip(source.args, target.args):
        if isinstance(source_arg, Constant):
            if source_arg != target_arg:
                return None
            continue
        assert is_variable(source_arg)
        bound = extended.get(source_arg)
        if bound is None:
            extended[source_arg] = target_arg
        elif bound != target_arg:
            return None
    return extended


def find_containment_mapping(
    source: ExpansionString,
    target: ExpansionString,
    frozen: Optional[Set[Variable]] = None,
) -> Optional[Mapping]:
    """A containment mapping from ``source`` to ``target``, or ``None``.

    Distinguished variables of ``source`` must map to themselves (they are
    pinned, along with any extra variables passed in ``frozen``).  Following
    Lemma 2.1, the existence of such a mapping proves that the relation of
    ``target`` is contained in the relation of ``source``.
    """
    pinned: Set[Variable] = set(source.distinguished) | (frozen or set())
    mapping: Mapping = {var: var for var in pinned}

    # Most-constrained-first: atoms with the fewest candidate images first.
    order = sorted(
        range(len(source.atoms)),
        key=lambda i: len(_candidate_targets(source.atoms[i], target.atoms)),
    )

    target_atoms = list(target.atoms)

    def search(position: int, current: Mapping) -> Optional[Mapping]:
        if position == len(order):
            return current
        source_atom = source.atoms[order[position]]
        for target_atom in _candidate_targets(source_atom, target_atoms):
            extended = _extend(current, source_atom, target_atom)
            if extended is None:
                continue
            # pinned variables must stay mapped to themselves
            if any(extended.get(var, var) != var for var in pinned):
                continue
            found = search(position + 1, extended)
            if found is not None:
                return found
        return None

    return search(0, mapping)


def has_containment_mapping(source: ExpansionString, target: ExpansionString) -> bool:
    """``True`` when a containment mapping from ``source`` to ``target`` exists."""
    return find_containment_mapping(source, target) is not None


def is_contained_in(smaller: ExpansionString, larger: ExpansionString) -> bool:
    """``True`` when the relation of ``smaller`` ⊆ the relation of ``larger``.

    By Lemma 2.1 this holds iff there is a containment mapping from ``larger``
    to ``smaller``.
    """
    return has_containment_mapping(larger, smaller)


def are_equivalent(first: ExpansionString, second: ExpansionString) -> bool:
    """Conjunctive-query equivalence: containment in both directions."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def union_contains(covering: Sequence[ExpansionString], string: ExpansionString) -> bool:
    """``True`` when the union of ``covering`` contains the relation of ``string``.

    For unions of conjunctive queries, containment of a single CQ in a union
    reduces to containment in one disjunct (Sagiv–Yannakakis [SY80]), so it is
    enough to find one covering string that maps onto ``string``.
    """
    return any(is_contained_in(string, candidate) for candidate in covering)


def union_contained_in(smaller: Sequence[ExpansionString], larger: Sequence[ExpansionString]) -> bool:
    """``True`` when the union of ``smaller`` ⊆ the union of ``larger`` (per-disjunct check)."""
    return all(union_contains(larger, string) for string in smaller)


def verify_containment_mapping(
    mapping: Mapping, source: ExpansionString, target: ExpansionString
) -> bool:
    """Check the two Definition 2.1 conditions for an explicit mapping.

    Used by property-based tests to validate mappings produced by the search.
    """
    for variable in source.distinguished:
        if mapping.get(variable, variable) != variable:
            return False
    target_atoms = set(target.atoms)
    for atom in source.atoms:
        image = atom.substitute(mapping)
        if image not in target_atoms:
            return False
    return True
