"""Expansion generation (Procedure *Expand*, Figure 1, and its generalization).

The *expansion* of a recursively defined predicate is the set of all
conjunctions of EDB predicate instances obtainable by repeatedly applying
rules, starting from an instance of the predicate.  For definitions with one
linear recursive rule and nonrecursive exit rules, Figure 1 of the paper
generates the expansion string by string; :func:`expand` implements that
procedure literally, including the variable-subscript convention ("a
nondistinguished variable ``W_i`` first appears in *CurString* on iteration
``i``").

Appendix A relaxes the single-rule restriction; :func:`expand_general`
implements the fringe-based generalization described there, which is needed to
expand the programs produced by the Theorem 3.2 reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.errors import ProgramError
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Term, Variable, is_variable
from ..cq.strings import AtomProvenance, ExpansionString


def _apply_rule_to_instance(instance: Atom, rule: Rule, iteration: int) -> List[Atom]:
    """Replace ``instance`` by the body of ``rule`` after unifying with the head.

    Because rule heads contain no repeated variables and no constants, the
    most general unifier is the matching head-variable → instance-argument;
    every other rule variable receives the subscript of the current iteration,
    exactly as in Figure 1.
    """
    if rule.head.predicate != instance.predicate or rule.head.arity != instance.arity:
        raise ProgramError(f"rule {rule} does not apply to instance {instance}")
    mapping: Dict[Variable, Term] = {}
    for head_arg, instance_arg in zip(rule.head.args, instance.args):
        if not is_variable(head_arg):
            raise ProgramError(
                f"rule {rule} has a constant in its head; the paper's expansion "
                "procedure requires constant-free heads"
            )
        mapping[head_arg] = instance_arg
    for variable in sorted(rule.variables()):
        if variable not in mapping:
            mapping[variable] = variable.with_subscript(iteration)
    return [atom.substitute(mapping) for atom in rule.body]


def expand(
    program: Program,
    predicate: str,
    depth: int,
    selection: Optional[Dict[int, object]] = None,
) -> List[ExpansionString]:
    """The first ``depth + 1`` strings of the expansion of ``predicate``.

    Implements Procedure *Expand* (Figure 1) for definitions with a single
    linear recursive rule; when the definition has several exit rules, each
    depth contributes one string per exit rule (the expansion is their union).

    Parameters
    ----------
    program:
        The defining program.
    predicate:
        The recursively defined predicate to expand.
    depth:
        Maximum number of recursive-rule applications; string ``k`` applies the
        recursive rule ``k`` times and then an exit rule.
    selection:
        Optional ``{column: constant}`` selection to push into the initial
        instance, as Section 4 does when evaluating ``t(X, n0)`` — the
        distinguished variable of a selected column is replaced by the
        constant in every string.

    Returns
    -------
    The strings ordered by recursion depth (and by exit-rule order within a
    depth).
    """
    recursive_rule = program.linear_recursive_rule(predicate)
    exit_rules = program.exit_rules_for(predicate)
    if not exit_rules:
        raise ProgramError(f"predicate {predicate} has no nonrecursive (exit) rule")

    distinguished = tuple(recursive_rule.head_variables())
    if len(distinguished) != recursive_rule.head.arity:
        raise ProgramError(
            f"recursive rule head {recursive_rule.head} must contain only variables"
        )

    initial_args: List[Term] = list(distinguished)
    if selection:
        for column, value in selection.items():
            initial_args[column] = Constant(value) if not isinstance(value, Constant) else value
    cur_instance = Atom(predicate, tuple(initial_args))

    # CurString holds the non-recursive prefix accumulated so far plus the
    # current recursive-predicate instance at a known position.
    prefix_atoms: List[Atom] = []
    prefix_provenance: List[AtomProvenance] = []
    instance_position = 0  # where the recursive instance sits inside the string

    strings: List[ExpansionString] = []
    for iteration in range(depth + 1):
        # Emit: CurString with each exit rule applied to the recursive instance.
        for exit_rule in exit_rules:
            exit_atoms = _apply_rule_to_instance(cur_instance, exit_rule, iteration)
            atoms = (
                prefix_atoms[:instance_position]
                + exit_atoms
                + prefix_atoms[instance_position:]
            )
            provenance = (
                prefix_provenance[:instance_position]
                + [AtomProvenance(iteration, True)] * len(exit_atoms)
                + prefix_provenance[instance_position:]
            )
            strings.append(ExpansionString(distinguished, tuple(atoms), tuple(provenance)))

        if iteration == depth:
            break

        # Advance: apply the recursive rule to the recursive instance.
        body_atoms = _apply_rule_to_instance(cur_instance, recursive_rule, iteration)
        recursive_offset = None
        new_nonrecursive: List[Atom] = []
        new_provenance: List[AtomProvenance] = []
        for offset, atom in enumerate(body_atoms):
            if atom.predicate == predicate and recursive_offset is None:
                recursive_offset = len(new_nonrecursive)
                cur_instance = atom
            else:
                new_nonrecursive.append(atom)
                new_provenance.append(AtomProvenance(iteration, False))
        if recursive_offset is None:
            raise ProgramError(f"rule {recursive_rule} lost its recursive atom during expansion")
        prefix_atoms = (
            prefix_atoms[:instance_position]
            + new_nonrecursive
            + prefix_atoms[instance_position:]
        )
        prefix_provenance = (
            prefix_provenance[:instance_position]
            + new_provenance
            + prefix_provenance[instance_position:]
        )
        instance_position += recursive_offset

    return strings


@dataclass(frozen=True)
class _FringeElement:
    """A partially expanded conjunction (may still contain IDB instances)."""

    atoms: Tuple[Atom, ...]
    provenance: Tuple[AtomProvenance, ...]
    applications: int


def expand_general(
    program: Program,
    predicate: str,
    max_applications: int,
    max_strings: int = 2000,
    selection: Optional[Dict[int, object]] = None,
) -> List[ExpansionString]:
    """Generalized expansion for programs with any number of (linear) rules.

    Appendix A: initialise the fringe with the initial instance of the
    predicate; on each step pick an element of the fringe and an applicable
    rule in all possible ways, replacing the chosen IDB instance by the rule
    body.  The expansion is the set of conjunctions consisting solely of EDB
    predicates.

    ``max_applications`` bounds the number of rule applications along any
    derivation; ``max_strings`` bounds the size of the returned list (the
    expansion of a recursive predicate is infinite).
    """
    idb = program.idb_predicates()
    if predicate not in idb:
        raise ProgramError(f"predicate {predicate} is not defined by the program")

    arity = program.arity_of(predicate)
    distinguished = tuple(Variable(f"X{i + 1}") for i in range(arity))
    initial_args: List[Term] = list(distinguished)
    if selection:
        for column, value in selection.items():
            initial_args[column] = Constant(value) if not isinstance(value, Constant) else value

    initial = _FringeElement(
        atoms=(Atom(predicate, tuple(initial_args)),),
        provenance=(AtomProvenance(0, False),),
        applications=0,
    )

    results: List[ExpansionString] = []
    seen_results: Set[Tuple[Atom, ...]] = set()
    fringe: List[_FringeElement] = [initial]
    seen_fringe: Set[Tuple[Atom, ...]] = {initial.atoms}

    while fringe and len(results) < max_strings:
        element = fringe.pop(0)
        idb_positions = [i for i, atom in enumerate(element.atoms) if atom.predicate in idb]
        if not idb_positions:
            if element.atoms not in seen_results:
                seen_results.add(element.atoms)
                results.append(ExpansionString(distinguished, element.atoms, element.provenance))
            continue
        if element.applications >= max_applications:
            continue
        for position in idb_positions:
            instance = element.atoms[position]
            for rule in program.rules_for(instance.predicate):
                try:
                    body_atoms = _apply_rule_to_instance(instance, rule, element.applications)
                except ProgramError:
                    continue
                new_atoms = (
                    element.atoms[:position]
                    + tuple(body_atoms)
                    + element.atoms[position + 1 :]
                )
                new_provenance = (
                    element.provenance[:position]
                    + tuple(
                        AtomProvenance(element.applications, not rule.is_recursive())
                        for _ in body_atoms
                    )
                    + element.provenance[position + 1 :]
                )
                if new_atoms in seen_fringe:
                    continue
                seen_fringe.add(new_atoms)
                fringe.append(
                    _FringeElement(new_atoms, new_provenance, element.applications + 1)
                )
    return results


def expansion_prefix_program(strings: Sequence[ExpansionString], predicate: str) -> Program:
    """Re-express a finite set of strings as a nonrecursive program.

    Each string becomes one rule ``predicate(distinguished) :- atoms``.  Used
    when comparing a recursion against a finite prefix of its expansion and by
    the boundedness machinery of Appendix A.
    """
    rules: List[Rule] = []
    for string in strings:
        head = Atom(predicate, tuple(string.distinguished))
        rules.append(Rule(head, tuple(string.atoms)))
    return Program(tuple(rules))
