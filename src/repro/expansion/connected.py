"""Connected sets of predicate instances (Definitions 3.1–3.3).

Two predicate instances in a string are *connected* when they share a variable
directly or through a chain of instances; a *connected set* is a maximal group
of pairwise connected instances.  The definition of a k-sided recursion
(Definition 3.3) counts, per string of the expansion and after removing the
exit-rule instances, how many connected sets grow without bound.

This module computes connected sets of concrete strings (union–find over
shared variables) and derives an *empirical* sidedness estimate from a finite
prefix of the expansion.  The structural detection of Theorem 3.1 lives in
:mod:`repro.core.classify`; tests and benchmark E9 cross-validate the two.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..datalog.rules import Program
from ..datalog.terms import Variable
from ..cq.strings import ExpansionString
from .generator import expand


class _UnionFind:
    """Minimal union–find over integer atom indexes."""

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, item: int) -> int:
        root = item
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[item] != root:
            self.parent[item], item = root, self.parent[item]
        return root

    def union(self, left: int, right: int) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self.parent[right_root] = left_root


def connected_sets(string: ExpansionString, include_exit: bool = True) -> List[List[int]]:
    """The connected sets of a string, as lists of atom indexes.

    ``include_exit=False`` removes the instances produced by the nonrecursive
    rule first, as Definition 3.3 requires.  Atoms without variables form
    singleton sets.
    """
    indexes = string.atom_indexes(include_exit=include_exit)
    if not indexes:
        return []
    position_of = {atom_index: position for position, atom_index in enumerate(indexes)}
    union_find = _UnionFind(len(indexes))
    by_variable: Dict[Variable, int] = {}
    for atom_index in indexes:
        for variable in string.atoms[atom_index].variable_set():
            if variable in by_variable:
                union_find.union(by_variable[variable], position_of[atom_index])
            else:
                by_variable[variable] = position_of[atom_index]
    groups: Dict[int, List[int]] = {}
    for atom_index in indexes:
        root = union_find.find(position_of[atom_index])
        groups.setdefault(root, []).append(atom_index)
    return sorted(groups.values(), key=lambda group: (-len(group), group))


def connected_set_sizes(string: ExpansionString, include_exit: bool = False) -> List[int]:
    """Sizes of the connected sets, largest first (exit instances removed by default)."""
    return [len(group) for group in connected_sets(string, include_exit=include_exit)]


@dataclass
class SidednessEstimate:
    """Result of the empirical Definition 3.3 estimate.

    Attributes
    ----------
    k:
        The estimated number of unbounded connected sets (0 means every
        connected set stayed bounded over the examined prefix, i.e. the
        recursion looks bounded).
    threshold:
        The size threshold ``c'`` used for the final count.
    per_depth_sizes:
        For each examined string (by recursion depth), the sorted connected
        set sizes after removing exit-rule instances.
    counts_by_threshold:
        ``{c': max number of sets of size >= c' in any string}`` for the swept
        thresholds — the raw data behind the estimate, reported by bench E9.
    """

    k: int
    threshold: int
    per_depth_sizes: List[List[int]] = field(default_factory=list)
    counts_by_threshold: Dict[int, int] = field(default_factory=dict)


def estimate_sidedness(
    program: Program,
    predicate: str,
    depth: int = 12,
    strings: Optional[Sequence[ExpansionString]] = None,
) -> SidednessEstimate:
    """Estimate the sidedness of a recursion from a finite expansion prefix.

    The estimate follows Definition 3.3 directly: for a threshold ``c'`` well
    below the deepest string's largest component but above any bounded
    component, count the maximum number of size-≥-``c'`` connected sets in any
    string.  For a genuinely k-sided recursion the count stabilises at ``k``
    as ``c'`` grows; for a bounded recursion every component stays below the
    threshold and the estimate is 0.
    """
    if strings is None:
        strings = expand(program, predicate, depth)
    per_depth_sizes = [connected_set_sizes(string, include_exit=False) for string in strings]
    max_size = max((sizes[0] for sizes in per_depth_sizes if sizes), default=0)

    counts_by_threshold: Dict[int, int] = {}
    for threshold in range(1, max(2, max_size + 1)):
        counts_by_threshold[threshold] = max(
            (sum(1 for size in sizes if size >= threshold) for sizes in per_depth_sizes),
            default=0,
        )

    if max_size <= 1:
        return SidednessEstimate(0, 1, per_depth_sizes, counts_by_threshold)

    # Components that stop growing are "bounded"; anything still at least half
    # the deepest string's largest component is treated as unbounded.  For the
    # depths used in tests/benches this separates the two regimes cleanly.
    threshold = max(2, (max_size + 1) // 2)
    k = counts_by_threshold.get(threshold, 0)
    if max_size < 3:
        # Nothing grew beyond a couple of atoms over `depth` recursive
        # applications: treat every component as bounded.
        k = 0
    return SidednessEstimate(k, threshold, per_depth_sizes, counts_by_threshold)


def connected_set_growth(
    program: Program, predicate: str, depth: int
) -> List[Tuple[int, List[int]]]:
    """Per-depth connected-set sizes, for the E9 growth tables.

    Returns ``[(recursion_depth, sorted sizes), ...]`` with exit instances
    removed, one entry per string of the expansion prefix.
    """
    strings = expand(program, predicate, depth)
    growth: List[Tuple[int, List[int]]] = []
    for string in strings:
        growth.append((string.recursion_depth(), connected_set_sizes(string, include_exit=False)))
    return growth


def instances_share_connected_set(
    string: ExpansionString, first_index: int, second_index: int, include_exit: bool = True
) -> bool:
    """``True`` when two atoms of a string lie in the same connected set.

    This is the concrete relation that Lemma 3.1 characterises through paths
    in the full A/V graph; property tests compare the two.
    """
    for group in connected_sets(string, include_exit=include_exit):
        if first_index in group:
            return second_index in group
    return False
