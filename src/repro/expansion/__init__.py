"""Expansion generation and connected-set analysis (Figure 1, Definitions 3.1-3.3)."""

from .connected import (
    SidednessEstimate,
    connected_set_growth,
    connected_set_sizes,
    connected_sets,
    estimate_sidedness,
    instances_share_connected_set,
)
from .generator import expand, expand_general, expansion_prefix_program

__all__ = [
    "SidednessEstimate",
    "connected_set_growth",
    "connected_set_sizes",
    "connected_sets",
    "estimate_sidedness",
    "expand",
    "expand_general",
    "expansion_prefix_program",
    "instances_share_connected_set",
]
