"""Special database families constructed in the paper's proofs and examples.

* :func:`lemma_4_2_database` — the family of databases from Lemma 4.2: for any
  ``k`` there is a database on which the only proof of some tuple of the
  canonical two-sided recursion repeats a constant ``k`` times in a column of
  ``a``.
* :func:`buys_database` — likes/knows/cheap data for the Section 3 buys
  recursion.
* :func:`same_generation_database` — parent data (a uniform tree) for the
  same-generation recursion of Example 3.3.
* :func:`permissions_database` — edge + permission data for Example 4.1.
* :func:`appendix_a_database` — EDB data for Example A.1's program P and its
  reduction Q.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from ..datalog.database import Database
from .graphs import Edge, random_pairs, uniform_tree


def lemma_4_2_database(k: int) -> Tuple[Database, Tuple[str, str]]:
    """The Lemma 4.2 adversarial family for the canonical two-sided recursion.

    For the recursion ``t(X, Y) :- a(X, W), t(W, Z), c(Z, Y)`` /
    ``t(X, Y) :- b(X, Y)``:

    * ``a`` contains the single tuple ``(v1, v1)`` (a self-loop),
    * ``b`` contains ``(v1, v0)``,
    * ``c`` contains the chain ``(v0, v1), (v1, v2), ..., (v_{2k-1}, v_{2k})``.

    The only proof that ``(v1, v_k... )`` — concretely ``(v1, c_chain[k])`` —
    is in ``t`` uses the ``a`` self-loop ``k`` times, so ``v1`` appears ``k``
    times in the first column of ``a`` in that proof.  The function returns
    the database and the target tuple whose proof exhibits the repetition.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    database = Database()
    database.add_fact("a", ("v1", "v1"))
    database.add_fact("b", ("v1", "v0"))
    for index in range(2 * k):
        database.add_fact("c", (f"v{index}" if index else "v0", f"v{index + 1}"))
    target = ("v1", f"v{k}")
    return database, target


def buys_database(
    people: int = 30,
    items: int = 20,
    likes_per_person: int = 2,
    knows_per_person: int = 3,
    cheap_fraction: float = 0.5,
    seed: int = 0,
) -> Database:
    """Random likes/knows/cheap data for the Section 3 buys recursion."""
    rng = random.Random(seed)
    database = Database()
    database.declare("likes", 2)
    database.declare("knows", 2)
    database.declare("cheap", 1)
    cheap_items = [f"item{i}" for i in range(items) if rng.random() < cheap_fraction]
    for item in cheap_items:
        database.add_fact("cheap", (item,))
    for person in range(people):
        for _ in range(likes_per_person):
            database.add_fact("likes", (f"person{person}", f"item{rng.randrange(items)}"))
        for _ in range(knows_per_person):
            other = rng.randrange(people)
            if other != person:
                database.add_fact("knows", (f"person{person}", f"person{other}"))
    return database


def same_generation_database(branching: int = 2, depth: int = 5) -> Database:
    """Parent data (child → parent) for the same-generation recursion.

    The exit relation ``sg0`` is the identity on every node (everyone is in
    the same generation as themselves), which is the standard setup.
    """
    edges = uniform_tree(branching, depth)
    database = Database()
    database.declare("p", 2)
    database.declare("sg0", 2)
    nodes = {0}
    for parent, child in edges:
        database.add_fact("p", (child, parent))  # p(child, parent): one step up
        nodes.add(parent)
        nodes.add(child)
    for node in nodes:
        database.add_fact("sg0", (node, node))
    # the distinct-predicate variant shares the same data under different names
    database.declare("up", 2)
    database.declare("down", 2)
    database.declare("flat", 2)
    for parent, child in edges:
        database.add_fact("up", (child, parent))
        database.add_fact("down", (child, parent))
    for node in nodes:
        database.add_fact("flat", (node, node))
    return database


def permissions_database(
    edges: Sequence[Edge],
    permission_fraction: float = 0.7,
    seed: int = 0,
) -> Database:
    """Edge + permission data for Example 4.1 (transitive closure with permissions).

    ``a`` and ``b`` both hold the edges; ``p`` holds a random subset of all
    node pairs (the pairs for which traversal is permitted).
    """
    rng = random.Random(seed)
    database = Database()
    database.declare("a", 2)
    database.declare("b", 2)
    database.declare("p", 2)
    nodes = set()
    for source, target in edges:
        database.add_fact("a", (source, target))
        database.add_fact("b", (source, target))
        nodes.add(source)
        nodes.add(target)
    for source in nodes:
        for target in nodes:
            if rng.random() < permission_fraction:
                database.add_fact("p", (source, target))
    return database


def appendix_a_database(pairs: int = 12, domain: int = 8, seed: int = 0) -> Database:
    """EDB data for Example A.1's program P (relations ``c`` and ``p0``)."""
    rng = random.Random(seed)
    database = Database()
    database.declare("c", 1)
    database.declare("p0", 2)
    for value in range(domain):
        if rng.random() < 0.7:
            database.add_fact("c", (value,))
    for source, target in random_pairs(pairs, domain, seed=seed + 1):
        database.add_fact("p0", (source, target))
    return database


def unbounded_p_database(edges: int = 20, domain: int = 10, seed: int = 0) -> Database:
    """EDB data for the unbounded program used as the Appendix A negative case."""
    database = Database()
    database.declare("r", 2)
    database.declare("p0", 2)
    for source, target in random_pairs(edges, domain, seed=seed):
        database.add_fact("r", (source, target))
    for source, target in random_pairs(max(3, edges // 3), domain, seed=seed + 7):
        database.add_fact("p0", (source, target))
    return database
