"""The canonical programs used by the paper (and by the benchmark suite).

Every recursion the paper discusses as an example is defined here once, so
tests, examples and benchmarks all exercise exactly the same rules:

====================  =====================================================
factory               paper reference
====================  =====================================================
transitive_closure    Examples 2.1 / 2.2, the canonical one-sided recursion
same_generation       Example 3.3, the canonical two-sided recursion (the
                      "same generation" problem)
example_3_4           Example 3.4 / Figure 5, one-sided with a disconnected
                      ``d(Z)`` instance (rule reconstructed, see DESIGN.md)
example_3_5           Example 3.5 / Figure 6, superficially regular but
                      two-sided (cycle of weight 2)
canonical_two_sided   Section 4's canonical two-sided recursion
                      ``t(X,Y) :- a(X,W), t(W,Z), c(Z,Y)``
buys_unoptimized      Section 3's buys/knows/cheap recursion (two-sided
                      before redundancy removal)
buys_optimized        the same recursion after removing ``cheap(Y)``
tc_with_permissions   Example 4.1, "transitive closure with permissions"
                      (rule reconstructed, see DESIGN.md)
appendix_a_p          Example A.1's bounded program P
bounded_guard_tc      a uniformly bounded guard recursion (witness depth 1);
                      exercises the Theorem 3.3 → unfolding rewrite
bounded_swap          a uniformly bounded swap recursion (witness depth 2);
                      the E14 unfolding benchmark's workload
unbounded_p           an unbounded single-IDB program used as the negative
                      case for the Appendix A reduction
====================  =====================================================
"""

from __future__ import annotations

from ..datalog.parser import parse_program
from ..datalog.rules import Program


def transitive_closure(edge: str = "a", base: str = "b", predicate: str = "t") -> Program:
    """The canonical one-sided recursion (Example 2.1)."""
    return parse_program(
        f"""
        {predicate}(X, Y) :- {edge}(X, Z), {predicate}(Z, Y).
        {predicate}(X, Y) :- {base}(X, Y).
        """
    )


def same_generation(parent: str = "p", base: str = "sg0", predicate: str = "sg") -> Program:
    """The same-generation problem (Example 3.3), the canonical two-sided recursion.

    The paper writes both parent atoms with the predicate ``p``; by default we
    do the same (the rule then has a repeated nonrecursive predicate, exactly
    as in the paper).
    """
    return parse_program(
        f"""
        {predicate}(X, Y) :- {parent}(X, W), {parent}(Y, Z), {predicate}(W, Z).
        {predicate}(X, Y) :- {base}(X, Y).
        """
    )


def same_generation_distinct_parents(
    up: str = "up", down: str = "down", base: str = "flat", predicate: str = "sg"
) -> Program:
    """Same-generation with distinct up/down predicates (no repeated predicates).

    This variant satisfies the "no repeated nonrecursive predicates"
    hypothesis of Theorems 3.3/3.4 while remaining two-sided, so the pipeline
    benchmarks can exercise the complete decision procedure on it.
    """
    return parse_program(
        f"""
        {predicate}(X, Y) :- {up}(X, W), {down}(Y, Z), {predicate}(W, Z).
        {predicate}(X, Y) :- {base}(X, Y).
        """
    )


def example_3_4() -> Program:
    """Example 3.4 / Figure 5 (reconstructed rule; one-sided, k = 1, c = 1).

    The expansion contains a ``d``-instance disconnected from the growing
    ``e`` chain, which Section 4 uses to illustrate the Property 3 exception.
    """
    return parse_program(
        """
        t(X, Y, Z) :- t(X, U, W), e(U, Y), d(Z).
        t(X, Y, Z) :- t0(X, Y, Z).
        """
    )


def example_3_5() -> Program:
    """Example 3.5 / Figure 6: superficially regular, but two-sided (cycle weight 2)."""
    return parse_program(
        """
        t(X, Y) :- e(X, W), t(Y, W).
        t(X, Y) :- t0(X, Y).
        """
    )


def canonical_two_sided(
    up: str = "a", base: str = "b", down: str = "c", predicate: str = "t"
) -> Program:
    """Section 4's canonical two-sided recursion ``t(X,Y) :- a(X,W), t(W,Z), c(Z,Y)``."""
    return parse_program(
        f"""
        {predicate}(X, Y) :- {up}(X, W), {predicate}(W, Z), {down}(Z, Y).
        {predicate}(X, Y) :- {base}(X, Y).
        """
    )


def buys_unoptimized() -> Program:
    """Section 3's buys recursion before optimization (two-sided)."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y), cheap(Y).
        buys(X, Y) :- knows(X, W), buys(W, Y), cheap(Y).
        """
    )


def buys_optimized() -> Program:
    """The buys recursion after removing the recursively redundant ``cheap(Y)``."""
    return parse_program(
        """
        buys(X, Y) :- likes(X, Y), cheap(Y).
        buys(X, Y) :- knows(X, W), buys(W, Y).
        """
    )


def tc_with_permissions() -> Program:
    """Example 4.1: transitive closure with permissions (reconstructed rule).

    One-sided, but the permission predicate mentions both distinguished
    variables, which is why no obvious arity-reducing evaluation exists.
    """
    return parse_program(
        """
        t(X, Y) :- a(X, Z), t(Z, Y), p(X, Y).
        t(X, Y) :- b(X, Y).
        """
    )


def bounded_guard_tc() -> Program:
    """A uniformly bounded "guarded" recursion: the recursive rule derives nothing.

    ``a(X, Y)`` mentions only distinguished variables, so it is recursively
    redundant (Theorem 3.3) and the recursion is uniformly bounded with
    witness depth 1 — the relation is exactly ``b``.  The unfolding pass
    rewrites it to the single exit rule.
    """
    return parse_program(
        """
        t(X, Y) :- a(X, Y), t(X, Y).
        t(X, Y) :- b(X, Y).
        """
    )


def bounded_swap() -> Program:
    """A uniformly bounded recursion with witness depth 2 (the "swap" family).

    The recursive call swaps the distinguished variables, so depth-2 strings
    fold into depth-0 strings and the recursion equals
    ``b(X, Y) ∪ (a(X, Y) ∧ b(Y, X))``.  Semi-naive evaluation still iterates
    over the data; the unfolding pass reduces it to two nonrecursive rules,
    which is what the E14 benchmark measures.
    """
    return parse_program(
        """
        t(X, Y) :- a(X, Y), t(Y, X).
        t(X, Y) :- b(X, Y).
        """
    )


def appendix_a_p() -> Program:
    """Example A.1's program P: bounded (the recursive rule derives nothing new)."""
    return parse_program(
        """
        p(X1, X2) :- c(X1), p(X1, X2).
        p(X1, X2) :- c(X1), p0(X1, X2).
        """
    )


def unbounded_p() -> Program:
    """An unbounded linear program over a single binary IDB predicate.

    Used as the negative case of the Appendix A reduction experiments: the
    reduction applied to this program yields a Q with no one-sided equivalent.
    """
    return parse_program(
        """
        p(X1, X2) :- r(X1, W), p(W, X2).
        p(X1, X2) :- p0(X1, X2).
        """
    )


def nonlinear_tc() -> Program:
    """The nonlinear (doubling) transitive closure.

    Outside the paper's single-linear-rule scope; used by tests to confirm the
    detection machinery rejects it cleanly rather than misclassifying it.
    """
    return parse_program(
        """
        t(X, Y) :- t(X, Z), t(Z, Y).
        t(X, Y) :- b(X, Y).
        """
    )


ALL_CANONICAL = {
    "transitive_closure": transitive_closure,
    "same_generation": same_generation,
    "same_generation_distinct_parents": same_generation_distinct_parents,
    "example_3_4": example_3_4,
    "example_3_5": example_3_5,
    "canonical_two_sided": canonical_two_sided,
    "buys_unoptimized": buys_unoptimized,
    "buys_optimized": buys_optimized,
    "tc_with_permissions": tc_with_permissions,
    "appendix_a_p": appendix_a_p,
    "bounded_guard_tc": bounded_guard_tc,
    "bounded_swap": bounded_swap,
    "unbounded_p": unbounded_p,
}
"""Name → factory map over every canonical program (handy for parametrised tests)."""
