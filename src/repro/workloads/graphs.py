"""Synthetic graph/relation generators for the benchmark workloads.

The paper has no accompanying datasets (PODS 1987), so the benchmark harness
evaluates the algorithms on standard synthetic relational instances: chains,
cycles, trees, grids, layered DAGs and sparse random graphs.  Every generator
is deterministic given its parameters (random generators take an explicit
seed), returns plain edge lists, and has a companion helper that packages the
edges into a :class:`~repro.datalog.database.Database` with the relation names
the canonical programs expect.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.database import Database

Edge = Tuple[int, int]


def chain(length: int, start: int = 0) -> List[Edge]:
    """A simple path ``start -> start+1 -> ... -> start+length``."""
    return [(start + i, start + i + 1) for i in range(length)]


def cycle(length: int, start: int = 0) -> List[Edge]:
    """A directed cycle of the given length (used by the termination experiments)."""
    edges = chain(length - 1, start)
    edges.append((start + length - 1, start))
    return edges


def complete_binary_tree(depth: int) -> List[Edge]:
    """Edges parent → child of a complete binary tree with ``2**depth`` leaves."""
    edges: List[Edge] = []
    for node in range(1, 2 ** depth):
        edges.append((node, 2 * node))
        edges.append((node, 2 * node + 1))
    return edges


def uniform_tree(branching: int, depth: int) -> List[Edge]:
    """Edges parent → child of a uniform ``branching``-ary tree of the given depth."""
    edges: List[Edge] = []
    next_id = 1
    frontier = [0]
    for _level in range(depth):
        new_frontier: List[int] = []
        for parent in frontier:
            for _ in range(branching):
                child = next_id
                next_id += 1
                edges.append((parent, child))
                new_frontier.append(child)
        frontier = new_frontier
    return edges


def grid(width: int, height: int) -> List[Edge]:
    """Right/down edges of a ``width × height`` grid (node id = row * width + column)."""
    edges: List[Edge] = []
    for row in range(height):
        for column in range(width):
            node = row * width + column
            if column + 1 < width:
                edges.append((node, node + 1))
            if row + 1 < height:
                edges.append((node, node + width))
    return edges


def layered_dag(layers: int, width: int, fanout: int, seed: int = 0) -> List[Edge]:
    """A layered DAG: ``layers`` layers of ``width`` nodes, each node with ``fanout`` successors."""
    rng = random.Random(seed)
    edges: Set[Edge] = set()
    for layer in range(layers - 1):
        for position in range(width):
            source = layer * width + position
            for _ in range(fanout):
                target = (layer + 1) * width + rng.randrange(width)
                edges.add((source, target))
    return sorted(edges)


def random_graph(nodes: int, edges: int, seed: int = 0, allow_self_loops: bool = False) -> List[Edge]:
    """A sparse random directed graph with the requested number of distinct edges."""
    rng = random.Random(seed)
    result: Set[Edge] = set()
    attempts = 0
    limit = max(1, nodes * nodes)
    while len(result) < min(edges, limit) and attempts < 50 * edges + 100:
        attempts += 1
        source = rng.randrange(nodes)
        target = rng.randrange(nodes)
        if not allow_self_loops and source == target:
            continue
        result.add((source, target))
    return sorted(result)


def random_pairs(count: int, domain: int, seed: int = 0) -> List[Edge]:
    """``count`` distinct random pairs over ``range(domain)`` (self-pairs allowed)."""
    rng = random.Random(seed)
    result: Set[Edge] = set()
    attempts = 0
    while len(result) < min(count, domain * domain) and attempts < 50 * count + 100:
        attempts += 1
        result.add((rng.randrange(domain), rng.randrange(domain)))
    return sorted(result)


def nodes_of(edges: Iterable[Edge]) -> List[int]:
    """The sorted set of endpoints of an edge list."""
    seen: Set[int] = set()
    for source, target in edges:
        seen.add(source)
        seen.add(target)
    return sorted(seen)


# ----------------------------------------------------------------------
# database packaging helpers
# ----------------------------------------------------------------------
def edge_database(
    edges: Sequence[Edge],
    edge_name: str = "a",
    base_name: str = "b",
    base_edges: Optional[Sequence[Edge]] = None,
) -> Database:
    """A database for the transitive-closure-style programs.

    ``edge_name`` receives the edges; ``base_name`` receives ``base_edges`` when
    given, otherwise the same edges (the common "t is the closure of a" setup,
    where the exit relation coincides with the edge relation).
    """
    database = Database()
    database.declare(edge_name, 2)
    database.declare(base_name, 2)
    for edge in edges:
        database.add_fact(edge_name, edge)
    for edge in base_edges if base_edges is not None else edges:
        database.add_fact(base_name, edge)
    return database


def relations_database(**relations: Sequence[Sequence]) -> Database:
    """A database from keyword arguments, e.g. ``relations_database(a=[(1, 2)], p=[(1,)])``."""
    database = Database()
    for name, rows in relations.items():
        rows = list(rows)
        if not rows:
            raise ValueError(f"relation {name} needs at least one tuple to infer its arity")
        database.declare(name, len(tuple(rows[0])))
        for row in rows:
            database.add_fact(name, tuple(row))
    return database
