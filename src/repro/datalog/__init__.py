"""Datalog substrate: terms, atoms, rules, programs, parser, storage.

This package is the function-free Horn-clause language and extensional store
that the paper's constructions are defined over (Section 2).
"""

from .atoms import Atom, fact, share_variable
from .database import Database, DatabaseListener
from .errors import (
    EvaluationError,
    NotOneSidedError,
    ParseError,
    ProgramError,
    QueryTimeout,
    ReproError,
    SchemaError,
)
from .parser import parse_atom, parse_program, parse_query, parse_rule, split_facts
from .relation import Relation
from .rules import Program, Rule, single_linear_recursion
from .terms import Constant, Term, Variable, is_constant, is_variable, make_term
from .unify import Substitution, match_atom, unify_atoms

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "DatabaseListener",
    "EvaluationError",
    "NotOneSidedError",
    "ParseError",
    "Program",
    "ProgramError",
    "QueryTimeout",
    "Relation",
    "ReproError",
    "Rule",
    "SchemaError",
    "Substitution",
    "Term",
    "Variable",
    "fact",
    "is_constant",
    "is_variable",
    "make_term",
    "match_atom",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "share_variable",
    "single_linear_recursion",
    "split_facts",
    "unify_atoms",
]
