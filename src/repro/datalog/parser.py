"""Prolog-syntax parser for rules, programs, facts and queries.

The paper writes recursions in Prolog syntax, e.g.::

    t(X, Y) :- a(X, Z), t(Z, Y).
    t(X, Y) :- b(X, Y).

This module parses exactly that syntax:

* identifiers starting with an upper-case letter or ``_`` are variables,
* identifiers starting with a lower-case letter are constants *or* predicate
  names depending on position,
* integers and single-quoted strings are constants,
* a clause ends with ``.``; ``%`` starts a line comment,
* a clause without ``:-`` is a fact (it must be ground),
* ``pred(arg, ...)?`` parses as a query (see :func:`parse_query`).

The parser is a small hand-written tokenizer + recursive-descent parser; it
reports positions in :class:`~repro.datalog.errors.ParseError` so malformed
input is easy to locate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from .atoms import Atom
from .errors import ParseError
from .rules import Program, Rule
from .terms import Constant, Term, Variable


@dataclass(frozen=True)
class _Token:
    kind: str  # 'name', 'variable', 'number', 'string', 'punct'
    value: str
    line: int
    column: int


_PUNCTUATION = {"(", ")", ",", ".", "?", ":-"}


def _tokenize(text: str) -> Iterator[_Token]:
    line = 1
    column = 1
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 1
            index += 1
            continue
        if char.isspace():
            index += 1
            column += 1
            continue
        if char == "%":
            while index < length and text[index] != "\n":
                index += 1
            continue
        if text.startswith(":-", index):
            yield _Token("punct", ":-", line, column)
            index += 2
            column += 2
            continue
        if char in "(),.?":
            yield _Token("punct", char, line, column)
            index += 1
            column += 1
            continue
        if char == "'":
            end = text.find("'", index + 1)
            if end == -1:
                raise ParseError("unterminated quoted constant", line, column)
            yield _Token("string", text[index + 1 : end], line, column)
            column += end - index + 1
            index = end + 1
            continue
        if char.isdigit() or (char == "-" and index + 1 < length and text[index + 1].isdigit()):
            start = index
            index += 1
            while index < length and (text[index].isdigit() or text[index] == "."):
                index += 1
            token_text = text[start:index]
            yield _Token("number", token_text, line, column)
            column += index - start
            continue
        if char.isalpha() or char == "_":
            start = index
            while index < length and (text[index].isalnum() or text[index] == "_"):
                index += 1
            token_text = text[start:index]
            kind = "variable" if token_text[0].isupper() or token_text[0] == "_" else "name"
            yield _Token(kind, token_text, line, column)
            column += index - start
            continue
        raise ParseError(f"unexpected character {char!r}", line, column)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text: str) -> None:
        self.tokens: List[_Token] = list(_tokenize(text))
        self.position = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Optional[_Token]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            last = self.tokens[-1] if self.tokens else _Token("punct", "", 1, 1)
            raise ParseError("unexpected end of input", last.line, last.column)
        self.position += 1
        return token

    def _expect(self, value: str) -> _Token:
        token = self._next()
        if token.value != value:
            raise ParseError(f"expected {value!r}, found {token.value!r}", token.line, token.column)
        return token

    def at_end(self) -> bool:
        return self._peek() is None

    # -- grammar -------------------------------------------------------
    def parse_term(self) -> Term:
        token = self._next()
        if token.kind == "variable":
            return Variable(token.value)
        if token.kind == "name":
            return Constant(token.value)
        if token.kind == "string":
            return Constant(token.value)
        if token.kind == "number":
            value = float(token.value) if "." in token.value else int(token.value)
            return Constant(value)
        raise ParseError(f"expected a term, found {token.value!r}", token.line, token.column)

    def parse_atom(self) -> Atom:
        token = self._next()
        if token.kind not in ("name",):
            raise ParseError(
                f"expected a predicate name, found {token.value!r}", token.line, token.column
            )
        predicate = token.value
        args: List[Term] = []
        next_token = self._peek()
        if next_token is not None and next_token.value == "(":
            self._expect("(")
            while True:
                args.append(self.parse_term())
                token = self._next()
                if token.value == ")":
                    break
                if token.value != ",":
                    raise ParseError(
                        f"expected ',' or ')', found {token.value!r}", token.line, token.column
                    )
        return Atom(predicate, tuple(args))

    def parse_clause(self) -> Tuple[Atom, Tuple[Atom, ...], str]:
        """Parse one clause; returns (head, body, terminator) with terminator '.' or '?'."""
        head = self.parse_atom()
        token = self._next()
        if token.value in (".", "?"):
            return head, (), token.value
        if token.value != ":-":
            raise ParseError(f"expected ':-', '.' or '?', found {token.value!r}", token.line, token.column)
        body: List[Atom] = []
        while True:
            body.append(self.parse_atom())
            token = self._next()
            if token.value in (".", "?"):
                return head, tuple(body), token.value
            if token.value != ",":
                raise ParseError(
                    f"expected ',', '.' or '?', found {token.value!r}", token.line, token.column
                )


def parse_rule(text: str) -> Rule:
    """Parse a single rule (or fact), e.g. ``"t(X, Y) :- a(X, Z), t(Z, Y)."``."""
    parser = _Parser(text)
    head, body, terminator = parser.parse_clause()
    if terminator == "?":
        raise ParseError("found a query where a rule was expected")
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"trailing input after rule: {token.value!r}", token.line, token.column)
    return Rule(head, body)


def parse_atom(text: str) -> Atom:
    """Parse a single atom, e.g. ``"t(X, Y)"`` (no trailing punctuation required)."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    next_token = parser._peek()
    if next_token is not None and next_token.value in (".", "?"):
        parser._next()
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"trailing input after atom: {token.value!r}", token.line, token.column)
    return atom


def parse_program(text: str) -> Program:
    """Parse a whole program: a sequence of rules and facts.

    Ground bodiless clauses become facts represented as bodiless rules; use
    :func:`split_facts` to separate them into an EDB when needed.
    """
    parser = _Parser(text)
    rules: List[Rule] = []
    while not parser.at_end():
        head, body, terminator = parser.parse_clause()
        if terminator == "?":
            raise ParseError("queries are not allowed inside a program; use parse_query")
        rules.append(Rule(head, body))
    return Program(tuple(rules))


def parse_query(text: str) -> Atom:
    """Parse a query such as ``"t(1, Y)?"`` or ``"t(1, Y)"``.

    The result is an atom whose constant arguments are the selection
    ("column = constant") bindings and whose variable arguments are the
    requested output columns.
    """
    parser = _Parser(text)
    head, body, _terminator = parser.parse_clause() if _contains_clause_end(text) else (parser.parse_atom(), (), "?")
    if body:
        raise ParseError("a query must be a single atom")
    if not parser.at_end():
        token = parser._peek()
        assert token is not None
        raise ParseError(f"trailing input after query: {token.value!r}", token.line, token.column)
    return head


def _contains_clause_end(text: str) -> bool:
    stripped = text.strip()
    return stripped.endswith(".") or stripped.endswith("?")


def split_facts(program: Program) -> Tuple[Program, List[Atom]]:
    """Separate bodiless ground rules (facts) from proper rules.

    Returns ``(rules_only_program, facts)``.
    """
    rules: List[Rule] = []
    facts: List[Atom] = []
    for rule in program.rules:
        if rule.is_fact:
            facts.append(rule.head)
        else:
            rules.append(rule)
    return Program(tuple(rules)), facts
