"""Terms of the function-free Horn-clause language used throughout the paper.

The paper (Section 2) works with *function-free pure Horn clause recursions*:
a term is either a variable or a constant.  Variables are written with an
initial upper-case letter (Prolog convention, the same convention the paper
uses: ``X``, ``Y``, ``W1`` ...), constants with a lower-case initial letter,
a number, or a quoted string.

Two small conveniences matter for the rest of the library:

* variables carry an optional integer *subscript* so that the expansion
  procedure of Figure 1 ("give all variables in rules subscript 0; ...
  increment subscripts") can be implemented exactly as in the paper, and
* both term kinds are immutable and hashable so they can be used freely as
  dictionary keys inside substitutions, relations and graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True)
class Variable:
    """A logical variable.

    Parameters
    ----------
    name:
        The base name, e.g. ``"X"`` or ``"W"``.
    subscript:
        Optional iteration subscript used by the expansion procedure
        (Figure 1 of the paper).  ``Variable("W", 2)`` renders as ``W_2``.
        ``None`` means "no subscript", which is how variables appear in
        source rules.
    """

    name: str
    subscript: Union[int, None] = None

    def _sort_key(self) -> tuple:
        return (self.name, self.subscript is not None, self.subscript or 0)

    def __lt__(self, other: "Variable") -> bool:
        if not isinstance(other, Variable):
            return NotImplemented
        return self._sort_key() < other._sort_key()

    def with_subscript(self, subscript: int) -> "Variable":
        """Return a copy of this variable carrying ``subscript``."""
        return Variable(self.name, subscript)

    def base(self) -> "Variable":
        """Return the subscript-free version of this variable."""
        return Variable(self.name, None)

    def __str__(self) -> str:
        if self.subscript is None:
            return self.name
        return f"{self.name}_{self.subscript}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self!s})"


@dataclass(frozen=True)
class Constant:
    """A constant (database value).

    The value is stored as a string or a number; equality is value equality.
    """

    value: Union[str, int, float]

    def __lt__(self, other: "Constant") -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return (type(self.value).__name__, str(self.value)) < (
            type(other.value).__name__,
            str(other.value),
        )

    def __str__(self) -> str:
        return str(self.value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return ``True`` if ``term`` is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return ``True`` if ``term`` is a :class:`Constant`."""
    return isinstance(term, Constant)


def make_term(value: object) -> Term:
    """Coerce a Python value into a :class:`Term`.

    Strings starting with an upper-case letter or an underscore become
    variables (the Prolog convention the paper uses); everything else becomes
    a constant.  Existing terms are returned unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    if isinstance(value, str):
        return Constant(value)
    if isinstance(value, (int, float)):
        return Constant(value)
    raise TypeError(f"cannot interpret {value!r} as a Datalog term")


def fresh_variable(name: str, taken: "set[Variable]") -> Variable:
    """Return a variable named like ``name`` that does not collide with ``taken``.

    Used by program transformations (magic sets, the Appendix A reduction)
    that need to introduce new variables into existing rules.
    """
    candidate = Variable(name)
    if candidate not in taken:
        return candidate
    index = 1
    while Variable(f"{name}{index}") in taken:
        index += 1
    return Variable(f"{name}{index}")
