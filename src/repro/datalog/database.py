"""The extensional database (EDB).

A :class:`Database` maps predicate names to :class:`~repro.datalog.relation.Relation`
objects.  It is the "extent" that defines EDB predicates in Section 2 of the
paper.  Evaluation strategies receive a database plus a program and produce
relations for the IDB predicates; they never mutate the input database unless
explicitly asked to (``materialize``).

Mutation hooks
--------------
Downstream layers (the incremental view registry in
:mod:`repro.incremental`) need to observe fact-level updates to keep derived
state consistent.  A :class:`DatabaseListener` registered through
:meth:`Database.add_listener` is called around every *effective* change made
through the fact APIs (``add_fact``/``insert_facts``/``remove_fact``/
``remove_facts``): the ``before_*`` hook sees the database in its old state,
the ``after_*`` hook in its new state, and both receive only the rows that
actually change (already-present insertions and absent deletions are
filtered out).  Mutating a :class:`Relation` directly bypasses the hooks;
code that wants observers notified must go through the database.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from .atoms import Atom
from .errors import SchemaError
from .relation import Relation, Row, Value
from .terms import Constant


class DatabaseListener:
    """Observer interface for fact-level database mutations (all no-ops).

    ``rows`` is always the effective delta: for insertions, the tuples that
    were absent and are being added; for deletions, the tuples that were
    present and are being removed.  ``before_*`` runs with the database still
    in its pre-mutation state, ``after_*`` with the mutation applied.
    """

    def before_insert(self, database: "Database", name: str, rows: Tuple[Row, ...]) -> None:
        """Called before ``rows`` are added to relation ``name``."""

    def after_insert(self, database: "Database", name: str, rows: Tuple[Row, ...]) -> None:
        """Called after ``rows`` were added to relation ``name``."""

    def before_delete(self, database: "Database", name: str, rows: Tuple[Row, ...]) -> None:
        """Called before ``rows`` are removed from relation ``name``."""

    def after_delete(self, database: "Database", name: str, rows: Tuple[Row, ...]) -> None:
        """Called after ``rows`` were removed from relation ``name``."""

    def on_relation_replaced(self, database: "Database", name: str) -> None:
        """Called when a whole relation is registered or replaced wholesale."""


class Database:
    """A mutable collection of named relations."""

    def __init__(self, relations: Optional[Iterable[Relation]] = None) -> None:
        self._relations: Dict[str, Relation] = {}
        self._listeners: List[DatabaseListener] = []
        for relation in relations or ():
            self.add_relation(relation)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_dict(data: Mapping[str, Iterable[Sequence[Value]]]) -> "Database":
        """Build a database from ``{"pred": [tuple, ...], ...}``.

        Arities are inferred from the first tuple of each predicate; empty
        iterables are not allowed here (use :meth:`declare` for empty
        relations because their arity cannot be inferred).
        """
        database = Database()
        for name, rows in data.items():
            rows = list(rows)
            if not rows:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name}; use Database.declare"
                )
            database.add_relation(Relation(name, len(tuple(rows[0])), rows))
        return database

    @staticmethod
    def from_facts(facts: Iterable[Atom]) -> "Database":
        """Build a database from ground atoms."""
        database = Database()
        for atom in facts:
            database.add_fact_atom(atom)
        return database

    def add_relation(self, relation: Relation) -> None:
        """Register a relation, replacing any previous relation of the same name."""
        self._relations[relation.name] = relation
        for listener in self._listeners:
            listener.on_relation_replaced(self, relation.name)

    def declare(self, name: str, arity: int) -> Relation:
        """Ensure a (possibly empty) relation of the given name and arity exists."""
        existing = self._relations.get(name)
        if existing is not None:
            if existing.arity != arity:
                raise SchemaError(
                    f"relation {name} already declared with arity {existing.arity}, not {arity}"
                )
            return existing
        relation = Relation(name, arity)
        self._relations[name] = relation
        return relation

    def add_fact(self, name: str, row: Sequence[Value]) -> bool:
        """Insert one tuple, creating the relation on first use."""
        if self._listeners:
            return self.insert_facts(name, (row,)) == 1
        relation = self._relations.get(name)
        if relation is None:
            relation = Relation(name, len(tuple(row)))
            self._relations[name] = relation
        return relation.add(row)

    def insert_facts(self, name: str, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many tuples into one relation, firing the mutation hooks once.

        Creates the relation on first use (arity inferred from the first
        tuple).  Returns how many tuples were actually new; listeners see
        exactly that effective delta, duplicates removed, order preserved.
        """
        tupled = [tuple(row) for row in rows]
        if not tupled:
            return 0
        relation = self._relations.get(name)
        arity = relation.arity if relation is not None else len(tupled[0])
        for row in tupled:
            if len(row) != arity:
                raise SchemaError(
                    f"relation {name} has arity {arity}, got tuple of length {len(row)}"
                )
        if relation is None:
            # register only after the whole batch validates, so a rejected
            # batch cannot leave a wrong-arity relation behind
            relation = Relation(name, arity)
            self._relations[name] = relation
        fresh = tuple(dict.fromkeys(row for row in tupled if row not in relation))
        if not fresh:
            return 0
        for listener in self._listeners:
            listener.before_insert(self, name, fresh)
        relation.add_all(fresh)
        for listener in self._listeners:
            listener.after_insert(self, name, fresh)
        return len(fresh)

    def remove_fact(self, name: str, row: Sequence[Value]) -> bool:
        """Remove one tuple if present, mirroring :meth:`add_fact`."""
        return self.remove_facts(name, (row,)) == 1

    def remove_facts(self, name: str, rows: Iterable[Sequence[Value]]) -> int:
        """Remove many tuples from one relation, firing the mutation hooks once.

        Unknown relations and absent tuples are no-ops.  Returns how many
        tuples were actually removed; listeners see exactly that effective
        delta, with ``before_delete`` running while the tuples are still
        present and ``after_delete`` once they are gone.
        """
        relation = self._relations.get(name)
        if relation is None:
            return 0
        present = tuple(dict.fromkeys(row for row in (tuple(r) for r in rows) if row in relation))
        if not present:
            return 0
        for listener in self._listeners:
            listener.before_delete(self, name, present)
        relation.discard_all(present)
        for listener in self._listeners:
            listener.after_delete(self, name, present)
        return len(present)

    # ------------------------------------------------------------------
    # mutation listeners
    # ------------------------------------------------------------------
    def add_listener(self, listener: DatabaseListener) -> None:
        """Register a mutation observer (see :class:`DatabaseListener`)."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def remove_listener(self, listener: DatabaseListener) -> None:
        """Deregister a mutation observer; unknown listeners are a no-op."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def add_fact_atom(self, atom: Atom) -> bool:
        """Insert a ground atom as a fact."""
        if not atom.is_ground():
            raise SchemaError(f"fact {atom} is not ground")
        values = tuple(arg.value for arg in atom.args if isinstance(arg, Constant))
        return self.add_fact(atom.predicate, values)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation for ``name``; raises :class:`SchemaError` when unknown."""
        relation = self._relations.get(name)
        if relation is None:
            raise SchemaError(f"relation {name} is not present in the database")
        return relation

    def relation_or_empty(self, name: str, arity: int) -> Relation:
        """The relation for ``name`` or a fresh empty relation of the given arity."""
        relation = self._relations.get(name)
        if relation is not None:
            return relation
        return Relation(name, arity)

    def has_relation(self, name: str) -> bool:
        """``True`` when the database contains a relation called ``name``."""
        return name in self._relations

    def names(self) -> Set[str]:
        """All relation names."""
        return set(self._relations)

    def relations(self) -> List[Relation]:
        """All relations (no particular order)."""
        return list(self._relations.values())

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __len__(self) -> int:
        return len(self._relations)

    # ------------------------------------------------------------------
    # whole-database operations
    # ------------------------------------------------------------------
    def copy(self) -> "Database":
        """Deep copy: relations are copied, tuples are shared (they are immutable)."""
        return Database(relation.copy() for relation in self._relations.values())

    def total_tuples(self) -> int:
        """Total number of tuples across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def active_domain(self) -> Set[Value]:
        """Every value appearing anywhere in the database."""
        domain: Set[Value] = set()
        for relation in self._relations.values():
            for row in relation:
                domain.update(row)
        return domain

    def facts(self) -> List[Atom]:
        """All tuples re-expressed as ground atoms (useful for tests and printing)."""
        result: List[Atom] = []
        for relation in self._relations.values():
            for row in relation:
                result.append(Atom(relation.name, tuple(Constant(v) for v in row)))
        return result

    def merge(self, other: "Database") -> "Database":
        """A new database containing the union of both databases' tuples."""
        merged = self.copy()
        for relation in other.relations():
            target = merged._relations.get(relation.name)
            if target is None:
                merged.add_relation(relation.copy())
            else:
                if target.arity != relation.arity:
                    raise SchemaError(
                        f"cannot merge {relation.name}: arities {target.arity} and {relation.arity} differ"
                    )
                target.add_all(relation.rows())
        return merged

    def __str__(self) -> str:
        parts = ", ".join(sorted(str(r) for r in self._relations.values()))
        return f"Database({parts})"
