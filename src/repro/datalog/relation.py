"""Extensional relations.

A :class:`Relation` is a named set of fixed-arity tuples of plain Python
values (strings and numbers).  Relations are the storage layer under the
evaluation engine; the symbolic layer (atoms, rules, expansions) only touches
them through the engine.

Design notes
------------
* Tuples are stored in a plain ``set`` for O(1) membership and duplicate
  elimination (Datalog is set semantics).
* Per-column-set hash indexes are built lazily on first probe and then
  maintained incrementally by ``add``/``discard``/``clear``.
  A lookup with ``k`` bound columns therefore touches only the matching
  tuples, which is what makes the paper's Property 3 ("never do an
  unrestricted lookup on a nonrecursive relation") observable in the
  instrumentation counters rather than hidden inside a full scan.
* Single-column indexes store their keys *unwrapped* — the bare column value
  instead of a one-element tuple — so the overwhelmingly common one-bound-
  column probe of a compiled join allocates no key tuple at all.  The
  interned value domain (:mod:`repro.engine.domain`) makes those keys plain
  machine ints, which is what lets the generated join kernels run each probe
  as a single dict lookup.
* :meth:`Relation.freeze` publishes an immutable copy-on-write snapshot in
  O(1): the frozen handle shares the live relation's row set and index
  buckets, mutating the frozen handle raises, and the live relation detaches
  (copies its rows and buckets) on its first mutation after the freeze.
  This is what lets the serving layer (:mod:`repro.service`) hand consistent
  epochs to concurrent readers while writers keep maintaining the live view.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .errors import SchemaError

Value = object
Row = Tuple[Value, ...]


class Relation:
    """A named, fixed-arity set of tuples with lazy per-column indexes."""

    #: class-level defaults so the hot constructors pay nothing for them;
    #: ``freeze`` sets the instance attributes it needs
    _frozen = False
    _cow_shared = False

    def __init__(self, name: str, arity: int, rows: Optional[Iterable[Sequence[Value]]] = None) -> None:
        if arity < 0:
            raise SchemaError(f"relation {name} cannot have negative arity")
        self.name = name
        self.arity = arity
        self._rows: Set[Row] = set()
        #: ``columns -> key -> bucket``; single-column keys are stored unwrapped
        self._indexes: Dict[Tuple[int, ...], Dict[object, List[Row]]] = {}
        #: bumped on every *effective* mutation; lets observers (the serving
        #: layer's per-predicate cache invalidation) ask "did this relation
        #: change?" without diffing tuple sets
        self.version = 0
        if rows is not None:
            self.add_all(rows)

    # ------------------------------------------------------------------
    # snapshots (copy-on-write freeze)
    # ------------------------------------------------------------------
    @property
    def frozen(self) -> bool:
        """``True`` when this relation is an immutable snapshot handle."""
        return self._frozen

    def freeze(self) -> "Relation":
        """Publish an immutable snapshot of the current contents, in O(1).

        The snapshot shares this relation's row set and index buckets; the
        sharing is copy-on-write on the *live* side — this relation detaches
        (copies rows and buckets) on its first mutation after the freeze, so
        the snapshot keeps observing exactly the rows it was born with.
        Mutating the snapshot itself raises :class:`SchemaError`.  Freezing
        an already-frozen relation returns it unchanged.
        """
        if self._frozen:
            return self
        snapshot = Relation.__new__(Relation)
        snapshot.name = self.name
        snapshot.arity = self.arity
        snapshot.version = self.version
        snapshot._rows = self._rows
        # own outer dict (lazy index builds on the snapshot must not race the
        # live relation's); inner buckets are shared — neither side mutates a
        # shared bucket, because the live side replaces all of them on detach
        snapshot._indexes = dict(self._indexes)
        snapshot._frozen = True
        snapshot._cow_shared = False
        self._cow_shared = True
        return snapshot

    def _detach_for_mutation(self) -> None:
        """Enforce frozen immutability / detach shared storage before a write."""
        if self._frozen:
            raise SchemaError(
                f"relation {self.name} is a frozen snapshot and cannot be mutated"
            )
        self._rows = set(self._rows)
        self._indexes = {
            columns: {key: list(bucket) for key, bucket in index.items()}
            for columns, index in self._indexes.items()
        }
        self._cow_shared = False

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Value]) -> bool:
        """Insert a tuple; returns ``True`` when the tuple was new."""
        if self._frozen or self._cow_shared:
            self._detach_for_mutation()
        tupled = tuple(row)
        if len(tupled) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}, got tuple of length {len(tupled)}"
            )
        if tupled in self._rows:
            return False
        self._rows.add(tupled)
        self.version += 1
        for columns, index in self._indexes.items():
            if len(columns) == 1:
                key: object = tupled[columns[0]]
            else:
                key = tuple(tupled[c] for c in columns)
            index.setdefault(key, []).append(tupled)
        return True

    def add_all(self, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many tuples; returns how many were new.

        Bulk fast path: the batch goes into the row set first and each
        registered index is extended once per call, instead of paying the
        per-row index walk of :meth:`add` — the difference between O(rows ×
        indexes) dict churn and one tight loop per index when loading an EDB
        or refilling a delta relation.
        """
        if self._frozen or self._cow_shared:
            self._detach_for_mutation()
        arity = self.arity
        stored = self._rows
        fresh: List[Row] = []
        append = fresh.append
        try:
            for row in rows:
                tupled = tuple(row)
                if len(tupled) != arity:
                    raise SchemaError(
                        f"relation {self.name} has arity {arity}, got tuple of length {len(tupled)}"
                    )
                if tupled not in stored:
                    stored.add(tupled)
                    append(tupled)
        finally:
            # a mid-batch validation failure must still index the rows that
            # made it into the set, or lookups would silently miss them
            if fresh:
                self._extend_indexes(fresh)
                self.version += 1
        return len(fresh)

    def _extend_indexes(self, fresh: Iterable[Row]) -> None:
        """Append a batch of (new, validated) rows to every registered index."""
        for columns, index in self._indexes.items():
            setdefault = index.setdefault
            if len(columns) == 1:
                column = columns[0]
                for tupled in fresh:
                    setdefault(tupled[column], []).append(tupled)
            else:
                for tupled in fresh:
                    setdefault(tuple(tupled[c] for c in columns), []).append(tupled)

    @classmethod
    def from_valid_rows(cls, name: str, arity: int, rows: Set[Row]) -> "Relation":
        """Adopt a set of already-validated tuples without per-row checks.

        Engine fast path (the interned-domain codec and the fixpoint drivers
        use it): ``rows`` must be a set of fresh tuples of the right arity,
        and the caller must hand over ownership — the set is adopted, not
        copied.
        """
        relation = cls(name, arity)
        relation._rows = rows
        return relation

    def union_update(self, rows: Set[Row]) -> int:
        """Bulk set-union of already-validated tuples; returns how many were new.

        The engine fast path behind the fixpoint drivers: deltas and derived
        relations exchange *sets of rows that came out of this storage layer
        or a kernel projection*, so re-validating arity per row (as
        :meth:`add_all` must for arbitrary caller input) is wasted work.  The
        row set advances by one C-level set union; registered indexes are
        extended exactly as :meth:`add_all` does.
        """
        if self._frozen or self._cow_shared:
            self._detach_for_mutation()
        if not self._indexes:
            # no indexes to maintain: skip materializing the fresh-row set
            # and let the C-level union count for us (the columnar executor
            # lands its whole fixpoint's derivations through here)
            before = len(self._rows)
            self._rows |= rows
            added = len(self._rows) - before
            if added:
                self.version += 1
            return added
        fresh = rows - self._rows
        if not fresh:
            return 0
        self._rows |= fresh
        self.version += 1
        self._extend_indexes(fresh)
        return len(fresh)

    def discard(self, row: Sequence[Value]) -> bool:
        """Remove a tuple if present (indexes are maintained in place).

        Returns ``True`` when the tuple was present, mirroring :meth:`add`.
        """
        tupled = tuple(row)
        if tupled not in self._rows:
            if self._frozen:
                self._detach_for_mutation()  # raises: frozen snapshots reject writes
            return False
        if self._frozen or self._cow_shared:
            self._detach_for_mutation()
        self._rows.discard(tupled)
        self.version += 1
        for columns, index in self._indexes.items():
            if len(columns) == 1:
                key: object = tupled[columns[0]]
            else:
                key = tuple(tupled[c] for c in columns)
            bucket = index.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(tupled)
            except ValueError:
                continue
            if not bucket:
                del index[key]
        return True

    def discard_all(self, rows: Iterable[Sequence[Value]]) -> int:
        """Remove many tuples; returns how many were present (mirrors ``add_all``)."""
        removed = 0
        for row in rows:
            if self.discard(row):
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove every tuple, keeping the registered index column-sets.

        The semi-naive engine double-buffers its delta relations: the old
        delta is cleared and refilled rather than reallocated, so the column
        combinations the joins probe stay registered and :meth:`add` maintains
        them incrementally instead of each iteration rebuilding from scratch.
        """
        if self._frozen or self._cow_shared:
            if self._frozen:
                self._detach_for_mutation()  # raises: frozen snapshots reject writes
            # detach without copying contents that are about to be dropped;
            # the registered column-sets survive with fresh empty buckets
            if self._rows:
                self.version += 1
            self._rows = set()
            self._indexes = {columns: {} for columns in self._indexes}
            self._cow_shared = False
            return
        if self._rows:
            self.version += 1
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def rows(self) -> Set[Row]:
        """The underlying tuple set (do not mutate)."""
        return self._rows

    def is_empty(self) -> bool:
        """``True`` when the relation has no tuples."""
        return not self._rows

    def copy(self) -> "Relation":
        """An independent copy with the same tuples and index registrations.

        The registered column-sets (and their buckets) are carried over, so a
        copy keeps serving the probe signatures the original had built up —
        previously they were silently dropped and every index had to be
        rebuilt from scratch on first probe after a copy.
        """
        clone = Relation(self.name, self.arity)
        clone.version = self.version
        clone._rows = set(self._rows)
        clone._indexes = {
            columns: {key: list(bucket) for key, bucket in index.items()}
            for columns, index in self._indexes.items()
        }
        return clone

    def column_values(self, column: int) -> Set[Value]:
        """The distinct values appearing in ``column``."""
        return {row[column] for row in self._rows}

    # ------------------------------------------------------------------
    # serialization (the durable storage layer's row codec)
    # ------------------------------------------------------------------
    def packed_rows(self, intern: Callable[[Value], int]) -> Tuple[int, bytes]:
        """``(row_count, packed)`` — the row set as struct-packed int codes.

        Every value is mapped through ``intern`` (a domain dictionary's
        encoder) and the resulting int rows are written as little-endian
        ``int64``s, ``arity`` per row, in sorted code order — so the bytes
        for a given (relation, dictionary) pair are deterministic, which
        makes snapshots diffable and the differential harness's
        byte-identity checks meaningful.  Works on frozen handles: reading
        rows never mutates.

        The codec itself lives in :mod:`repro.engine.packing` (shared with
        the columnar engine, imported lazily to keep this module free of
        engine dependencies at import time).
        """
        from ..engine.packing import pack_rows

        return pack_rows(self._rows, intern)

    @classmethod
    def from_packed_rows(
        cls,
        name: str,
        arity: int,
        count: int,
        packed: bytes,
        decode: Callable[[int], Value],
    ) -> "Relation":
        """Rebuild a relation from :meth:`packed_rows` output.

        ``decode`` maps codes back to stored values (the domain dictionary's
        decoder).  The zero-arity cases carry no bytes at all, so the row
        count disambiguates ``{}`` from ``{()}``.
        """
        from ..engine.packing import unpack_rows

        try:
            rows = unpack_rows(packed, arity, count, decode)
        except ValueError as exc:
            raise SchemaError(f"relation {name}: {exc}") from None
        return cls.from_valid_rows(name, arity, rows)

    # ------------------------------------------------------------------
    # indexed lookup
    # ------------------------------------------------------------------
    def _index_for(self, columns: Tuple[int, ...]) -> Dict[object, List[Row]]:
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            setdefault = index.setdefault
            if len(columns) == 1:
                column = columns[0]
                for row in self._rows:
                    setdefault(row[column], []).append(row)
            else:
                for row in self._rows:
                    setdefault(tuple(row[c] for c in columns), []).append(row)
            self._indexes[columns] = index
        return index

    def lookup(self, bindings: Mapping[int, Value]) -> List[Row]:
        """Tuples matching the given column bindings.

        ``bindings`` maps 0-based column numbers to required values.  An empty
        mapping returns every tuple (an *unrestricted lookup* in the paper's
        terminology); the instrumentation layer counts both cases.
        """
        if not bindings:
            return list(self._rows)
        columns = tuple(sorted(bindings))
        for column in columns:
            if column < 0 or column >= self.arity:
                raise SchemaError(
                    f"relation {self.name} has arity {self.arity}; column {column} out of range"
                )
        if len(columns) == 1:
            key: object = bindings[columns[0]]
        else:
            key = tuple(bindings[c] for c in columns)
        return list(self._index_for(columns).get(key, ()))

    def probe(self, columns: Tuple[int, ...], key: object) -> Sequence[Row]:
        """Tuples matching ``key`` on the (pre-sorted) ``columns``.

        The fast-path lookup used by compiled plans: the caller fixed the
        column set at compile time, so no per-call sorting or dict building
        happens here, and the matching bucket is returned without copying.
        For a single-column probe ``key`` is the bare value (single-column
        index keys are stored unwrapped); for multi-column probes it is the
        tuple of values in column order.  Callers must treat the result as
        read-only.
        """
        if columns and (columns[0] < 0 or columns[-1] >= self.arity):
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}; columns {columns} out of range"
            )
        return self._index_for(columns).get(key, ())

    def project(self, columns: Sequence[int]) -> Set[Row]:
        """Projection onto the given columns (duplicates eliminated)."""
        return {tuple(row[c] for c in columns) for row in self._rows}

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return f"{self.name}/{self.arity}[{len(self._rows)} tuples]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self!s})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity and self._rows == other._rows

    def __hash__(self) -> int:  # relations are mutable; identity hash is intentional
        return id(self)
