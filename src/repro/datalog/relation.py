"""Extensional relations.

A :class:`Relation` is a named set of fixed-arity tuples of plain Python
values (strings and numbers).  Relations are the storage layer under the
evaluation engine; the symbolic layer (atoms, rules, expansions) only touches
them through the engine.

Design notes
------------
* Tuples are stored in a plain ``set`` for O(1) membership and duplicate
  elimination (Datalog is set semantics).
* Per-column-set hash indexes are built lazily on first probe and then
  maintained incrementally by ``add``/``discard``/``clear``.
  A lookup with ``k`` bound columns therefore touches only the matching
  tuples, which is what makes the paper's Property 3 ("never do an
  unrestricted lookup on a nonrecursive relation") observable in the
  instrumentation counters rather than hidden inside a full scan.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .errors import SchemaError

Value = object
Row = Tuple[Value, ...]


class Relation:
    """A named, fixed-arity set of tuples with lazy per-column indexes."""

    def __init__(self, name: str, arity: int, rows: Optional[Iterable[Sequence[Value]]] = None) -> None:
        if arity < 0:
            raise SchemaError(f"relation {name} cannot have negative arity")
        self.name = name
        self.arity = arity
        self._rows: Set[Row] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Row, List[Row]]] = {}
        if rows is not None:
            for row in rows:
                self.add(row)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, row: Sequence[Value]) -> bool:
        """Insert a tuple; returns ``True`` when the tuple was new."""
        tupled = tuple(row)
        if len(tupled) != self.arity:
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}, got tuple of length {len(tupled)}"
            )
        if tupled in self._rows:
            return False
        self._rows.add(tupled)
        for columns, index in self._indexes.items():
            key = tuple(tupled[c] for c in columns)
            index.setdefault(key, []).append(tupled)
        return True

    def add_all(self, rows: Iterable[Sequence[Value]]) -> int:
        """Insert many tuples; returns how many were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def discard(self, row: Sequence[Value]) -> bool:
        """Remove a tuple if present (indexes are maintained in place).

        Returns ``True`` when the tuple was present, mirroring :meth:`add`.
        """
        tupled = tuple(row)
        if tupled not in self._rows:
            return False
        self._rows.discard(tupled)
        for columns, index in self._indexes.items():
            key = tuple(tupled[c] for c in columns)
            bucket = index.get(key)
            if bucket is None:
                continue
            try:
                bucket.remove(tupled)
            except ValueError:
                continue
            if not bucket:
                del index[key]
        return True

    def discard_all(self, rows: Iterable[Sequence[Value]]) -> int:
        """Remove many tuples; returns how many were present (mirrors ``add_all``)."""
        removed = 0
        for row in rows:
            if self.discard(row):
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove every tuple, keeping the registered index column-sets.

        The semi-naive engine double-buffers its delta relations: the old
        delta is cleared and refilled rather than reallocated, so the column
        combinations the joins probe stay registered and :meth:`add` maintains
        them incrementally instead of each iteration rebuilding from scratch.
        """
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: Sequence[Value]) -> bool:
        return tuple(row) in self._rows

    def rows(self) -> Set[Row]:
        """The underlying tuple set (do not mutate)."""
        return self._rows

    def is_empty(self) -> bool:
        """``True`` when the relation has no tuples."""
        return not self._rows

    def copy(self) -> "Relation":
        """An independent copy with the same tuples (indexes are not copied)."""
        return Relation(self.name, self.arity, self._rows)

    def column_values(self, column: int) -> Set[Value]:
        """The distinct values appearing in ``column``."""
        return {row[column] for row in self._rows}

    # ------------------------------------------------------------------
    # indexed lookup
    # ------------------------------------------------------------------
    def _index_for(self, columns: Tuple[int, ...]) -> Dict[Row, List[Row]]:
        index = self._indexes.get(columns)
        if index is None:
            index = {}
            for row in self._rows:
                key = tuple(row[c] for c in columns)
                index.setdefault(key, []).append(row)
            self._indexes[columns] = index
        return index

    def lookup(self, bindings: Mapping[int, Value]) -> List[Row]:
        """Tuples matching the given column bindings.

        ``bindings`` maps 0-based column numbers to required values.  An empty
        mapping returns every tuple (an *unrestricted lookup* in the paper's
        terminology); the instrumentation layer counts both cases.
        """
        if not bindings:
            return list(self._rows)
        columns = tuple(sorted(bindings))
        for column in columns:
            if column < 0 or column >= self.arity:
                raise SchemaError(
                    f"relation {self.name} has arity {self.arity}; column {column} out of range"
                )
        key = tuple(bindings[c] for c in columns)
        return list(self._index_for(columns).get(key, ()))

    def probe(self, columns: Tuple[int, ...], key: Row) -> Sequence[Row]:
        """Tuples matching ``key`` on the (pre-sorted) ``columns``.

        The fast-path lookup used by compiled plans: the caller fixed the
        column set at compile time, so no per-call sorting or dict building
        happens here, and the matching bucket is returned without copying.
        Callers must treat the result as read-only.
        """
        if columns and (columns[0] < 0 or columns[-1] >= self.arity):
            raise SchemaError(
                f"relation {self.name} has arity {self.arity}; columns {columns} out of range"
            )
        return self._index_for(columns).get(key, ())

    def project(self, columns: Sequence[int]) -> Set[Row]:
        """Projection onto the given columns (duplicates eliminated)."""
        return {tuple(row[c] for c in columns) for row in self._rows}

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return f"{self.name}/{self.arity}[{len(self._rows)} tuples]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self!s})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.name == other.name and self.arity == other.arity and self._rows == other._rows

    def __hash__(self) -> int:  # relations are mutable; identity hash is intentional
        return id(self)
