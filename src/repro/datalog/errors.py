"""Exception hierarchy for the Datalog substrate.

All errors raised by the library derive from :class:`ReproError` so that
applications embedding the library can catch everything in one place.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ParseError(ReproError):
    """Raised when the Prolog-syntax parser encounters malformed input.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based position of the offending token, when known.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.message = message
        self.line = line
        self.column = column
        location = f" (line {line}, column {column})" if line else ""
        super().__init__(f"{message}{location}")


class SchemaError(ReproError):
    """Raised when facts or rules violate the arity of an existing predicate."""


class ProgramError(ReproError):
    """Raised when a program does not have the shape an operation requires.

    Typical causes: asking for *the* linear recursive rule of a predicate
    that has several recursive rules, requesting the full A/V graph of a
    nonlinear rule, or evaluating a query on a predicate the program never
    defines.
    """


class EvaluationError(ReproError):
    """Raised when query evaluation cannot proceed (unknown predicate, bad query)."""


class QueryTimeout(ReproError, TimeoutError):
    """A query exceeded its ``timeout=`` deadline.

    Raised eagerly when the deadline has already passed at dispatch, and
    cooperatively from inside the fixpoint drivers (checked once per
    iteration via :meth:`repro.engine.instrumentation.EvaluationStats.record_iteration`)
    for evaluations that are already running.  Subclasses ``TimeoutError``
    so generic deadline handling catches it too.
    """


class NotOneSidedError(ProgramError):
    """Raised when a one-sided-only evaluation algorithm is applied to a recursion
    that Theorem 3.1 classifies as many-sided."""
