"""Substitutions, unification and matching.

The paper's expansion procedure applies a rule to a predicate instance by
computing *the most general unifier* of the rule head and the instance and
applying it to the rule body (Section 2).  Because rule heads contain no
repeated variables and no constants (a standing assumption of the paper,
footnote 1 of Appendix A), that unifier is always a *matching* — but the
library implements full function-free unification anyway so that the
generalized expansion of Appendix A and arbitrary user programs are handled
correctly.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from .atoms import Atom
from .terms import Term, Variable, is_variable

Substitution = Dict[Variable, Term]
"""A substitution maps variables to terms.  Applying it never recurses:
terms are variables or constants, so a single pass suffices."""


def apply_to_term(substitution: Substitution, term: Term) -> Term:
    """Apply ``substitution`` to a single term."""
    if is_variable(term):
        return substitution.get(term, term)
    return term


def apply_to_atom(substitution: Substitution, atom: Atom) -> Atom:
    """Apply ``substitution`` to every argument of ``atom``."""
    return atom.substitute(substitution)


def apply_to_atoms(substitution: Substitution, atoms: Iterable[Atom]) -> Tuple[Atom, ...]:
    """Apply ``substitution`` to a sequence of atoms, preserving order."""
    return tuple(atom.substitute(substitution) for atom in atoms)


def compose(first: Substitution, second: Substitution) -> Substitution:
    """Return the substitution equivalent to applying ``first`` then ``second``.

    ``apply(compose(f, s), t) == apply(s, apply(f, t))`` for every term ``t``.
    """
    result: Substitution = {var: apply_to_term(second, term) for var, term in first.items()}
    for var, term in second.items():
        result.setdefault(var, term)
    return result


def _bind(substitution: Substitution, variable: Variable, term: Term) -> Substitution:
    """Add ``variable -> term`` to ``substitution``, normalising existing bindings."""
    new_sub = {var: (term if existing == variable else existing) for var, existing in substitution.items()}
    new_sub[variable] = term
    return new_sub


def unify_terms(left: Term, right: Term, substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Unify two terms under an existing substitution.

    Returns the extended substitution, or ``None`` when unification fails.
    """
    substitution = dict(substitution or {})
    left = apply_to_term(substitution, left)
    right = apply_to_term(substitution, right)
    if left == right:
        return substitution
    if is_variable(left):
        return _bind(substitution, left, right)
    if is_variable(right):
        return _bind(substitution, right, left)
    return None  # two distinct constants


def unify_atoms(left: Atom, right: Atom, substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """Most general unifier of two atoms, or ``None`` when they do not unify."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    substitution = dict(substitution or {})
    for left_arg, right_arg in zip(left.args, right.args):
        maybe = unify_terms(left_arg, right_arg, substitution)
        if maybe is None:
            return None
        substitution = maybe
    return substitution


def match_atom(pattern: Atom, target: Atom, substitution: Optional[Substitution] = None) -> Optional[Substitution]:
    """One-way matching: find a substitution on ``pattern``'s variables only.

    ``match_atom(p, t)`` succeeds when ``p`` can be instantiated to ``t``
    without binding any variable of ``t``.  This is the operation used by
    containment mappings (Definition 2.1) and by fact lookup.
    """
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    substitution = dict(substitution or {})
    for pattern_arg, target_arg in zip(pattern.args, target.args):
        if is_variable(pattern_arg):
            bound = substitution.get(pattern_arg)
            if bound is None:
                substitution[pattern_arg] = target_arg
            elif bound != target_arg:
                return None
        elif pattern_arg != target_arg:
            return None
    return substitution


def rename_apart(atoms: Iterable[Atom], taken: "set[Variable]", suffix: str = "r") -> Tuple[Tuple[Atom, ...], Substitution]:
    """Rename the variables of ``atoms`` so they avoid the ``taken`` set.

    Returns the renamed atoms and the renaming used.  Transformations such as
    magic sets and the Appendix A reduction use this to keep rule variables
    disjoint when splicing bodies together.
    """
    renaming: Substitution = {}
    used = set(taken)
    for atom in atoms:
        for variable in atom.variable_set():
            if variable in renaming or variable not in used:
                used.add(variable)
                continue
            index = 1
            while Variable(f"{variable.name}_{suffix}{index}") in used:
                index += 1
            fresh = Variable(f"{variable.name}_{suffix}{index}")
            renaming[variable] = fresh
            used.add(fresh)
    renamed = apply_to_atoms(renaming, atoms)
    return renamed, renaming
