"""Atoms (predicate instances).

An atom is a predicate name applied to a tuple of terms, e.g. ``a(X, Z)`` or
``t(Z, Y)``.  The paper calls atoms appearing in rule bodies and expansion
strings *predicate instances*; we use the two names interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from .terms import Constant, Term, Variable, is_variable, make_term


@dataclass(frozen=True, order=True)
class Atom:
    """A predicate instance ``predicate(arg_1, ..., arg_n)``.

    Atoms are immutable; operations that "modify" an atom (substitution,
    renaming) return new atoms.
    """

    predicate: str
    args: Tuple[Term, ...]

    @staticmethod
    def of(predicate: str, *args: object) -> "Atom":
        """Build an atom, coercing plain Python values through :func:`make_term`.

        ``Atom.of("a", "X", "Z")`` builds ``a(X, Z)`` with ``X`` and ``Z`` as
        variables; ``Atom.of("b", 1, "paris")`` builds a ground atom.
        """
        return Atom(predicate, tuple(make_term(a) for a in args))

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of argument positions."""
        return len(self.args)

    def variables(self) -> List[Variable]:
        """The variables of the atom, in argument order, with duplicates."""
        return [arg for arg in self.args if is_variable(arg)]

    def variable_set(self) -> "set[Variable]":
        """The set of distinct variables appearing in the atom."""
        return {arg for arg in self.args if is_variable(arg)}

    def constants(self) -> List[Constant]:
        """The constants of the atom, in argument order."""
        return [arg for arg in self.args if isinstance(arg, Constant)]

    def is_ground(self) -> bool:
        """``True`` when the atom contains no variables (i.e. it is a fact)."""
        return not any(is_variable(arg) for arg in self.args)

    def positions_of(self, variable: Variable) -> List[int]:
        """0-based argument positions at which ``variable`` occurs."""
        return [i for i, arg in enumerate(self.args) if arg == variable]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------
    def substitute(self, mapping: Dict[Variable, Term]) -> "Atom":
        """Apply a substitution (variable -> term) to every argument."""
        new_args = tuple(
            mapping.get(arg, arg) if is_variable(arg) else arg for arg in self.args
        )
        return Atom(self.predicate, new_args)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        """Apply a variable renaming.  Alias of :meth:`substitute` with a narrower type."""
        return self.substitute(dict(mapping))

    def with_subscript(self, subscript: int) -> "Atom":
        """Give every variable of the atom the given subscript (Figure 1 convention)."""
        new_args = tuple(
            arg.with_subscript(subscript) if is_variable(arg) else arg for arg in self.args
        )
        return Atom(self.predicate, new_args)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.args:
            return self.predicate
        return f"{self.predicate}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom({self!s})"


def atoms_variables(atoms: Iterable[Atom]) -> "set[Variable]":
    """Union of the variable sets of a collection of atoms."""
    result: "set[Variable]" = set()
    for atom in atoms:
        result |= atom.variable_set()
    return result


def share_variable(first: Atom, second: Atom) -> bool:
    """``True`` when the two atoms have at least one variable in common.

    This is the basic "connected" relation of Definition 3.1.
    """
    return bool(first.variable_set() & second.variable_set())


def fact(predicate: str, values: Sequence[object]) -> Atom:
    """Build a ground atom from raw Python values (all coerced to constants)."""
    return Atom(predicate, tuple(Constant(v) if not isinstance(v, Constant) else v for v in values))
