"""Rules and programs.

A *rule* is a function-free Horn clause ``head :- body``.  A *program* is a
finite set of rules plus (implicitly) the extensional database.  Following
Section 2 of the paper, predicates split into

* **IDB predicates** — appear in the head of at least one rule, and
* **EDB predicates** — appear in no head and are defined by their extent.

Most of the paper restricts attention to definitions consisting of **one
linear recursive rule** and **one nonrecursive (exit) rule** for the predicate
of interest; :class:`Program` exposes the helpers (``linear_recursive_rule``,
``exit_rules``, ``is_single_linear_recursion``) the detection and evaluation
code needs to check and exploit that shape, while still representing fully
general positive Datalog programs (needed for the generalized expansion of
Appendix A, the magic-sets baseline and the reduction of Theorem 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from .atoms import Atom, atoms_variables
from .errors import ProgramError, SchemaError
from .terms import Variable, is_variable


@dataclass(frozen=True)
class Rule:
    """A Horn clause ``head :- body_1, ..., body_n``.

    A rule with an empty body is a fact.
    """

    head: Atom
    body: Tuple[Atom, ...] = ()

    @staticmethod
    def of(head: Atom, *body: Atom) -> "Rule":
        """Convenience constructor: ``Rule.of(head, b1, b2, ...)``."""
        return Rule(head, tuple(body))

    # ------------------------------------------------------------------
    # shape queries
    # ------------------------------------------------------------------
    @property
    def is_fact(self) -> bool:
        """``True`` for a bodiless ground rule."""
        return not self.body and self.head.is_ground()

    def body_predicates(self) -> List[str]:
        """Predicate names occurring in the body, in order, with duplicates."""
        return [atom.predicate for atom in self.body]

    def predicates(self) -> Set[str]:
        """All predicate names mentioned by the rule."""
        return {self.head.predicate} | {atom.predicate for atom in self.body}

    def variables(self) -> Set[Variable]:
        """All variables of the rule (head and body)."""
        return self.head.variable_set() | atoms_variables(self.body)

    def head_variables(self) -> List[Variable]:
        """The distinguished variables, in head-argument order."""
        return [arg for arg in self.head.args if is_variable(arg)]

    def nondistinguished_variables(self) -> Set[Variable]:
        """Variables appearing in the body but not in the head."""
        return atoms_variables(self.body) - self.head.variable_set()

    def is_recursive(self) -> bool:
        """``True`` when the head predicate also appears in the body."""
        return self.head.predicate in self.body_predicates()

    def is_linear_recursive(self) -> bool:
        """``True`` when the head predicate appears *exactly once* in the body.

        This is the paper's notion of a linear recursive rule (Section 2).
        """
        return self.body_predicates().count(self.head.predicate) == 1

    def recursive_atoms(self) -> List[Atom]:
        """Body atoms whose predicate is the head predicate."""
        return [atom for atom in self.body if atom.predicate == self.head.predicate]

    def recursive_atom(self) -> Atom:
        """The unique recursive body atom of a linear recursive rule.

        Raises :class:`ProgramError` if the rule is not linear recursive.
        """
        recursive = self.recursive_atoms()
        if len(recursive) != 1:
            raise ProgramError(
                f"rule {self} is not linear recursive: head predicate occurs "
                f"{len(recursive)} times in the body"
            )
        return recursive[0]

    def nonrecursive_atoms(self) -> List[Atom]:
        """Body atoms whose predicate differs from the head predicate."""
        return [atom for atom in self.body if atom.predicate != self.head.predicate]

    def has_repeated_nonrecursive_predicates(self) -> bool:
        """``True`` when some non-head predicate occurs more than once in the body.

        Theorems 3.3 and 3.4 are stated for rules *without* repeated
        nonrecursive predicates; the detection pipeline checks this flag.
        """
        names = [atom.predicate for atom in self.nonrecursive_atoms()]
        return len(names) != len(set(names))

    def head_has_repeated_variables_or_constants(self) -> bool:
        """``True`` when the head violates the paper's standing assumption.

        The paper requires heads with no repeated variables and no constants.
        """
        variables = self.head_variables()
        has_repeats = len(variables) != len(set(variables))
        has_constants = len(variables) != self.head.arity
        return has_repeats or has_constants

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if not self.body:
            return f"{self.head}."
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head} :- {body}."

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rule({self!s})"


@dataclass(frozen=True)
class Program:
    """An ordered, immutable collection of rules.

    The order of rules is preserved (it only matters for readable printing);
    equality is order-insensitive set equality of the rules.
    """

    rules: Tuple[Rule, ...] = ()

    @staticmethod
    def of(*rules: Rule) -> "Program":
        """Convenience constructor from individual rules."""
        return Program(tuple(rules))

    def __post_init__(self) -> None:
        arities: Dict[str, int] = {}
        for rule in self.rules:
            for atom in (rule.head, *rule.body):
                known = arities.get(atom.predicate)
                if known is None:
                    arities[atom.predicate] = atom.arity
                elif known != atom.arity:
                    raise SchemaError(
                        f"predicate {atom.predicate} used with arities {known} and {atom.arity}"
                    )
        object.__setattr__(self, "_arities", arities)

    # ------------------------------------------------------------------
    # predicate classification
    # ------------------------------------------------------------------
    def arity_of(self, predicate: str) -> int:
        """Arity of ``predicate`` as used by the program."""
        arities: Dict[str, int] = getattr(self, "_arities")
        if predicate not in arities:
            raise ProgramError(f"predicate {predicate} does not appear in the program")
        return arities[predicate]

    def predicates(self) -> Set[str]:
        """All predicate names mentioned anywhere in the program."""
        result: Set[str] = set()
        for rule in self.rules:
            result |= rule.predicates()
        return result

    def idb_predicates(self) -> Set[str]:
        """Predicates defined by at least one rule head."""
        return {rule.head.predicate for rule in self.rules}

    def edb_predicates(self) -> Set[str]:
        """Predicates never appearing in a rule head (defined by their extent)."""
        return self.predicates() - self.idb_predicates()

    def rules_for(self, predicate: str) -> List[Rule]:
        """All rules whose head predicate is ``predicate``."""
        return [rule for rule in self.rules if rule.head.predicate == predicate]

    def recursive_rules_for(self, predicate: str) -> List[Rule]:
        """Rules for ``predicate`` that are (directly) recursive."""
        return [rule for rule in self.rules_for(predicate) if rule.is_recursive()]

    def exit_rules_for(self, predicate: str) -> List[Rule]:
        """Rules for ``predicate`` whose body does not mention ``predicate``.

        The paper calls these the *nonrecursive* or *exit* rules.
        """
        return [rule for rule in self.rules_for(predicate) if not rule.is_recursive()]

    # ------------------------------------------------------------------
    # dependency analysis
    # ------------------------------------------------------------------
    def dependency_graph(self) -> Dict[str, Set[str]]:
        """Map each IDB predicate to the set of predicates its rules use."""
        graph: Dict[str, Set[str]] = {}
        for rule in self.rules:
            graph.setdefault(rule.head.predicate, set()).update(rule.body_predicates())
        return graph

    def depends_on(self, predicate: str) -> Set[str]:
        """Transitive closure of the dependency graph from ``predicate``."""
        graph = self.dependency_graph()
        seen: Set[str] = set()
        frontier = [predicate]
        while frontier:
            current = frontier.pop()
            for dependency in graph.get(current, set()):
                if dependency not in seen:
                    seen.add(dependency)
                    frontier.append(dependency)
        return seen

    def is_recursive_predicate(self, predicate: str) -> bool:
        """``True`` when ``predicate`` (transitively) depends on itself."""
        return predicate in self.depends_on(predicate)

    def stratum_order(self) -> List[str]:
        """IDB predicates in a bottom-up evaluation order (dependencies first).

        Mutually recursive predicates end up adjacent; purely positive
        programs need nothing stronger than this ordering.
        """
        graph = self.dependency_graph()
        idb = self.idb_predicates()
        order: List[str] = []
        visited: Set[str] = set()
        in_stack: Set[str] = set()

        def visit(node: str) -> None:
            if node in visited or node not in idb:
                return
            if node in in_stack:
                return  # recursive cycle; evaluated jointly
            in_stack.add(node)
            for dependency in sorted(graph.get(node, set())):
                visit(dependency)
            in_stack.discard(node)
            visited.add(node)
            order.append(node)

        for predicate in sorted(idb):
            visit(predicate)
        return order

    # ------------------------------------------------------------------
    # the paper's canonical shape: one linear recursive rule + exit rules
    # ------------------------------------------------------------------
    def is_single_linear_recursion(self, predicate: str) -> bool:
        """``True`` when ``predicate`` is defined by exactly one recursive rule,
        that rule is linear, and every other rule for it is nonrecursive.

        This is the shape Sections 2–4 of the paper assume.
        """
        recursive = self.recursive_rules_for(predicate)
        if len(recursive) != 1:
            return False
        if not recursive[0].is_linear_recursive():
            return False
        # the recursive rule must not involve other IDB predicates that
        # themselves depend on `predicate` (mutual recursion)
        for other in recursive[0].nonrecursive_atoms():
            if other.predicate in self.idb_predicates() and predicate in self.depends_on(other.predicate):
                return False
        return True

    def linear_recursive_rule(self, predicate: str) -> Rule:
        """The unique linear recursive rule for ``predicate``.

        Raises :class:`ProgramError` when the program does not have the
        single-linear-recursive-rule shape for ``predicate``.
        """
        recursive = self.recursive_rules_for(predicate)
        if len(recursive) != 1:
            raise ProgramError(
                f"predicate {predicate} has {len(recursive)} recursive rules; "
                "expected exactly one"
            )
        rule = recursive[0]
        if not rule.is_linear_recursive():
            raise ProgramError(f"recursive rule for {predicate} is not linear: {rule}")
        return rule

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def with_rules(self, extra: Iterable[Rule]) -> "Program":
        """A new program with ``extra`` rules appended."""
        return Program(self.rules + tuple(extra))

    def without_rule(self, rule: Rule) -> "Program":
        """A new program with the first occurrence of ``rule`` removed."""
        rules = list(self.rules)
        rules.remove(rule)
        return Program(tuple(rules))

    def replace_rule(self, old: Rule, new: Rule) -> "Program":
        """A new program with ``old`` replaced by ``new`` (first occurrence)."""
        rules = list(self.rules)
        index = rules.index(old)
        rules[index] = new
        return Program(tuple(rules))

    # ------------------------------------------------------------------
    # rendering / equality
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Program):
            return NotImplemented
        return set(self.rules) == set(other.rules)

    def __hash__(self) -> int:
        return hash(frozenset(self.rules))


def single_linear_recursion(recursive_rule: Rule, *exit_rules: Rule) -> Program:
    """Build the canonical program shape the paper studies.

    Validates that ``recursive_rule`` is linear recursive, that every exit rule
    defines the same predicate nonrecursively, and that no head violates the
    paper's "no repeated variables, no constants" assumption.
    """
    if not recursive_rule.is_recursive():
        raise ProgramError(f"{recursive_rule} is not recursive")
    if not recursive_rule.is_linear_recursive():
        raise ProgramError(f"{recursive_rule} is not linear recursive")
    predicate = recursive_rule.head.predicate
    for rule in (recursive_rule, *exit_rules):
        if rule.head.predicate != predicate:
            raise ProgramError(
                f"exit rule {rule} defines {rule.head.predicate}, expected {predicate}"
            )
        if rule.head_has_repeated_variables_or_constants():
            raise ProgramError(
                f"rule {rule} has repeated variables or constants in its head, "
                "which the paper's standing assumptions forbid"
            )
    for rule in exit_rules:
        if rule.is_recursive():
            raise ProgramError(f"exit rule {rule} is recursive")
    return Program((recursive_rule, *exit_rules))
