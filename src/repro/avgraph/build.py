"""Construction of the A/V graph and the full A/V graph (Section 2, Section 3).

The *argument/variable graph* of a linear recursive rule has

* a **variable node** for each variable of the rule,
* an **argument node** for each argument position in the rule *body*,
* an undirected, weight-0 **identity edge** from each argument node to the
  node of the variable occupying that position, and
* a directed, weight-1 **unification edge** from each argument node of the
  recursive body predicate to the node of the distinguished variable occupying
  the corresponding position of the rule *head*.

The **full A/V graph** (Section 3) additionally has weight-0 **predicate
edges** between adjacent argument nodes of each nonrecursive body predicate,
and drops every connected component that contains no argument node of a
nonrecursive predicate.

Paths may traverse unification edges in either direction; traversing one
backwards contributes weight −1 (Section 2).  The adjacency view exposed by
:class:`AVGraph` encodes exactly that convention, which is what the
weighted-cycle analysis in :mod:`repro.avgraph.cycles` relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..datalog.atoms import Atom
from ..datalog.errors import ProgramError
from ..datalog.rules import Rule
from ..datalog.terms import Variable, is_variable

IDENTITY = "identity"
UNIFICATION = "unification"
PREDICATE = "predicate"


@dataclass(frozen=True, order=True)
class VarNode:
    """Node for a variable of the rule."""

    variable: Variable

    def label(self) -> str:
        return str(self.variable)


@dataclass(frozen=True, order=True)
class ArgNode:
    """Node for an argument position of a body predicate instance.

    ``occurrence`` numbers repeated instances of the same predicate in the
    body (0-based); ``position`` is the 0-based argument position.  The label
    follows the paper's convention (``a1`` is the first argument of ``a``),
    with a ``#k`` suffix for repeated predicate instances.
    """

    predicate: str
    occurrence: int
    position: int
    recursive: bool = False

    def label(self) -> str:
        suffix = "" if self.occurrence == 0 else f"#{self.occurrence + 1}"
        return f"{self.predicate}{suffix}{self.position + 1}"


Node = Union[VarNode, ArgNode]


@dataclass(frozen=True)
class Edge:
    """An edge of the A/V graph.

    ``weight`` is the weight of traversing the edge in its stored direction
    (``source`` → ``target``); identity and predicate edges have weight 0 and
    are undirected, unification edges have weight +1 from argument node to
    distinguished-variable node and −1 when traversed backwards.
    """

    source: Node
    target: Node
    kind: str
    weight: int = 0

    def other(self, node: Node) -> Node:
        return self.target if node == self.source else self.source


@dataclass
class AVGraph:
    """An A/V graph or full A/V graph, with the traversal conventions of the paper."""

    rule: Rule
    nodes: Set[Node] = field(default_factory=set)
    edges: List[Edge] = field(default_factory=list)
    full: bool = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        self.nodes.add(node)

    def add_edge(self, source: Node, target: Node, kind: str, weight: int = 0) -> None:
        self.nodes.add(source)
        self.nodes.add(target)
        self.edges.append(Edge(source, target, kind, weight))

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def variable_nodes(self) -> List[VarNode]:
        return sorted(node for node in self.nodes if isinstance(node, VarNode))

    def argument_nodes(self) -> List[ArgNode]:
        return sorted(node for node in self.nodes if isinstance(node, ArgNode))

    def nonrecursive_argument_nodes(self) -> List[ArgNode]:
        return [node for node in self.argument_nodes() if not node.recursive]

    def adjacency(self) -> Dict[Node, List[Tuple[Node, int, Edge]]]:
        """Traversal adjacency: both directions, with the ±1 convention for unification edges."""
        adjacency: Dict[Node, List[Tuple[Node, int, Edge]]] = {node: [] for node in self.nodes}
        for edge in self.edges:
            adjacency[edge.source].append((edge.target, edge.weight, edge))
            adjacency[edge.target].append((edge.source, -edge.weight, edge))
        return adjacency

    def edges_between(self, first: Node, second: Node) -> List[Edge]:
        return [
            edge
            for edge in self.edges
            if {edge.source, edge.target} == {first, second}
        ]

    def node_by_label(self, label: str) -> Node:
        """Find a node by its display label (``"X"``, ``"a1"``, ``"t2"`` ...)."""
        for node in self.nodes:
            if node.label() == label:
                return node
        raise KeyError(f"no node labelled {label!r}")

    def __contains__(self, node: Node) -> bool:
        return node in self.nodes


def _body_argument_nodes(rule: Rule) -> List[Tuple[ArgNode, Atom]]:
    """One argument node per body argument position, paired with its atom."""
    occurrences: Dict[str, int] = {}
    result: List[Tuple[ArgNode, Atom]] = []
    head_predicate = rule.head.predicate
    for atom in rule.body:
        occurrence = occurrences.get(atom.predicate, 0)
        occurrences[atom.predicate] = occurrence + 1
        for position in range(atom.arity):
            node = ArgNode(
                predicate=atom.predicate,
                occurrence=occurrence,
                position=position,
                recursive=(atom.predicate == head_predicate),
            )
            result.append((node, atom))
    return result


def build_av_graph(rule: Rule) -> AVGraph:
    """The A/V graph of a linear recursive rule (Section 2)."""
    if not rule.is_linear_recursive():
        raise ProgramError(f"A/V graphs are defined for linear recursive rules; got {rule}")
    graph = AVGraph(rule=rule)

    for variable in sorted(rule.variables()):
        graph.add_node(VarNode(variable))

    for node, atom in _body_argument_nodes(rule):
        graph.add_node(node)
        term = atom.args[node.position]
        if is_variable(term):
            graph.add_edge(node, VarNode(term), IDENTITY, 0)
        if node.recursive:
            head_term = rule.head.args[node.position]
            if is_variable(head_term):
                graph.add_edge(node, VarNode(head_term), UNIFICATION, 1)
    return graph


def build_full_av_graph(rule: Rule) -> AVGraph:
    """The full A/V graph of a linear recursive rule (Section 3).

    Adds predicate edges between adjacent argument nodes of each nonrecursive
    body predicate instance and removes components without a nonrecursive
    argument node.
    """
    graph = build_av_graph(rule)
    graph.full = True

    # predicate edges: adjacent argument positions of the same nonrecursive instance
    by_instance: Dict[Tuple[str, int], List[ArgNode]] = {}
    for node in graph.argument_nodes():
        if node.recursive:
            continue
        by_instance.setdefault((node.predicate, node.occurrence), []).append(node)
    for instance_nodes in by_instance.values():
        instance_nodes.sort(key=lambda n: n.position)
        for left, right in zip(instance_nodes, instance_nodes[1:]):
            graph.add_edge(left, right, PREDICATE, 0)

    # remove components containing no nonrecursive argument node
    keep = _components_with_nonrecursive_arguments(graph)
    graph.nodes = {node for node in graph.nodes if node in keep}
    graph.edges = [
        edge for edge in graph.edges if edge.source in keep and edge.target in keep
    ]
    return graph


def _components_with_nonrecursive_arguments(graph: AVGraph) -> Set[Node]:
    """Nodes lying in a component that contains at least one nonrecursive argument node."""
    adjacency = graph.adjacency()
    visited: Set[Node] = set()
    keep: Set[Node] = set()
    for start in graph.nodes:
        if start in visited:
            continue
        component: Set[Node] = set()
        frontier = [start]
        visited.add(start)
        while frontier:
            node = frontier.pop()
            component.add(node)
            for neighbor, _weight, _edge in adjacency.get(node, ()):  # type: ignore[arg-type]
                if neighbor not in visited:
                    visited.add(neighbor)
                    frontier.append(neighbor)
        if any(isinstance(node, ArgNode) and not node.recursive for node in component):
            keep |= component
    return keep
