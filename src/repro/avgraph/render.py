"""Rendering of A/V graphs (Figures 2–6 of the paper).

The paper presents its examples as small drawings of A/V graphs.  This module
produces two textual forms of the same information:

* :func:`to_dot` — Graphviz DOT source, for readers who want to render the
  figures graphically, and
* :func:`describe` — a plain-text summary (one line per component, listing the
  member nodes, the edges, and the cycle-weight subgroup), which is what the
  E1 benchmark prints so the figure content can be compared against the paper
  without any external tooling.
"""

from __future__ import annotations

from typing import List

from .build import AVGraph, Edge, IDENTITY, PREDICATE, UNIFICATION
from .cycles import analyze_components


def _edge_attributes(edge: Edge) -> str:
    if edge.kind == UNIFICATION:
        return '[label="+1", style=solid, color=black, arrowhead=normal]'
    if edge.kind == PREDICATE:
        return "[style=dashed, dir=none]"
    return "[style=solid, dir=none]"


def to_dot(graph: AVGraph, name: str = "av_graph") -> str:
    """Graphviz DOT source for an A/V graph.

    Variable nodes render as circles, argument nodes as boxes; unification
    edges are the only directed edges (labelled ``+1``), predicate edges are
    dashed, identity edges plain.
    """
    lines: List[str] = [f"digraph {name} {{", "  rankdir=BT;"]
    for node in sorted(graph.nodes, key=lambda n: n.label()):
        shape = "circle" if node.__class__.__name__ == "VarNode" else "box"
        lines.append(f'  "{node.label()}" [shape={shape}];')
    for edge in graph.edges:
        lines.append(
            f'  "{edge.source.label()}" -> "{edge.target.label()}" {_edge_attributes(edge)};'
        )
    lines.append("}")
    return "\n".join(lines)


def describe(graph: AVGraph, title: str = "") -> str:
    """A plain-text description of the graph, one block per connected component.

    The output lists, for each component, its nodes, its edges (with the edge
    kind and weight), the cycle-weight gcd, and whether the component
    satisfies each clause of Theorem 3.1 — i.e. everything needed to check a
    figure of the paper by eye.
    """
    lines: List[str] = []
    header = title or ("full A/V graph" if graph.full else "A/V graph")
    lines.append(f"{header} for: {graph.rule}")
    components = analyze_components(graph)
    if not components:
        lines.append("  (empty graph: every component was pruned)")
    for index, component in enumerate(components, start=1):
        lines.append(f"  component {index}: nodes = {{{', '.join(component.labels())}}}")
        member_edges = [
            edge
            for edge in graph.edges
            if edge.source in component.nodes and edge.target in component.nodes
        ]
        for edge in sorted(member_edges, key=lambda e: (e.source.label(), e.target.label())):
            if edge.kind == UNIFICATION:
                lines.append(
                    f"    {edge.source.label()} --(+1 unification)--> {edge.target.label()}"
                )
            elif edge.kind == PREDICATE:
                lines.append(
                    f"    {edge.source.label()} --(predicate)-- {edge.target.label()}"
                )
            else:
                lines.append(
                    f"    {edge.source.label()} --(identity)-- {edge.target.label()}"
                )
        lines.append(
            f"    cycle-weight gcd = {component.cycle_gcd}"
            f" (nonzero cycle: {'yes' if component.has_nonzero_weight_cycle else 'no'},"
            f" weight-1 cycle: {'yes' if component.has_weight_one_cycle else 'no'})"
        )
    return "\n".join(lines)
