"""A/V graphs and full A/V graphs (Sections 2-3, Figures 2-6)."""

from .build import (
    IDENTITY,
    PREDICATE,
    UNIFICATION,
    ArgNode,
    AVGraph,
    Edge,
    Node,
    VarNode,
    build_av_graph,
    build_full_av_graph,
)
from .cycles import (
    ComponentAnalysis,
    analyze_components,
    component_containing,
    component_containing_predicate,
    components_with_nonzero_cycles,
)
from .render import describe, to_dot

__all__ = [
    "IDENTITY",
    "PREDICATE",
    "UNIFICATION",
    "ArgNode",
    "AVGraph",
    "ComponentAnalysis",
    "Edge",
    "Node",
    "VarNode",
    "analyze_components",
    "build_av_graph",
    "build_full_av_graph",
    "component_containing",
    "component_containing_predicate",
    "components_with_nonzero_cycles",
    "describe",
    "to_dot",
]
