"""Weighted-cycle analysis of A/V graphs.

Theorem 3.1 classifies a single-linear-rule recursion by looking at the
connected components of its full A/V graph:

* a component "has a cycle of nonzero weight" when some closed walk through it
  has nonzero total weight, and
* one-sidedness additionally requires that the (unique) such component has a
  cycle of weight 1.

Because closed walks compose and reverse (reversal negates the weight), the
set of closed-walk weights through any node of a connected component is a
subgroup ``g·ℤ`` of the integers.  ``g`` is computed with breadth-first
potentials: fix a root, assign each node the weight of some walk from the
root, and take the gcd of the *residuals* ``|φ(u) + w(u→v) − φ(v)|`` over all
edges of the component.  Then

* ``g = 0``  ⇔ every cycle of the component has weight 0,
* ``g ≠ 0``  ⇔ the component has a cycle of nonzero weight, and
* ``g = 1``  ⇔ the component has a cycle of weight 1,

which are exactly the three facts Theorems 3.1 and 3.3 need.  The same
potentials also give, for any two nodes ``u, v`` in a component, the full set
of achievable walk weights ``(φ(v) − φ(u)) + g·ℤ`` — the quantity Facts
2.1/2.2 and Lemma 3.1 reason about; tests use it to cross-validate the
structural analysis against concrete expansions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.terms import Variable
from .build import ArgNode, AVGraph, Node, VarNode


@dataclass
class ComponentAnalysis:
    """Everything Theorems 3.1/3.3 need to know about one connected component."""

    #: the nodes of the component
    nodes: Set[Node]
    #: gcd of closed-walk weights (0 when every cycle has weight 0)
    cycle_gcd: int
    #: BFS potentials relative to an arbitrary root (walk weights root → node)
    potentials: Dict[Node, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # the predicates Theorems 3.1 / 3.3 test
    # ------------------------------------------------------------------
    @property
    def has_nonzero_weight_cycle(self) -> bool:
        """``True`` when some closed walk of the component has nonzero weight."""
        return self.cycle_gcd != 0

    @property
    def has_weight_one_cycle(self) -> bool:
        """``True`` when the component has a closed walk of weight exactly 1."""
        return self.cycle_gcd == 1

    def contains_variable(self, variable: Variable) -> bool:
        """``True`` when the node for ``variable`` lies in this component."""
        return VarNode(variable) in self.nodes

    def nondistinguished_variables(self, distinguished: Set[Variable]) -> Set[Variable]:
        """Variables of the component that are not distinguished."""
        return {
            node.variable
            for node in self.nodes
            if isinstance(node, VarNode) and node.variable not in distinguished
        }

    def has_nondistinguished_variable(self, distinguished: Set[Variable]) -> bool:
        """``True`` when the component contains a node for a nondistinguished variable."""
        return bool(self.nondistinguished_variables(distinguished))

    def nonrecursive_predicates(self) -> Set[Tuple[str, int]]:
        """(predicate, occurrence) pairs of nonrecursive instances with argument nodes here."""
        return {
            (node.predicate, node.occurrence)
            for node in self.nodes
            if isinstance(node, ArgNode) and not node.recursive
        }

    def argument_nodes(self) -> List[ArgNode]:
        """Argument nodes of the component, sorted."""
        return sorted(node for node in self.nodes if isinstance(node, ArgNode))

    def walk_weights(self, source: Node, target: Node) -> Tuple[int, int]:
        """The achievable walk weights from ``source`` to ``target``.

        Returns ``(base, gcd)`` meaning the weight set is ``base + gcd·ℤ``
        (``gcd = 0`` means exactly one achievable weight).  Raises ``KeyError``
        when either node lies outside the component.
        """
        base = self.potentials[target] - self.potentials[source]
        return base, self.cycle_gcd

    def labels(self) -> List[str]:
        """Node labels, sorted — convenient for tests and rendering."""
        return sorted(node.label() for node in self.nodes)


def analyze_components(graph: AVGraph) -> List[ComponentAnalysis]:
    """Connected components of an A/V graph with their cycle-weight subgroup."""
    adjacency = graph.adjacency()
    visited: Set[Node] = set()
    components: List[ComponentAnalysis] = []
    for start in sorted(graph.nodes, key=lambda node: node.label()):
        if start in visited:
            continue
        potentials: Dict[Node, int] = {start: 0}
        frontier: List[Node] = [start]
        visited.add(start)
        cycle_gcd = 0
        while frontier:
            node = frontier.pop()
            for neighbor, weight, _edge in adjacency.get(node, ()):  # type: ignore[arg-type]
                candidate = potentials[node] + weight
                if neighbor not in potentials:
                    potentials[neighbor] = candidate
                    visited.add(neighbor)
                    frontier.append(neighbor)
                else:
                    residual = abs(candidate - potentials[neighbor])
                    if residual:
                        cycle_gcd = gcd(cycle_gcd, residual)
        components.append(
            ComponentAnalysis(nodes=set(potentials), cycle_gcd=cycle_gcd, potentials=potentials)
        )
    return components


def components_with_nonzero_cycles(graph: AVGraph) -> List[ComponentAnalysis]:
    """The components whose cycle-weight subgroup is nontrivial."""
    return [component for component in analyze_components(graph) if component.has_nonzero_weight_cycle]


def simple_cycles(graph: AVGraph) -> List[Tuple[frozenset, int]]:
    """All simple cycles of the graph, as ``(node set, |weight|)`` pairs.

    A simple cycle visits each node at most once (start = end) and each edge
    at most once; cycles of length 2 through a pair of parallel edges (an
    identity edge plus a unification edge between the same argument and
    variable node — the commonest source of weight-1 cycles in A/V graphs) are
    included.  The weight is reported as an absolute value because reversing a
    cycle negates it.

    Theorem 3.3 needs cycles through specific nodes (nondistinguished-variable
    nodes), which the aggregate gcd of :func:`analyze_components` cannot
    express; A/V graphs are small (one node per variable and body argument
    position), so explicit enumeration is cheap.
    """
    adjacency = graph.adjacency()
    node_order = {node: index for index, node in enumerate(sorted(graph.nodes, key=lambda n: n.label()))}
    cycles: Dict[Tuple[frozenset, frozenset], int] = {}

    def walk(start: Node, node: Node, weight: int, visited: List[Node], used_edges: Set[int]) -> None:
        for neighbor, edge_weight, edge in adjacency.get(node, ()):  # type: ignore[arg-type]
            edge_id = id(edge)
            if edge_id in used_edges:
                continue
            if neighbor == start and len(visited) >= 2:
                key = (frozenset(visited), frozenset(used_edges | {edge_id}))
                cycles.setdefault(key, abs(weight + edge_weight))
                continue
            if neighbor in visited or node_order[neighbor] < node_order[start]:
                continue
            walk(start, neighbor, weight + edge_weight, visited + [neighbor], used_edges | {edge_id})

    for start in sorted(graph.nodes, key=lambda n: node_order[n]):
        walk(start, start, 0, [start], set())

    return [(nodes, weight) for (nodes, _edges), weight in cycles.items()]


def nonzero_cycle_nodes(graph: AVGraph) -> Set[Node]:
    """Nodes lying on at least one simple cycle of nonzero weight."""
    result: Set[Node] = set()
    for nodes, weight in simple_cycles(graph):
        if weight != 0:
            result |= set(nodes)
    return result


def component_containing(graph: AVGraph, node: Node) -> Optional[ComponentAnalysis]:
    """The component analysis containing ``node``, or ``None`` if the node was pruned."""
    for component in analyze_components(graph):
        if node in component.nodes:
            return component
    return None


def component_containing_predicate(
    graph: AVGraph, predicate: str, occurrence: int = 0
) -> Optional[ComponentAnalysis]:
    """The component holding the argument nodes of a given body predicate instance.

    Full A/V graph construction never splits the argument nodes of one
    instance across components (they are chained by predicate edges), so the
    first match identifies the component.
    """
    for component in analyze_components(graph):
        for node in component.nodes:
            if isinstance(node, ArgNode) and node.predicate == predicate and node.occurrence == occurrence:
                return component
    return None
