"""The magic-sets transformation — the general-purpose baseline.

Section 4 points out that the two structural difficulties of many-sided
recursions "force one to turn to methods such as Magic Sets or Counting".
This module implements generalized magic sets [BMSU86, BR87] for positive
Datalog with a ``column = constant`` query:

1. **Adornment** — starting from the query's bound/free pattern, propagate
   binding patterns through rule bodies with a bound-first
   sideways-information-passing order (the same greedy order the rest of the
   library uses).
2. **Magic rules** — for every adorned IDB body atom, a rule deriving its
   magic (relevant-bindings) relation from the head's magic relation and the
   preceding body atoms.
3. **Modified rules** — each adorned rule is guarded by the magic relation of
   its head.
4. The transformed program is evaluated with semi-naive iteration, seeded with
   the query constants as the initial magic fact.

The rewriting restricts the bottom-up computation to facts relevant to the
query, which is the behaviour the one-sided schema achieves *without* any
rewriting; the benchmarks compare the two on both one-sided and many-sided
inputs.

The transformed program is handed to :func:`repro.engine.seminaive.seminaive_evaluate`
unchanged, so the whole magic fixpoint automatically rides the interned
value domain and the generated join kernels: the seeded database (original
relations plus the magic seed) is encoded once, every magic/modified rule
runs as a generated kernel over int rows, and the adorned answer relation
comes back decoded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import EvaluationError
from ..datalog.relation import Relation
from ..datalog.rules import Program, Rule
from ..datalog.terms import Constant, Variable, is_variable
from ..engine.cq_eval import plan_order
from ..engine.instrumentation import EvaluationStats
from ..engine.query import QueryResult, SelectionQuery
from ..engine.seminaive import seminaive_evaluate, seminaive_query

Adornment = str  # e.g. "bf"


def _adorned_name(predicate: str, adornment: Adornment) -> str:
    return f"{predicate}__{adornment}"


def _magic_name(predicate: str, adornment: Adornment) -> str:
    return f"magic__{predicate}__{adornment}"


def _atom_adornment(atom: Atom, bound: Set[Variable]) -> Adornment:
    letters = []
    for arg in atom.args:
        if isinstance(arg, Constant) or (is_variable(arg) and arg in bound):
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


def _bound_args(atom: Atom, adornment: Adornment) -> Tuple:
    return tuple(arg for arg, letter in zip(atom.args, adornment) if letter == "b")


@dataclass
class MagicRewriting:
    """The adorned + magic program for one query, plus bookkeeping."""

    original: Program
    query: SelectionQuery
    rewritten: Program
    #: adorned name of the query predicate (where the answers live)
    answer_predicate: str
    #: name and seed tuple of the query's magic relation
    seed_predicate: str
    seed_tuple: Tuple
    #: adorned predicates processed, in order
    adorned_predicates: List[Tuple[str, Adornment]] = field(default_factory=list)

    @property
    def rule_count(self) -> int:
        """Number of rules in the rewritten program (rewriting overhead indicator)."""
        return len(self.rewritten.rules)


def magic_rewrite(program: Program, query: SelectionQuery) -> MagicRewriting:
    """Produce the adorned magic program for ``query``."""
    if query.predicate not in program.idb_predicates():
        raise EvaluationError(f"{query.predicate} is not an IDB predicate of the program")
    if not query.bound_columns():
        raise EvaluationError(
            "magic sets requires at least one bound column; use semi-naive evaluation "
            "for unconstrained queries"
        )

    idb = program.idb_predicates()
    query_adornment = "".join(
        "b" if column in set(query.bound_columns()) else "f" for column in range(query.arity)
    )

    worklist: List[Tuple[str, Adornment]] = [(query.predicate, query_adornment)]
    processed: Set[Tuple[str, Adornment]] = set()
    new_rules: List[Rule] = []
    adorned_order: List[Tuple[str, Adornment]] = []

    while worklist:
        predicate, adornment = worklist.pop(0)
        if (predicate, adornment) in processed:
            continue
        processed.add((predicate, adornment))
        adorned_order.append((predicate, adornment))

        for rule in program.rules_for(predicate):
            head = rule.head
            bound_head_vars = {
                arg
                for arg, letter in zip(head.args, adornment)
                if letter == "b" and is_variable(arg)
            }
            order = plan_order(rule.body, set(bound_head_vars))
            ordered_body = [rule.body[index] for index in order]

            adorned_body: List[Atom] = []
            magic_bodies: List[Tuple[Atom, List[Atom]]] = []  # (idb atom w/ adornment applied, prefix)
            bound_vars = set(bound_head_vars)
            prefix: List[Atom] = []
            for atom in ordered_body:
                if atom.predicate in idb:
                    body_adornment = _atom_adornment(atom, bound_vars)
                    adorned_atom = Atom(_adorned_name(atom.predicate, body_adornment), atom.args)
                    adorned_body.append(adorned_atom)
                    if "b" in body_adornment:
                        magic_atom = Atom(
                            _magic_name(atom.predicate, body_adornment),
                            _bound_args(atom, body_adornment),
                        )
                        magic_bodies.append((magic_atom, list(prefix)))
                    if (atom.predicate, body_adornment) not in processed:
                        worklist.append((atom.predicate, body_adornment))
                    prefix.append(adorned_atom)
                else:
                    adorned_body.append(atom)
                    prefix.append(atom)
                bound_vars |= atom.variable_set()

            magic_head_atom = Atom(
                _magic_name(predicate, adornment), _bound_args(head, adornment)
            )
            adorned_head = Atom(_adorned_name(predicate, adornment), head.args)

            # modified rule: guarded by the magic relation of its head
            guard: List[Atom] = [magic_head_atom] if "b" in adornment else []
            new_rules.append(Rule(adorned_head, tuple(guard + adorned_body)))

            # magic rules for each adorned IDB body atom
            for magic_atom, atoms_before in magic_bodies:
                new_rules.append(Rule(magic_atom, tuple(guard + atoms_before)))

    seed_predicate = _magic_name(query.predicate, query_adornment)
    seed_tuple = tuple(value for _column, value in sorted(query.bindings))

    return MagicRewriting(
        original=program,
        query=query,
        rewritten=Program(tuple(new_rules)),
        answer_predicate=_adorned_name(query.predicate, query_adornment),
        seed_predicate=seed_predicate,
        seed_tuple=seed_tuple,
        adorned_predicates=adorned_order,
    )


def magic_query(
    program: Program,
    database: Database,
    query: SelectionQuery,
    stats: Optional[EvaluationStats] = None,
) -> QueryResult:
    """Answer ``query`` by magic-sets rewriting + semi-naive evaluation."""
    stats = stats if stats is not None else EvaluationStats()
    if not query.bound_columns():
        answers, stats = seminaive_query(program, database, query.predicate, {}, stats)
        return QueryResult(query, answers, stats, strategy="seminaive (no bound columns)")

    stats.start_timer()
    rewriting = magic_rewrite(program, query)

    # Overlay database: the EDB relations are shared (semi-naive evaluation
    # never mutates its inputs), only the magic seed relation is fresh, so a
    # query does not pay for copying the whole database.
    seeded = Database(database.relations())
    seeded.add_relation(
        Relation(rewriting.seed_predicate, len(rewriting.seed_tuple), [rewriting.seed_tuple])
    )
    derived = seminaive_evaluate(rewriting.rewritten, seeded, stats)

    answer_relation = derived.get(rewriting.answer_predicate)
    answers = set(answer_relation.rows()) if answer_relation is not None else set()
    answers = query.select(answers)
    stats.extra["magic_rules"] = rewriting.rule_count
    stats.extra["magic_facts"] = sum(
        len(relation)
        for name, relation in derived.items()
        if name.startswith("magic__")
    )
    stats.stop_timer()
    return QueryResult(query, answers, stats, strategy="magic-sets")
