"""The counting method — the other baseline Section 4 points to.

The counting (or "counting sets") method [BMSU86, SZ86] evaluates a selection
on a chain-shaped linear recursion by remembering, for every value reached
while descending the recursion, *how many* recursive-rule applications were
needed to reach it, and then re-applying the "down" predicate that many times
while ascending.  It is the textbook remedy for exactly the two difficulties
Section 4 identifies in many-sided recursions (intermediate values must be
reused at several depths, and every string adds new instances on both sides of
the exit predicate) — at the cost of keeping the depth index in the state and
of not terminating on cyclic data unless a depth bound is imposed.

Scope: the implementation covers *chain recursions*, i.e. definitions whose
single linear recursive rule has the shape

    t(X, Y) :- up(X, W), t(W, Z), down(Z, Y).      (canonical two-sided)
    t(X, Y) :- up(X, W), t(W, Y).                  (canonical one-sided)

with arbitrary exit rules, and queries binding the first column.  This covers
the recursions the paper's Section 4 analysis is about; other shapes raise
:class:`~repro.datalog.errors.ProgramError`.  The paper's closing question —
whether deleting the counting fields afterwards always yields a correct
reduced-arity program for one-sided recursions — is exercised by the E12
benchmark via :func:`counting_without_counts_query`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import EvaluationError, ProgramError
from ..datalog.relation import Relation, Value
from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable, is_variable
from ..engine import algebra
from ..engine.compile import CompiledRule, compile_rule
from ..engine.domain import Domain, engine_relations, intern_plan
from ..engine.instrumentation import EvaluationStats
from ..engine.query import QueryResult, SelectionQuery


def _compile_exit_rules(
    shape: ChainShape, relations, domain: Optional[Domain] = None
) -> List[Tuple[object, Optional[Value], CompiledRule]]:
    """Compile each exit rule's body once per query instead of once per value.

    Returns ``(first head argument, match key, compiled plan)`` triples; when
    the first head argument is a variable it is declared bound so the
    per-value evaluation below probes the body with it, and the match key is
    ``None``.  For a constant first head argument the match key is the value
    the rule fires at — interned into code space when a ``domain`` is active,
    like the plan's embedded constants.
    """
    plans: List[Tuple[object, Optional[Value], CompiledRule]] = []
    for exit_rule in shape.exit_rules:
        head_first = exit_rule.head.args[0]
        bound = (head_first,) if is_variable(head_first) else ()
        plan = compile_rule(exit_rule, relations, bound=bound)
        match: Optional[Value] = None
        if not is_variable(head_first):
            match = domain.intern(head_first.value) if domain is not None else head_first.value
        if domain is not None:
            plan = intern_plan(plan, domain)
        plans.append((head_first, match, plan))
    return plans


def _exit_seconds(
    plans: List[Tuple[object, Optional[Value], CompiledRule]],
    relations,
    value: Value,
    stats: EvaluationStats,
) -> Set[Value]:
    """Second head components derivable by the exit rules for ``value``."""
    seconds: Set[Value] = set()
    for head_first, match, plan in plans:
        if not plan.producible:
            continue
        if is_variable(head_first):
            bindings = {head_first: value}
        elif match != value:
            # a constant head argument only matches its own value; the rule
            # contributes nothing at other reached values
            continue
        else:
            bindings = None
        is_const, op = plan.head_ops[1]
        for assignment in plan.join(relations, stats=stats, bindings=bindings):
            seconds.add(op if is_const else assignment[op])
    return seconds


@dataclass
class ChainShape:
    """The decomposition of a chain recursion's recursive rule."""

    predicate: str
    recursive_rule: Rule
    exit_rules: List[Rule]
    #: the "up" predicate linking the head's first column to the call's first column
    up_predicate: str
    #: the "down" predicate linking the call's second column back to the head's
    #: second column, or ``None`` for the one-sided shape
    down_predicate: Optional[str]


def detect_chain_shape(program: Program, predicate: str) -> ChainShape:
    """Recognise the chain shape described in the module docstring."""
    rule = program.linear_recursive_rule(predicate)
    head = rule.head
    call = rule.recursive_atom()
    if head.arity != 2 or call.arity != 2:
        raise ProgramError("the counting method implementation handles binary chain recursions")
    head_x, head_y = head.args
    call_w, call_z = call.args
    if not all(is_variable(v) for v in (head_x, head_y, call_w, call_z)):
        raise ProgramError("chain recursions must have variable-only heads and recursive calls")

    up_predicate: Optional[str] = None
    down_predicate: Optional[str] = None
    for atom in rule.nonrecursive_atoms():
        if atom.arity == 2 and atom.args == (head_x, call_w):
            up_predicate = atom.predicate
        elif atom.arity == 2 and atom.args == (call_z, head_y):
            down_predicate = atom.predicate
        else:
            raise ProgramError(f"atom {atom} does not fit the chain shape")
    if up_predicate is None:
        raise ProgramError("no up-predicate of the form up(X, W) found")
    if down_predicate is None and call_z != head_y:
        raise ProgramError("the recursive call's second argument is neither chained down nor invariant")

    return ChainShape(
        predicate=predicate,
        recursive_rule=rule,
        exit_rules=program.exit_rules_for(predicate),
        up_predicate=up_predicate,
        down_predicate=down_predicate,
    )


def counting_scope_reason(program: Program, query: SelectionQuery) -> str:
    """Why :func:`counting_query` cannot run ``query`` — ``""`` when it can.

    One shared scope check for every router over the counting method (the
    query front door and the differential harness): the query must bind
    exactly column 0, the recursion must have the chain shape, and the exit
    rules must read only EDB predicates.  Data-dependent failures (cyclic
    reachable data tripping the depth bound) are not predictable from the
    program and still surface as :class:`EvaluationError` at run time.
    """
    if set(query.bound_columns()) != {0}:
        return "query does not bind exactly column 0"
    try:
        shape = detect_chain_shape(program, query.predicate)
    except ProgramError as error:
        return f"no chain shape: {error}"
    edb = program.edb_predicates()
    for exit_rule in shape.exit_rules:
        if any(predicate not in edb for predicate in exit_rule.body_predicates()):
            return "exit rule depends on IDB predicates"
    return ""


def counting_query(
    program: Program,
    database: Database,
    query: SelectionQuery,
    max_depth: int = 10_000,
    stats: Optional[EvaluationStats] = None,
) -> QueryResult:
    """Answer ``t(c, Y)`` on a chain recursion with the counting method."""
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()
    bindings = query.bindings_dict()
    if set(bindings) != {0}:
        raise EvaluationError("the counting method implementation handles queries binding column 0")
    constant = bindings[0]
    shape = detect_chain_shape(program, query.predicate)

    # The descent/ascent runs over the interned value domain like the
    # fixpoint engines: relations and the query constant are encoded once,
    # every semijoin hashes codes, and the answers are decoded at the end.
    domain, relations = engine_relations(program, database)
    if domain is not None:
        constant = domain.intern(constant)
    up = relations.get(shape.up_predicate) or Relation(shape.up_predicate, 2)
    down = None
    if shape.down_predicate is not None:
        down = relations.get(shape.down_predicate) or Relation(shape.down_predicate, 2)

    # descend: counting(i, w) = w reachable from the constant in exactly i up-steps
    counting: Dict[int, Set[Value]] = {0: {constant}}
    depth = 0
    while counting[depth] and depth < max_depth:
        stats.record_iteration()
        next_values = {row[1] for row in algebra.semijoin(counting[depth], up, 0, stats)}
        depth += 1
        counting[depth] = next_values
        stats.record_state(sum(len(v) for v in counting.values()), 2 * sum(len(v) for v in counting.values()))
        if depth >= max_depth:
            raise EvaluationError(
                "the counting method did not terminate within the depth bound; "
                "the data reachable from the query constant is cyclic"
            )

    # ascend: apply the exit rules at every depth, then walk the down chain back up
    answers: Set[Tuple[Value, ...]] = set()
    exit_plans = _compile_exit_rules(shape, relations, domain)
    stats.record_plans_compiled(len(exit_plans))
    for level, values in counting.items():
        if not values:
            continue
        exit_seconds: Set[Value] = set()
        for value in values:
            exit_seconds |= _exit_seconds(exit_plans, relations, value, stats)
        frontier = exit_seconds
        if down is not None:
            for _ in range(level):
                frontier = {row[1] for row in algebra.semijoin(frontier, down, 0, stats)}
        for value in frontier:
            answers.add((constant, value))

    if domain is not None:
        answers = {domain.decode_row(row) for row in answers}
    answers = query.select(answers)
    stats.record_produced(len(answers))
    stats.extra["counting_levels"] = len(counting)
    stats.stop_timer()
    return QueryResult(query, answers, stats, strategy="counting")


def counting_without_counts_query(
    program: Program,
    database: Database,
    query: SelectionQuery,
    stats: Optional[EvaluationStats] = None,
) -> QueryResult:
    """The "delete the counting fields" variant discussed at the end of Section 4.

    For a *one-sided* chain recursion (no down-predicate) the depth index is
    never consulted on the way back up, so dropping it leaves a correct unary
    algorithm — in fact exactly the Henschen–Naqvi algorithm of Figure 8.  The
    implementation merges the per-depth sets into one ``seen`` set and answers
    from it; applying it to a recursion that *does* have a down chain would be
    incorrect, so that case is rejected.
    """
    stats = stats if stats is not None else EvaluationStats()
    shape = detect_chain_shape(program, query.predicate)
    if shape.down_predicate is not None:
        raise EvaluationError(
            "deleting the counting fields is only sound when no down-chain consumes them"
        )
    bindings = query.bindings_dict()
    if set(bindings) != {0}:
        raise EvaluationError("the counting method implementation handles queries binding column 0")
    constant = bindings[0]

    stats.start_timer()
    domain, relations = engine_relations(program, database)
    if domain is not None:
        constant = domain.intern(constant)
    up = relations.get(shape.up_predicate) or Relation(shape.up_predicate, 2)

    seen: Set[Value] = {constant}
    carry: Set[Value] = {constant}
    while carry:
        stats.record_iteration()
        carry = {row[1] for row in algebra.semijoin(carry, up, 0, stats)} - seen
        seen |= carry
        stats.record_state(len(seen), len(seen))

    answers: Set[Tuple[Value, ...]] = set()
    exit_plans = _compile_exit_rules(shape, relations, domain)
    stats.record_plans_compiled(len(exit_plans))
    for value in seen:
        for second in _exit_seconds(exit_plans, relations, value, stats):
            answers.add((constant, second))
    if domain is not None:
        answers = {domain.decode_row(row) for row in answers}
    answers = query.select(answers)
    stats.record_produced(len(answers))
    stats.extra["carry_arity"] = 1
    stats.stop_timer()
    return QueryResult(query, answers, stats, strategy="counting-without-counts")
