"""Baseline evaluation strategies the paper compares against: magic sets and counting."""

from .counting import (
    ChainShape,
    counting_query,
    counting_scope_reason,
    counting_without_counts_query,
    detect_chain_shape,
)
from .magic import MagicRewriting, magic_query, magic_rewrite

__all__ = [
    "ChainShape",
    "MagicRewriting",
    "counting_query",
    "counting_scope_reason",
    "counting_without_counts_query",
    "detect_chain_shape",
    "magic_query",
    "magic_rewrite",
]
