"""Bounded-recursion unfolding — rewriting a bounded recursion away.

The point of detecting uniform boundedness (Theorem 3.3) is that a bounded
recursion *is not a recursion at all*: it is equivalent to the finite union
of its first ``k`` expansion strings, each of which is an ordinary
conjunctive query.  This module performs that rewrite:

1. find the boundedness witness depth ``k`` from the expansion
   (:func:`repro.core.boundedness.bounded_prefix_depth`, memoized through the
   shared containment cache);
2. take the strings with fewer than ``k`` recursive-rule applications and
   minimize the union (drop atoms foldable into the rest of their string,
   drop strings subsumed by another disjunct);
3. re-express the minimized strings as nonrecursive rules that replace the
   recursive definition.

The unfolded rules are plain Datalog, so :mod:`repro.engine.compile` can
evaluate them recursion-free — one compiled join per rule, no fixpoint — and
a ``column = constant`` selection can be pushed straight into the compiled
plans (:func:`evaluate_unfolded`), which is where the large speedups over
semi-naive iteration come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from ..cq.cache import CQCache, shared_cache
from ..cq.strings import ExpansionString
from ..datalog.atoms import Atom
from ..datalog.database import Database
from ..datalog.errors import ProgramError
from ..datalog.relation import Relation, Row, Value
from ..datalog.rules import Program, Rule
from ..datalog.terms import Variable
from ..engine.compile import PlanCache
from ..engine.instrumentation import EvaluationStats
from ..engine.query import SelectionQuery
from ..expansion.generator import expand
from ..core.boundedness import bounded_prefix_depth


@dataclass(frozen=True)
class UnfoldedDefinition:
    """A bounded recursion rewritten as a finite nonrecursive union.

    Attributes
    ----------
    predicate:
        The predicate whose recursion was unfolded.
    witness_depth:
        The boundedness witness ``k``: every string with ``k`` or more
        recursive-rule applications is contained in the union of the
        shallower strings, so the recursion equals the union of strings of
        depth ``< k``.
    strings:
        The minimized expansion strings of depth ``< k``.
    rules:
        The strings re-expressed as nonrecursive rules for ``predicate``.
    """

    predicate: str
    witness_depth: int
    strings: Tuple[ExpansionString, ...]
    rules: Tuple[Rule, ...]

    def __str__(self) -> str:
        body = "; ".join(str(rule) for rule in self.rules)
        return f"{self.predicate} unfolded at depth {self.witness_depth}: {body}"


def unfold_bounded(
    program: Program,
    predicate: str,
    max_depth: int = 8,
    cache: Optional[CQCache] = None,
) -> Optional[UnfoldedDefinition]:
    """Unfold the recursion of ``predicate`` if it is provably bounded.

    Returns ``None`` when no boundedness witness exists within ``max_depth``,
    when the definition is outside the single-linear-rule scope of the
    expansion procedure, or when the minimized strings still mention IDB
    predicates (e.g. an exit rule feeding off another recursion) — in that
    case replacing the definition by EDB-only rules would be unsound, so the
    rewrite declines to fire.
    """
    cache = cache if cache is not None else shared_cache
    try:
        depth = bounded_prefix_depth(program, predicate, max_depth, cache)
    except ProgramError:
        return None
    if depth is None:
        return None
    strings = expand(program, predicate, depth - 1)
    minimized = cache.minimize_union(strings)
    edb = program.edb_predicates()
    for string in minimized:
        if any(atom.predicate not in edb for atom in string.atoms):
            return None
    rules = tuple(
        Rule(Atom(predicate, tuple(string.distinguished)), tuple(string.atoms))
        for string in minimized
    )
    return UnfoldedDefinition(predicate, depth, tuple(minimized), rules)


def apply_unfolding(program: Program, definition: UnfoldedDefinition) -> Program:
    """Replace the rules defining ``definition.predicate`` by the unfolded rules.

    Every other predicate's rules are kept verbatim; the unfolded predicate's
    relation is unchanged (that is what the boundedness witness proves), so
    downstream rules reading it are unaffected.
    """
    kept = [rule for rule in program.rules if rule.head.predicate != definition.predicate]
    return Program(tuple(kept) + definition.rules)


#: shared across calls: the same unfolded string queried with a different
#: constant reuses its compiled plan (and the plan's generated kernels) —
#: selection constants travel through ``bindings``, never through the plan.
#: Capped because the cache outlives any one program; join orders are frozen
#: at first compile, which is harmless for the short (1–3 atom) minimized
#: strings this evaluator sees.
_plan_cache = PlanCache(max_plans=1024)


def evaluate_unfolded(
    definition: UnfoldedDefinition,
    database: Database,
    query: Optional[SelectionQuery] = None,
    stats: Optional[EvaluationStats] = None,
) -> Tuple[Set[Row], EvaluationStats]:
    """Evaluate an unfolded definition with the selection pushed into each join.

    Each minimized string compiles to one recursion-free join plan
    (:func:`repro.engine.compile.compile_rule`); a query's ``column =
    constant`` bindings become compile-time bound variables, so every plan
    probes the stored relations with the selection constants instead of
    scanning — no fixpoint, no iteration, no irrelevant tuples.  Plans are
    memoized per (string, bound-column signature) across calls, so a stream
    of selections over one definition compiles — and code-generates — each
    string once.
    """
    stats = stats if stats is not None else EvaluationStats()
    stats.start_timer()
    relations: Dict[str, Relation] = {r.name: r for r in database.relations()}
    answers: Set[Row] = set()
    for string in definition.strings:
        bindings: Dict[Variable, Value] = {}
        conflict = False
        if query is not None:
            for column, value in query.bindings:
                variable = string.distinguished[column]
                if variable in bindings and bindings[variable] != value:
                    conflict = True  # repeated head variable bound to two constants
                    break
                bindings[variable] = value
        if conflict:
            continue
        rule = Rule(Atom(definition.predicate, tuple(string.distinguished)), tuple(string.atoms))
        plan = _plan_cache.get(rule, relations, bound=tuple(bindings))
        stats.record_plans_compiled()
        answers |= plan.evaluate(relations, stats=stats, bindings=bindings or None)
    if query is not None:
        answers = query.select(answers)
    stats.stop_timer()
    return answers, stats
