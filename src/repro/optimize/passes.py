"""The pass-based program optimizer: rewrite, then evaluate.

The paper's thesis is that *detection enables optimization* — a recursion
proven uniformly bounded (Theorem 3.3) or one-sided (Theorem 3.1) can be
replaced by a dramatically cheaper evaluation.  This module is the layer
where those verdicts stop being reports and start being rewrites: a small
pipeline of passes, each of which inspects the program, optionally rewrites
it, and records what it did as :class:`Rewrite` provenance.

Passes (in their default order):

1. :class:`RedundancyRemovalPass` — drop recursively redundant atoms from
   the recursive rule (Theorem 3.3 + the [Nau89b]-style removal);
2. :class:`BoundednessPass` — decide uniform boundedness for the decidable
   subclass (structural criterion);
3. :class:`SidednessPass` — the Theorem 3.1 classification of the optimized
   recursion;
4. :class:`UnfoldingPass` — when a boundedness witness exists, replace the
   recursion by the minimized nonrecursive union of its expansion strings
   (:mod:`repro.optimize.unfold`), which the compiled engine then evaluates
   recursion-free.

Analysis and optimization share one code path: the complete detection
procedure of :func:`repro.core.pipeline.detect_one_sided` is the first three
passes run through the same :class:`Optimizer`, and the query front door
(:func:`repro.engine.query.answer`) runs the full chain.  All containment
and minimization work goes through one :class:`~repro.cq.cache.CQCache`, so
repeated homomorphism searches across passes (and across queries) are paid
for once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..cq.cache import CQCache, shared_cache
from ..datalog.errors import ProgramError
from ..datalog.rules import Program
from ..expansion.generator import expand
from ..core.boundedness import is_uniformly_bounded_structural
from ..core.classify import SidednessReport, classify
from ..core.redundancy import RedundancyRemoval, remove_recursively_redundant
from .unfold import UnfoldedDefinition, apply_unfolding, unfold_bounded

#: note attached when the definition is outside the decidable subclass
OUT_OF_SCOPE_NOTE = (
    "the definition does not consist of a single linear recursive rule; "
    "Theorem 3.2 makes the general problem undecidable, so only the "
    "structural test on the given rules is reported"
)


@dataclass
class Rewrite:
    """Provenance for one optimizer pass (did it fire, and what it did)."""

    pass_name: str
    fired: bool
    detail: str

    def __str__(self) -> str:
        status = "fired" if self.fired else "no-op"
        return f"{self.pass_name}: {status} — {self.detail}"


@dataclass
class PassContext:
    """Mutable state threaded through the passes of one optimizer run."""

    predicate: str
    program: Program
    original: Program
    cache: CQCache
    #: ``True`` when the definition is not a single linear recursion, so the
    #: Section 3 machinery does not apply and every pass becomes a no-op
    out_of_scope: bool = False
    redundancy: Optional[RedundancyRemoval] = None
    repeated_nonrecursive: Optional[bool] = None
    uniformly_bounded: Optional[bool] = None
    report: Optional[SidednessReport] = None
    one_sided: bool = False
    unfolded: Optional[UnfoldedDefinition] = None
    #: snapshot of the program just before unfolding replaced the recursion
    pre_unfold_program: Optional[Program] = None
    notes: List[str] = field(default_factory=list)
    rewrites: List[Rewrite] = field(default_factory=list)

    def record(self, pass_name: str, fired: bool, detail: str) -> None:
        """Append one provenance entry."""
        self.rewrites.append(Rewrite(pass_name, fired, detail))


class OptimizationPass:
    """Interface for one optimizer pass."""

    name = "pass"

    def run(self, ctx: PassContext) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class RedundancyRemovalPass(OptimizationPass):
    """Remove recursively redundant atoms from the recursive rule.

    With ``verify=True`` the rewrite is cross-checked by comparing the
    expansion prefixes of the original and optimized programs (containment
    both ways, through the shared cache); a failed check raises
    :class:`~repro.datalog.errors.ProgramError` instead of silently keeping
    an unsound rewrite.
    """

    name = "redundancy-removal"

    def __init__(self, verify: bool = False, verify_depth: int = 2) -> None:
        self.verify = verify
        self.verify_depth = verify_depth

    def run(self, ctx: PassContext) -> None:
        if ctx.out_of_scope:
            return
        removal = remove_recursively_redundant(ctx.program, ctx.predicate)
        ctx.redundancy = removal
        if removal.changed:
            if self.verify:
                self._cross_check(ctx, removal)
            ctx.program = removal.optimized
            removed = ", ".join(str(atom) for atom in removal.removed)
            ctx.notes.append(f"removed recursively redundant atoms: {removed}")
            ctx.record(self.name, True, f"dropped {removed} from the recursive rule")
        else:
            ctx.notes.append("no recursively redundant atoms removed")
            ctx.record(self.name, False, "no recursively redundant atoms")

    def _cross_check(self, ctx: PassContext, removal: RedundancyRemoval) -> None:
        """Expansion prefixes of original and optimized must be equivalent."""
        before = expand(ctx.program, ctx.predicate, self.verify_depth)
        after = expand(removal.optimized, ctx.predicate, self.verify_depth)
        cache = ctx.cache
        if not (cache.union_contained_in(before, after) and cache.union_contained_in(after, before)):
            raise ProgramError(
                f"redundancy removal for {ctx.predicate} failed its expansion cross-check"
            )


class BoundednessPass(OptimizationPass):
    """Decide uniform boundedness on the decidable subclass (Theorem 3.3)."""

    name = "boundedness-detection"

    def run(self, ctx: PassContext) -> None:
        if ctx.out_of_scope:
            return
        rule = ctx.program.linear_recursive_rule(ctx.predicate)
        repeated = rule.has_repeated_nonrecursive_predicates()
        ctx.repeated_nonrecursive = repeated
        if repeated:
            ctx.notes.append(
                "the recursive rule repeats a nonrecursive predicate, so the Theorem 3.4 "
                "completeness guarantee does not apply"
            )
        uniformly_bounded: Optional[bool] = None
        if not repeated:
            try:
                uniformly_bounded = is_uniformly_bounded_structural(ctx.program, ctx.predicate)
            except ProgramError:
                uniformly_bounded = None
        ctx.uniformly_bounded = uniformly_bounded
        if uniformly_bounded:
            ctx.notes.append(
                "the optimized recursion is uniformly bounded; it is equivalent to a finite "
                "union of conjunctive queries and any selection on it is cheap regardless of sidedness"
            )
            ctx.record(self.name, True, "uniformly bounded (every nonrecursive predicate is recursively redundant)")
        elif uniformly_bounded is False:
            ctx.record(self.name, False, "uniformly unbounded on the decidable subclass")
        else:
            ctx.record(self.name, False, "outside the decidable subclass; boundedness undecided")


class SidednessPass(OptimizationPass):
    """Classify the optimized recursion with the Theorem 3.1 test."""

    name = "sidedness-classification"

    def run(self, ctx: PassContext) -> None:
        if ctx.out_of_scope:
            return
        report = classify(ctx.program, ctx.predicate)
        ctx.report = report
        ctx.one_sided = report.is_one_sided
        ctx.notes.append(report.reason())
        ctx.record(self.name, report.is_one_sided, report.reason())


class UnfoldingPass(OptimizationPass):
    """Replace a provably bounded recursion by its minimized nonrecursive union.

    The witness search goes to ``max_depth`` when the structural criterion
    already proved boundedness (the witness must exist; only its depth is
    unknown) and to the cheaper ``fallback_depth`` when boundedness is
    undecided (repeated predicates, constants in rules) — pass
    ``fallback_depth=None`` to search the full ``max_depth`` in that case
    too, which is what a *forced* unfolding request does.  When the
    structural criterion proved *unboundedness* the search is skipped
    entirely — that is the detection-enables-optimization contract in the
    other direction.
    """

    name = "bounded-unfolding"

    def __init__(self, max_depth: int = 8, fallback_depth: Optional[int] = 3) -> None:
        self.max_depth = max_depth
        self.fallback_depth = max_depth if fallback_depth is None else min(fallback_depth, max_depth)

    def run(self, ctx: PassContext) -> None:
        if ctx.out_of_scope:
            ctx.record(self.name, False, "definition out of scope for the expansion procedure")
            return
        if ctx.uniformly_bounded is False:
            ctx.record(self.name, False, "provably unbounded; unfolding cannot apply")
            return
        limit = self.max_depth if ctx.uniformly_bounded else self.fallback_depth
        definition = unfold_bounded(ctx.program, ctx.predicate, limit, ctx.cache)
        if definition is None:
            ctx.record(self.name, False, f"no boundedness witness within depth {limit}")
            return
        ctx.pre_unfold_program = ctx.program
        ctx.unfolded = definition
        ctx.program = apply_unfolding(ctx.program, definition)
        ctx.notes.append(
            f"unfolded the bounded recursion into {len(definition.rules)} nonrecursive "
            f"rule(s) (witness depth {definition.witness_depth})"
        )
        ctx.record(
            self.name,
            True,
            f"witness depth {definition.witness_depth}; {len(definition.rules)} minimized string(s)",
        )


@dataclass
class OptimizationResult:
    """Everything one optimizer run decided, rewrote and recorded."""

    predicate: str
    #: the input program
    original: Program
    #: the program after redundancy removal, before any unfolding — the
    #: program the detection verdicts (sidedness, boundedness) are about
    optimized: Program
    #: the final program, with any unfolding applied — the one to evaluate
    program: Program
    out_of_scope: bool
    redundancy: Optional[RedundancyRemoval]
    repeated_nonrecursive: Optional[bool]
    uniformly_bounded: Optional[bool]
    report: Optional[SidednessReport]
    one_sided: bool
    unfolded: Optional[UnfoldedDefinition]
    notes: List[str]
    rewrites: List[Rewrite]

    def fired(self) -> List[str]:
        """Names of the passes that actually rewrote or proved something."""
        return [rewrite.pass_name for rewrite in self.rewrites if rewrite.fired]

    def describe(self) -> str:
        """One line per pass, for reports and the query front door."""
        return "\n".join(str(rewrite) for rewrite in self.rewrites)


#: the passes detect_one_sided composes (analysis only, no unfolding)
def detection_passes(verify_redundancy: bool = False) -> Tuple[OptimizationPass, ...]:
    """The Theorem 3.4 procedure as a pass chain: remove, bound, classify."""
    return (
        RedundancyRemovalPass(verify=verify_redundancy),
        BoundednessPass(),
        SidednessPass(),
    )


def default_passes(max_unfold_depth: int = 8) -> Tuple[OptimizationPass, ...]:
    """The full rewrite chain used by the query front door."""
    return detection_passes() + (UnfoldingPass(max_depth=max_unfold_depth),)


class Optimizer:
    """Run a chain of passes over one predicate's definition."""

    def __init__(
        self,
        passes: Optional[Sequence[OptimizationPass]] = None,
        cache: Optional[CQCache] = None,
    ) -> None:
        self.passes: Tuple[OptimizationPass, ...] = (
            tuple(passes) if passes is not None else default_passes()
        )
        self.cache = cache if cache is not None else shared_cache

    def run(self, program: Program, predicate: str) -> OptimizationResult:
        """Apply every pass in order and collect the result."""
        ctx = PassContext(
            predicate=predicate,
            program=program,
            original=program,
            cache=self.cache,
        )
        if not program.is_single_linear_recursion(predicate):
            ctx.out_of_scope = True
            ctx.notes.append(OUT_OF_SCOPE_NOTE)
        for optimization_pass in self.passes:
            optimization_pass.run(ctx)
        optimized = ctx.pre_unfold_program if ctx.unfolded is not None else ctx.program
        return OptimizationResult(
            predicate=predicate,
            original=program,
            optimized=optimized,
            program=ctx.program,
            out_of_scope=ctx.out_of_scope,
            redundancy=ctx.redundancy,
            repeated_nonrecursive=ctx.repeated_nonrecursive,
            uniformly_bounded=ctx.uniformly_bounded,
            report=ctx.report,
            one_sided=ctx.one_sided,
            unfolded=ctx.unfolded,
            notes=ctx.notes,
            rewrites=ctx.rewrites,
        )


def optimize_program(
    program: Program,
    predicate: str,
    cache: Optional[CQCache] = None,
    max_unfold_depth: int = 8,
) -> OptimizationResult:
    """Convenience: run the full default chain over ``predicate``."""
    return Optimizer(default_passes(max_unfold_depth), cache).run(program, predicate)
