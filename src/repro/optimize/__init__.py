"""Pass-based program optimizer: detection verdicts turned into rewrites.

See :mod:`repro.optimize.passes` for the pass framework and
:mod:`repro.optimize.unfold` for bounded-recursion unfolding.
"""

from .passes import (
    BoundednessPass,
    OptimizationPass,
    OptimizationResult,
    Optimizer,
    PassContext,
    RedundancyRemovalPass,
    Rewrite,
    SidednessPass,
    UnfoldingPass,
    default_passes,
    detection_passes,
    optimize_program,
)
from .unfold import (
    UnfoldedDefinition,
    apply_unfolding,
    evaluate_unfolded,
    unfold_bounded,
)

__all__ = [
    "BoundednessPass",
    "OptimizationPass",
    "OptimizationResult",
    "Optimizer",
    "PassContext",
    "RedundancyRemovalPass",
    "Rewrite",
    "SidednessPass",
    "UnfoldedDefinition",
    "UnfoldingPass",
    "apply_unfolding",
    "default_passes",
    "detection_passes",
    "evaluate_unfolded",
    "optimize_program",
    "unfold_bounded",
]
