"""The on-disk wire format: tagged values, struct-packed rows, CRC frames.

Everything the store writes — WAL records and snapshot files alike — is built
from three layers:

* **values** — the persisted domain dictionary entries.  Stored values are
  arbitrary hashable Python objects; the common scalar types (int, float,
  str, bytes, bool, ``None``) get compact tagged encodings and anything else
  falls back to a pickled blob, so the dictionary never refuses a value the
  in-memory :class:`~repro.engine.domain.Domain` accepted;
* **rows** — tuple payloads are *not* stored as values: every row is interned
  against the store's persistent domain first and written as struct-packed
  little-endian ``int64`` codes (``arity`` codes per row), the same dense-int
  representation the evaluation engine runs on;
* **frames** — each record is framed as ``uint32 length | uint32 crc32 |
  payload``.  A torn tail (a crash mid-append) or a flipped bit fails the
  length or checksum test and cleanly ends replay instead of feeding garbage
  downstream.

Readers and writers are tiny offset-cursor helpers over ``bytes`` — the
record sizes here (one coalesced flush batch, one snapshot) comfortably fit
in memory, so no streaming decode is needed.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Iterator, List, Sequence, Tuple

from ..datalog.relation import Row, Value
from .errors import StorageError

#: file magic for both snapshot files and WAL segment headers
MAGIC = b"RPLG"
#: bump on incompatible layout changes; readers reject unknown versions
FORMAT_VERSION = 1

#: WAL record kinds
RECORD_SEGMENT_HEADER = 0
RECORD_BATCH = 1

#: op codes inside a batch record
OP_DELETE = 0
OP_INSERT = 1

_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

# value tags (one byte each)
_TAG_INT = b"i"  # fits int64: 8-byte struct
_TAG_BIGINT = b"n"  # arbitrary precision: utf-8 decimal text
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_NONE = b"N"
_TAG_PICKLE = b"p"


class Writer:
    """A growable little-endian buffer with the layer's primitive fields."""

    __slots__ = ("_buffer",)

    def __init__(self) -> None:
        self._buffer = bytearray()

    def u8(self, value: int) -> None:
        self._buffer += _U8.pack(value)

    def u32(self, value: int) -> None:
        self._buffer += _U32.pack(value)

    def i64(self, value: int) -> None:
        self._buffer += _I64.pack(value)

    def blob(self, data: bytes) -> None:
        """Length-prefixed byte string."""
        self._buffer += _U32.pack(len(data))
        self._buffer += data

    def text(self, value: str) -> None:
        self.blob(value.encode("utf-8"))

    def value(self, value: Value) -> None:
        """One tagged dictionary value (see module docstring for the tags)."""
        # bool before int: bool is an int subclass and must round-trip as bool
        if value is True:
            self._buffer += _TAG_TRUE
        elif value is False:
            self._buffer += _TAG_FALSE
        elif value is None:
            self._buffer += _TAG_NONE
        elif type(value) is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                self._buffer += _TAG_INT
                self._buffer += _I64.pack(value)
            else:
                self._buffer += _TAG_BIGINT
                self.blob(str(value).encode("ascii"))
        elif type(value) is float:
            self._buffer += _TAG_FLOAT
            self._buffer += _F64.pack(value)
        elif type(value) is str:
            self._buffer += _TAG_STR
            self.text(value)
        elif type(value) is bytes:
            self._buffer += _TAG_BYTES
            self.blob(value)
        else:
            self._buffer += _TAG_PICKLE
            self.blob(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def values(self, values: Sequence[Value]) -> None:
        self.u32(len(values))
        for value in values:
            self.value(value)

    def rows(self, arity: int, count: int, packed: bytes) -> None:
        """A pre-packed code matrix (``count`` rows of ``arity`` int64s)."""
        if len(packed) != count * arity * 8:
            raise StorageError(
                f"packed rows have {len(packed)} bytes, expected {count}×{arity}×8"
            )
        self.u32(count)
        self._buffer += packed

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class Reader:
    """An offset cursor over one record payload, mirroring :class:`Writer`."""

    __slots__ = ("_data", "_offset")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._offset = 0

    def _take(self, size: int) -> bytes:
        end = self._offset + size
        if end > len(self._data):
            raise StorageError("record payload is truncated")
        chunk = self._data[self._offset:end]
        self._offset = end
        return chunk

    def u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def blob(self) -> bytes:
        return self._take(self.u32())

    def text(self) -> str:
        return self.blob().decode("utf-8")

    def value(self) -> Value:
        tag = self._take(1)
        if tag == _TAG_TRUE:
            return True
        if tag == _TAG_FALSE:
            return False
        if tag == _TAG_NONE:
            return None
        if tag == _TAG_INT:
            return _I64.unpack(self._take(8))[0]
        if tag == _TAG_BIGINT:
            return int(self.blob().decode("ascii"))
        if tag == _TAG_FLOAT:
            return _F64.unpack(self._take(8))[0]
        if tag == _TAG_STR:
            return self.text()
        if tag == _TAG_BYTES:
            return self.blob()
        if tag == _TAG_PICKLE:
            return pickle.loads(self.blob())
        raise StorageError(f"unknown value tag {tag!r}")

    def values(self) -> List[Value]:
        return [self.value() for _ in range(self.u32())]

    def rows(self, arity: int) -> Tuple[int, bytes]:
        """``(count, packed)`` for a code matrix of the given arity."""
        count = self.u32()
        return count, self._take(count * arity * 8)

    def done(self) -> bool:
        return self._offset == len(self._data)


# ----------------------------------------------------------------------
# record framing
# ----------------------------------------------------------------------
def frame(payload: bytes) -> bytes:
    """``payload`` wrapped in the ``length | crc32 | payload`` frame."""
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def split_frames(data: bytes) -> Tuple[List[bytes], bool]:
    """``(payloads, clean)`` — every intact framed payload, stopping at a tear.

    A truncated header, a payload shorter than its declared length, or a
    checksum mismatch all end the scan: that is exactly the state an
    interrupted append (or a dying disk) leaves behind, and everything
    *before* the tear was fsynced as a prefix, so the clean stop is the
    recovery semantics — replay the durable prefix, drop the torn tail.
    ``clean`` is ``True`` when the data ends exactly on a frame boundary
    (no tear), which replay uses to stop crossing into later segments.
    """
    payloads: List[bytes] = []
    offset = 0
    total = len(data)
    while offset + _FRAME.size <= total:
        length, crc = _FRAME.unpack_from(data, offset)
        start = offset + _FRAME.size
        end = start + length
        if end > total:
            return payloads, False
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            return payloads, False
        payloads.append(payload)
        offset = end
    return payloads, offset == total


def iter_frames(data: bytes) -> Iterator[bytes]:
    """Yield every intact framed payload in ``data`` (see :func:`split_frames`)."""
    payloads, _clean = split_frames(data)
    return iter(payloads)
