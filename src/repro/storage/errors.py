"""Exceptions of the durable storage layer.

All of them derive from :class:`~repro.datalog.errors.ReproError` so embedding
applications keep their single catch-all, and from a storage-specific base so
the serving layer can tell "the disk failed" apart from "the write was bad"
(an arity error fails one batch; a storage error poisons the service's write
path until a recovery reopens the store).
"""

from __future__ import annotations

from ..datalog.errors import ReproError


class StorageError(ReproError):
    """Raised when the durable store cannot read or write its on-disk state."""


class CorruptSnapshotError(StorageError):
    """Raised when no snapshot file in the store directory passes its checksum."""


class SimulatedCrash(StorageError):
    """Raised by the store's crash-injection hooks (testing only).

    The crash/restore differential family plants these at seeded append
    ordinals to model a process kill *between* the WAL append and the
    snapshot publication (or just before the append).  A store that raised
    one refuses all further operations, exactly like a dead disk — the only
    way forward is :meth:`repro.service.DatalogService.open` on the path.
    """
