"""Exceptions of the durable storage layer.

All of them derive from :class:`~repro.datalog.errors.ReproError` so embedding
applications keep their single catch-all, and from a storage-specific base so
the serving layer can tell "the disk failed" apart from "the write was bad"
(an arity error fails one batch; a storage error poisons the service's write
path until a recovery reopens the store).
"""

from __future__ import annotations

from typing import Optional

from ..datalog.errors import ReproError


class StorageError(ReproError):
    """Raised when the durable store cannot read or write its on-disk state."""


class CorruptSnapshotError(StorageError):
    """Raised when no snapshot file in the store directory passes its checksum."""


class SimulatedCrash(StorageError):
    """Raised by the store's crash-injection hooks (testing only).

    The crash/restore differential family plants these at seeded append
    ordinals to model a process kill *between* the WAL append and the
    snapshot publication (or just before the append).  A store that raised
    one refuses all further operations, exactly like a dead disk — the only
    way forward is :meth:`repro.service.DatalogService.open` on the path.
    :func:`is_transient` therefore never classifies one as retryable.
    """


#: exception types that model transient environment failures: a full or
#: flaky disk (``OSError`` — ``ConnectionError`` is a subclass) or an
#: operation that merely ran out of time
_TRANSIENT_TYPES = (OSError, TimeoutError)


def is_transient(error: Optional[BaseException]) -> bool:
    """Whether ``error`` models a failure that retrying can plausibly fix.

    Walks the ``__cause__``/``__context__`` chain, so a
    ``StorageError("WAL append failed") from OSError(ENOSPC)`` classifies by
    the ``OSError`` underneath.  :class:`SimulatedCrash` is *never* transient
    (it models process death: the crash/restore contract requires the store
    to stay dead), and neither is anything that is not an OS-level failure —
    a ``RuntimeError`` or corrupt-data error signals a bug, not weather.
    """
    seen = set()
    while error is not None and id(error) not in seen:
        seen.add(id(error))
        if isinstance(error, SimulatedCrash):
            return False
        if isinstance(error, _TRANSIENT_TYPES):
            return True
        error = error.__cause__ or error.__context__
    return False
