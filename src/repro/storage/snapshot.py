"""Compacted snapshots: one file holding a whole epoch's frozen EDB.

A snapshot file ``snapshot-<epoch>.snap`` contains everything recovery needs
to restart without the WAL prefix it covers: the epoch, the program text
(so :meth:`repro.service.DatalogService.open` needs no arguments beyond the
path), the **full** domain dictionary, and every stored EDB relation as
struct-packed int rows.  Only the EDB is persisted — materialized views are
a pure function of it and are rebuilt by the recovery ``Session``.

Writes follow the fsync-before-atomic-rename discipline proven in the
benchmark harness (``benchmarks/helpers.py``): the payload goes to a scratch
file, is fsynced, and lands under its final name via ``os.replace``; the
directory is fsynced after the rename and again after older snapshots are
unlinked.  A crash at any point leaves either the old snapshot or the new
one — never a half-written file under the live name — and the loader skips
files that fail their checksum, falling back to the newest intact snapshot.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from ..datalog.relation import Value
from ..faults import fire as fire_fault
from .errors import CorruptSnapshotError, StorageError
from .format import FORMAT_VERSION, MAGIC, Reader, Writer, frame, split_frames

# the padded width is a formatting nicety; accept wider epochs so a 17-digit
# epoch's snapshot is still found (and sorts numerically, not lexically)
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{16,})\.snap$")

#: ``(name, arity, row_count, packed_codes)`` — one serialized relation
RelationPayload = Tuple[str, int, int, bytes]


@dataclass(frozen=True)
class SnapshotData:
    """One parsed snapshot file."""

    epoch: int
    program_text: str
    values: List[Value]
    relations: List[RelationPayload]


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def snapshot_files(directory: Path) -> List[Path]:
    """Snapshot files under ``directory``, oldest first (numeric epoch order)."""
    found = []
    for path in directory.iterdir():
        match = _SNAPSHOT_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), path))
    found.sort()
    return [path for _epoch, path in found]


def write_snapshot(
    directory: Path,
    *,
    epoch: int,
    program_text: str,
    values: Sequence[Value],
    relations: Sequence[RelationPayload],
    fsync: bool = True,
) -> Path:
    """Atomically publish a snapshot file; returns its path.

    Older snapshot files are removed only after the new one is durable, so
    every instant has at least one intact snapshot on disk.
    """
    writer = Writer()
    writer.blob(MAGIC)
    writer.u8(FORMAT_VERSION)
    writer.i64(epoch)
    writer.text(program_text)
    writer.values(values)
    writer.u32(len(relations))
    for name, arity, count, packed in relations:
        writer.text(name)
        writer.u32(arity)
        writer.rows(arity, count, packed)

    path = directory / f"snapshot-{epoch:016d}.snap"
    scratch = directory / f"snapshot-{epoch:016d}.tmp{os.getpid()}"
    older = [existing for existing in snapshot_files(directory) if existing != path]
    try:
        with open(scratch, "wb") as handle:
            # fires inside the scratch-write try: an injected failure leaves
            # at most a dangling scratch file (cleaned up below) and never
            # touches the live snapshot — same guarantee as a real crash
            fire_fault("snapshot.write")
            handle.write(frame(writer.getvalue()))
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(scratch, path)
        if fsync:
            _fsync_directory(directory)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    for existing in older:
        existing.unlink(missing_ok=True)
    if older and fsync:
        _fsync_directory(directory)
    return path


def _parse(data: bytes, path: Path) -> SnapshotData:
    payloads, _clean = split_frames(data)
    if len(payloads) != 1:
        raise CorruptSnapshotError(f"snapshot {path.name} failed its checksum")
    reader = Reader(payloads[0])
    if reader.blob() != MAGIC:
        raise StorageError(f"snapshot {path.name} has the wrong magic")
    version = reader.u8()
    if version != FORMAT_VERSION:
        raise StorageError(
            f"snapshot {path.name} has format version {version}, expected {FORMAT_VERSION}"
        )
    epoch = reader.i64()
    program_text = reader.text()
    values = reader.values()
    relations: List[RelationPayload] = []
    for _ in range(reader.u32()):
        name = reader.text()
        arity = reader.u32()
        count, packed = reader.rows(arity)
        relations.append((name, arity, count, packed))
    return SnapshotData(epoch, program_text, values, relations)


def load_latest_snapshot(directory: Path) -> Optional[SnapshotData]:
    """The newest intact snapshot, or ``None`` when the directory has none.

    Files that fail their checksum are skipped in favor of older intact ones
    (a crash can only tear the file being *written*, and the writer keeps the
    previous snapshot until the new one is durable); if snapshot files exist
    but none parses, recovery must not silently restart empty — that raises
    :class:`CorruptSnapshotError`.
    """
    files = snapshot_files(directory)
    if not files:
        return None
    for path in reversed(files):
        try:
            return _parse(path.read_bytes(), path)
        except CorruptSnapshotError:
            continue
    raise CorruptSnapshotError(
        f"no snapshot under {directory} passes its checksum ({len(files)} file(s) tried)"
    )
