"""The append-only write-ahead log: one record per coalesced flush batch.

The serving layer's :class:`~repro.service.queue.WriteQueue` already produces
the perfect log unit — one net-effect, epoch-stamped batch per maintenance
round — so the WAL stores exactly that: a framed record per flushed batch
(see :mod:`repro.storage.format` for the frame and payload layout).

The log is a sequence of **segment files** ``wal-<epoch>-<seq>.log``: a new
segment starts whenever a store attaches (never append after a possibly-torn
tail) and whenever a compaction resets the log.  Segment order is the
numeric ``(epoch, seq)`` order of the parsed filenames — start epochs are
monotone across segments and the sequence number breaks ties between process
lives — and replay walks them oldest-first, yielding every intact record
payload per segment.  A torn tail in a *sealed* (non-newest) segment is the
remains of an append a crash cut mid-write: that record was never
acknowledged (fsync-before-acknowledge), and every later segment was opened
by a recovery that had already dropped it, so replay skips the tear and
continues into the later segments — their records were acknowledged as
durable and must replay.  Only a tear in the newest segment ends the log
(nothing follows it anyway).

Durability discipline: an ``append`` writes the frame, flushes Python's
buffer, and (when the store is configured for durability) fsyncs the file
*before returning* — the caller only acknowledges client writes after that
return, which is the "log segment append + fsync before ticket resolve"
contract.  Segment creation and deletion fsync the directory so the files
themselves survive a crash.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Callable, Iterator, List, Optional

from ..faults import fire as fire_fault
from .errors import StorageError
from .format import (
    FORMAT_VERSION,
    MAGIC,
    RECORD_SEGMENT_HEADER,
    Reader,
    Writer,
    frame,
    split_frames,
)

# fixed-width fields are a formatting nicety; the pattern and ordering accept
# wider values so a sequence past 999999 (or a 17-digit epoch) still replays
_SEGMENT_PATTERN = re.compile(r"^wal-(\d{16,})-(\d{6,})\.log$")


def _fsync_directory(directory: Path) -> None:
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def segment_files(directory: Path) -> List[Path]:
    """The WAL segment files under ``directory``, in replay order.

    Ordered by the numeric ``(epoch, seq)`` parsed from the name, not by the
    raw string — names wider than the padded formatting widths still sort
    after their narrower predecessors.
    """
    found = []
    for path in directory.iterdir():
        match = _SEGMENT_PATTERN.match(path.name)
        if match:
            found.append((int(match.group(1)), int(match.group(2)), path))
    found.sort()
    return [path for _epoch, _seq, path in found]


def _header_payload(epoch: int) -> bytes:
    writer = Writer()
    writer.u8(RECORD_SEGMENT_HEADER)
    writer.blob(MAGIC)
    writer.u8(FORMAT_VERSION)
    writer.i64(epoch)
    return writer.getvalue()


def _check_header(payload: bytes, path: Path) -> None:
    reader = Reader(payload)
    kind = reader.u8()
    if kind != RECORD_SEGMENT_HEADER:
        raise StorageError(f"segment {path.name} does not start with a header record")
    if reader.blob() != MAGIC:
        raise StorageError(f"segment {path.name} has the wrong magic")
    version = reader.u8()
    if version != FORMAT_VERSION:
        raise StorageError(
            f"segment {path.name} has format version {version}, expected {FORMAT_VERSION}"
        )


class WriteAheadLog:
    """Segmented append-only log with fsync-before-acknowledge appends."""

    def __init__(self, directory: Path, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.fsync = fsync
        self._handle = None
        self._active: Optional[Path] = None
        #: observability hook: called with each append-path fsync's duration
        #: in seconds (installed by ``DurableStore.instrument``; ``None`` —
        #: the default — costs one attribute check per append)
        self.observe_fsync: Optional[Callable[[float], None]] = None

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def _next_sequence(self) -> int:
        highest = 0
        for path in segment_files(self.directory):
            match = _SEGMENT_PATTERN.match(path.name)
            if match:
                highest = max(highest, int(match.group(2)))
        return highest + 1

    def start_segment(self, epoch: int) -> Path:
        """Open a fresh segment for appends (leaving older segments sealed)."""
        fire_fault("wal.start_segment")
        if self._handle is not None:
            self._handle.close()
        name = f"wal-{epoch:016d}-{self._next_sequence():06d}.log"
        path = self.directory / name
        self._handle = open(path, "xb")
        self._active = path
        self._handle.write(frame(_header_payload(epoch)))
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
            _fsync_directory(self.directory)
        return path

    def append(self, payload: bytes) -> int:
        """Durably append one framed record; returns the bytes written.

        When the log is configured with ``fsync`` the record is on disk when
        this returns — the caller may acknowledge the batch.
        """
        if self._handle is None:
            raise StorageError("write-ahead log has no open segment")
        data = frame(payload)
        torn = fire_fault("wal.append")
        if torn is not None:
            # a torn append: part of the frame reaches the file (recovery's
            # torn-tail handling must cope with it), then the write fails
            self._handle.write(data[: max(1, int(len(data) * torn.fraction))])
            self._handle.flush()
            raise torn.make_error()
        self._handle.write(data)
        self._handle.flush()
        if self.fsync:
            # fires *after* the frame is durably buffered: a failure here
            # models "the write succeeded but fsync did not" — the record may
            # or may not be on disk, and the caller must treat it as absent
            fire_fault("wal.fsync")
            if self.observe_fsync is not None:
                started = time.perf_counter()
                os.fsync(self._handle.fileno())
                self.observe_fsync(time.perf_counter() - started)
            else:
                os.fsync(self._handle.fileno())
        return len(data)

    def reset(self, epoch: int) -> None:
        """Drop every sealed segment and continue in a fresh one.

        Called by compaction *after* the covering snapshot is durable: the
        records being deleted are all re-derivable from that snapshot.
        """
        old = [path for path in segment_files(self.directory) if path != self._active]
        active = self._active
        self.start_segment(epoch)
        if active is not None:
            old.append(active)
        for path in old:
            path.unlink(missing_ok=True)
        if self.fsync:
            _fsync_directory(self.directory)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            self._active = None

    # ------------------------------------------------------------------
    # introspection (compaction-pressure observability)
    # ------------------------------------------------------------------
    def segment_count(self) -> int:
        """How many segment files the directory currently holds."""
        return len(segment_files(self.directory))

    def active_segment_bytes(self) -> int:
        """Bytes written to the active segment so far (0 with none open)."""
        if self._handle is None:
            return 0
        return self._handle.tell()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def replay(self) -> Iterator[bytes]:
        """Every intact batch payload across all segments, oldest first.

        Within a segment, a torn or corrupt frame ends that segment's scan
        (frames are sequential; nothing after a tear is reachable).  Replay
        then *continues* into the next segment: a tear at a sealed segment's
        tail is an append the crash cut mid-write — never acknowledged, and
        already dropped by the recovery that opened the next segment — so
        the later segments' records sit on top of exactly the prefix replay
        just yielded, and they were acknowledged as durable.  Stopping at
        the tear instead would silently lose them.  A tear in the newest
        segment is the ordinary torn tail and simply ends the log.  Header
        records are validated and skipped.
        """
        for path in segment_files(self.directory):
            payloads, _clean = split_frames(path.read_bytes())
            if payloads:
                _check_header(payloads[0], path)
            for payload in payloads[1:]:
                yield payload
