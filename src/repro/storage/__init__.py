"""Durable persistence: write-ahead log + compacted snapshots.

The storage layer makes the serving layer's epochs durable.  Each coalesced
flush batch becomes one CRC-framed WAL record (appended and fsynced before
the service publishes the epoch or resolves any ticket), and a periodic
compaction writes a covering snapshot — full domain dictionary, program
text, struct-packed EDB relations — then resets the log.  Recovery is
"load latest snapshot, replay WAL, rebuild views incrementally":
:meth:`~repro.service.DatalogService.open` drives it end to end.
"""

from .errors import CorruptSnapshotError, SimulatedCrash, StorageError, is_transient
from .format import FORMAT_VERSION, MAGIC, frame, iter_frames, split_frames
from .snapshot import (
    SnapshotData,
    load_latest_snapshot,
    snapshot_files,
    write_snapshot,
)
from .store import (
    DurableStore,
    RecoveredState,
    StorageConfig,
    StorageStats,
)
from .wal import WriteAheadLog, segment_files

__all__ = [
    "CorruptSnapshotError",
    "DurableStore",
    "FORMAT_VERSION",
    "MAGIC",
    "RecoveredState",
    "SimulatedCrash",
    "SnapshotData",
    "StorageConfig",
    "StorageError",
    "StorageStats",
    "WriteAheadLog",
    "frame",
    "iter_frames",
    "load_latest_snapshot",
    "segment_files",
    "is_transient",
    "snapshot_files",
    "split_frames",
    "write_snapshot",
]
