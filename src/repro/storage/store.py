"""``DurableStore`` — snapshot + WAL orchestration for one service directory.

One store owns one directory and gives the serving layer three verbs:

* :meth:`DurableStore.recover` — load the newest intact snapshot, replay the
  WAL records past its epoch, and hand back the reconstructed EDB + epoch +
  program text ("load latest snapshot, replay WAL; views are rebuilt from
  the recovered EDB");
* :meth:`DurableStore.log_batch` — durably append one coalesced flush batch
  (the ops actually applied, as interned int rows plus the dictionary
  entries the batch introduced) *before* the service publishes the epoch or
  resolves any ticket;
* :meth:`DurableStore.compact` — write a covering snapshot and reset the WAL,
  bounding both disk usage and recovery time.

Replay is **idempotent** by construction: a batch's net-effect delete and
insert sets fix each touched row's presence regardless of the starting
state, and dictionary entries carry their absolute first code, so replaying
any durable prefix again (or replaying records a newer snapshot already
covers) changes nothing.  The epoch guard in :meth:`replay_into` skips
records a snapshot already covers; the crash-injection hooks
(``crash_before_append`` / ``crash_after_append``) let the differential
harness kill the store at seeded append ordinals.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..datalog.database import Database
from ..datalog.relation import Relation, Row
from ..engine.domain import Domain
from ..engine.packing import pack_rows
from ..obs.metrics import NullRegistry
from ..obs.trace import NullTracer
from ..faults import fire as fire_fault
from .errors import SimulatedCrash, StorageError, is_transient
from .format import OP_DELETE, OP_INSERT, RECORD_BATCH, Reader, Writer
from .snapshot import load_latest_snapshot, write_snapshot
from .wal import WriteAheadLog, segment_files

#: one applied operation: ``(op, relation name, rows)`` with op in
#: ``("delete", "insert")`` — the order-preserving unit ``log_batch`` records
AppliedOp = Tuple[str, str, Sequence[Row]]


@dataclass(frozen=True)
class StorageConfig:
    """Durability knobs.

    ``fsync`` turns the fsync-before-acknowledge discipline on (tests and
    benchmarks that only simulate crashes of the *process* may turn it off —
    buffered writes still reach the file before any reopen).
    ``snapshot_interval`` is how many WAL records may accumulate before the
    next flush triggers a compaction.
    """

    fsync: bool = True
    snapshot_interval: int = 64

    def __post_init__(self) -> None:
        if self.snapshot_interval < 1:
            raise ValueError("StorageConfig.snapshot_interval must be at least 1")


@dataclass
class StorageStats:
    """Pinned storage counters, in the ``ServiceStats`` mold."""

    #: WAL records durably appended (one per logged flush batch)
    records_appended: int = 0
    #: framed bytes those appends wrote
    bytes_appended: int = 0
    #: rows carried by the appended records (deletes + inserts)
    rows_logged: int = 0
    #: snapshot compactions performed
    compactions: int = 0
    #: WAL records applied by the last ``recover``/``replay_into``
    records_replayed: int = 0
    #: WAL segment files currently on disk (compaction pressure, gauge-like:
    #: refreshed whenever the store touches the log)
    wal_segments: int = 0
    #: bytes written to the active segment so far (ditto)
    active_segment_bytes: int = 0
    #: successful :meth:`DurableStore.revive` calls (transient-failure recoveries)
    revivals: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "records_appended": self.records_appended,
            "bytes_appended": self.bytes_appended,
            "rows_logged": self.rows_logged,
            "compactions": self.compactions,
            "records_replayed": self.records_replayed,
            "wal_segments": self.wal_segments,
            "active_segment_bytes": self.active_segment_bytes,
            "revivals": self.revivals,
        }


@dataclass
class RecoveredState:
    """What :meth:`DurableStore.recover` reconstructs."""

    database: Database
    epoch: int
    program_text: str
    snapshot_epoch: int
    records_replayed: int = 0


@dataclass
class _BatchRecord:
    """One parsed WAL batch payload."""

    epoch_after: int
    first_code: int
    new_values: List[object]
    ops: List[Tuple[int, str, int, int, bytes]] = field(repr=False)


class DurableStore:
    """Snapshot + WAL persistence for one :class:`DatalogService`."""

    def __init__(self, path, config: Optional[StorageConfig] = None) -> None:
        self.directory = Path(path)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config or StorageConfig()
        #: the persistent dictionary: every value the store ever wrote
        self.domain = Domain()
        self.wal = WriteAheadLog(self.directory, fsync=self.config.fsync)
        self.stats = StorageStats()
        self._attached = False
        self._program_text: Optional[str] = None
        self._records_since_compact = 0
        self._failure: Optional[BaseException] = None
        #: how much of ``domain`` is covered by durable records/snapshots; a
        #: *failed* append leaves its interned values below this watermark
        #: unadvanced, so the revived retry record carries them again — the
        #: torn record that was supposed to define them is gone from replay
        self._durable_values = 0
        #: crash-injection hooks (testing): 1-based append ordinal to die at
        self.crash_before_append: Optional[int] = None
        self.crash_after_append: Optional[int] = None
        self._append_attempts = 0
        # observability defaults to the free no-op pair; the serving layer
        # swaps in its real registry/tracer via ``instrument``
        self.instrument(NullRegistry(), NullTracer())

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def instrument(self, registry, tracer=None) -> None:
        """Install ``repro_storage_*`` metrics and a tracer on this store.

        Latency histograms (append / fsync / compaction) record inline; the
        pinned :class:`StorageStats` counters are mirrored at scrape time by
        a registry collector, so the exposition always agrees with
        ``stats.as_dict()``.  Passing a :class:`~repro.obs.NullRegistry`
        (the construction default) makes every instrument a shared no-op.

        Idempotent per registry: re-instrumenting against the registry that
        is already installed only refreshes the tracer (the serving layer
        instruments once before recovery — so recovery spans are traced —
        and again when it wires the rest of its metrics).
        """
        self._tracer = tracer if tracer is not None else NullTracer()
        if getattr(self, "_registry", None) is registry:
            return
        self._registry = registry
        self._append_seconds = registry.histogram(
            "repro_storage_append_seconds",
            "WAL append latency (frame write + flush + fsync), seconds.",
        )
        self._compaction_seconds = registry.histogram(
            "repro_storage_compaction_seconds",
            "Snapshot compaction latency (covering snapshot + WAL reset), seconds.",
        )
        fsync_seconds = registry.histogram(
            "repro_storage_fsync_seconds",
            "Append-path fsync latency, seconds.",
        )
        self.wal.observe_fsync = (
            None if getattr(registry, "null", False) else fsync_seconds.observe
        )
        self._stat_counters = {
            key: registry.counter(
                f"repro_storage_{key}_total",
                f"Total {key.replace('_', ' ')} (see StorageStats.{key}).",
            )
            for key in ("records_appended", "bytes_appended", "rows_logged", "compactions")
        }
        self._stat_gauges = {
            key: registry.gauge(
                f"repro_storage_{key}",
                f"Current {key.replace('_', ' ')} (see StorageStats.{key}).",
            )
            for key in ("records_replayed", "wal_segments", "active_segment_bytes")
        }
        registry.register_collector(self._collect_metrics)

    def _collect_metrics(self) -> None:
        snapshot = self.stats.as_dict()
        for key, counter in self._stat_counters.items():
            counter.set_total(snapshot[key])
        for key, gauge in self._stat_gauges.items():
            gauge.set(snapshot[key])

    def _refresh_wal_stats(self, *, scan: bool = False) -> None:
        """Keep the compaction-pressure fields current.

        ``scan`` re-counts segment files (directory I/O — only worth it when
        segments were created or deleted); the active-segment size is a
        plain file-position read and refreshes every time.
        """
        if scan:
            self.stats.wal_segments = self.wal.segment_count()
        self.stats.active_segment_bytes = self.wal.active_segment_bytes()

    # ------------------------------------------------------------------
    # state probes
    # ------------------------------------------------------------------
    def has_state(self) -> bool:
        """``True`` when the directory holds a snapshot or WAL segments."""
        from .snapshot import snapshot_files

        return bool(snapshot_files(self.directory)) or bool(
            segment_files(self.directory)
        )

    @property
    def attached(self) -> bool:
        return self._attached

    @property
    def failure(self) -> Optional[BaseException]:
        """The exception that killed the store, or ``None`` while it lives."""
        return self._failure

    def _ensure_alive(self) -> None:
        if self._failure is not None:
            raise StorageError(
                f"store {self.directory} is dead after: {self._failure}"
            ) from self._failure

    def _die(self, exc: BaseException) -> None:
        self._failure = exc
        raise exc

    def revive(self, epoch: int) -> None:
        """Clear a *transient* failure and reopen the log in a fresh segment.

        The graceful-degradation counterpart of :meth:`_die`: after an
        ``ENOSPC``/``EIO``-style append failure the file handle's position
        (and possibly a torn frame) is untrusted, so appends must never
        continue in the old segment — a fresh segment restores the "never
        append after a possibly-torn tail" invariant, and replay's epoch
        guard makes any duplicate of the failed record harmless.  Raises
        ``StorageError`` when the failure is not transient (a
        :class:`SimulatedCrash` or a logic error keeps the store dead) or
        when the disk is still refusing writes.  A no-op on a live store.
        """
        if not self._attached:
            raise StorageError("store is not attached to a service")
        failure = self._failure
        if failure is None:
            return
        if not is_transient(failure):
            raise StorageError(
                f"store {self.directory} failure is not recoverable: {failure}"
            ) from failure
        self.wal.start_segment(epoch)
        self._failure = None
        self.stats.revivals += 1
        self._refresh_wal_stats(scan=True)

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def recover(self) -> Optional[RecoveredState]:
        """Load the newest snapshot and replay the WAL past its epoch.

        Returns ``None`` for a genuinely empty directory (a fresh store).  A
        WAL without any snapshot is corrupt — the store always writes a
        genesis snapshot before its first append.
        """
        snapshot = load_latest_snapshot(self.directory)
        if snapshot is None:
            if segment_files(self.directory):
                raise StorageError(
                    f"store {self.directory} has WAL segments but no snapshot"
                )
            return None
        self.domain.extend_values(snapshot.values)
        decode = self.domain.decode
        database = Database()
        for name, arity, count, packed in snapshot.relations:
            database.add_relation(
                Relation.from_packed_rows(name, arity, count, packed, decode)
            )
        with self._tracer.span("recover", snapshot_epoch=snapshot.epoch) as span:
            epoch, replayed = self.replay_into(database, snapshot.epoch)
            span.annotate(epoch=epoch, records_replayed=replayed)
        self._program_text = snapshot.program_text
        return RecoveredState(
            database=database,
            epoch=epoch,
            program_text=snapshot.program_text,
            snapshot_epoch=snapshot.epoch,
            records_replayed=replayed,
        )

    def replay_into(self, database: Database, epoch: int) -> Tuple[int, int]:
        """Apply every WAL record past ``epoch`` to ``database``.

        Returns ``(final epoch, records applied)``.  Records at or below
        ``epoch`` (left behind by a compaction that crashed before deleting
        old segments) are skipped; their rows and dictionary entries are
        already covered by the snapshot.  Public so the differential harness
        can replay a prefix twice and assert idempotence.
        """
        replayed = 0
        for payload in self.wal.replay():
            record = self._parse_batch(payload)
            self._absorb_dictionary(record)
            if record.epoch_after <= epoch:
                continue
            self._apply_record(database, record)
            epoch = record.epoch_after
            replayed += 1
        self.stats.records_replayed = replayed
        return epoch, replayed

    def _absorb_dictionary(self, record: _BatchRecord) -> None:
        """Idempotently merge a record's dictionary entries at their codes."""
        size = len(self.domain)
        for index, value in enumerate(record.new_values):
            code = record.first_code + index
            if code < size:
                if self.domain.decode(code) != value:
                    raise StorageError(
                        f"dictionary mismatch at code {code}: "
                        f"{self.domain.decode(code)!r} on disk vs {value!r} in record"
                    )
            elif code == size:
                self.domain.extend_values((value,))
                size += 1
            else:
                raise StorageError(
                    f"dictionary gap: record assigns code {code}, next free is {size}"
                )

    def _apply_record(self, database: Database, record: _BatchRecord) -> None:
        decode = self.domain.decode
        for op, name, arity, count, packed in record.ops:
            rows = Relation.from_packed_rows(name, arity, count, packed, decode).rows()
            if op == OP_DELETE:
                if database.has_relation(name):
                    database.relation(name).discard_all(rows)
            else:
                database.declare(name, arity).add_all(rows)

    @staticmethod
    def _parse_batch(payload: bytes) -> _BatchRecord:
        reader = Reader(payload)
        kind = reader.u8()
        if kind != RECORD_BATCH:
            raise StorageError(f"unexpected WAL record kind {kind}")
        epoch_after = reader.i64()
        first_code = reader.i64()
        new_values = reader.values()
        ops: List[Tuple[int, str, int, int, bytes]] = []
        for _ in range(reader.u32()):
            op = reader.u8()
            name = reader.text()
            arity = reader.u32()
            count, packed = reader.rows(arity)
            ops.append((op, name, arity, count, packed))
        return _BatchRecord(epoch_after, first_code, new_values, ops)

    # ------------------------------------------------------------------
    # attach + genesis
    # ------------------------------------------------------------------
    def attach(
        self,
        program_text: str,
        database: Database,
        epoch: int,
        *,
        replayed_records: int = 0,
    ) -> None:
        """Bind the store to a live service and open the log for appends.

        A fresh directory gets a **genesis snapshot** of the initial EDB
        before the first append — so the program text is durable from the
        start and a WAL record never exists without a snapshot under it.
        Appends always go to a brand-new segment (never after a
        possibly-torn tail).  ``replayed_records`` seeds the compaction
        counter so a store reopened over a long WAL compacts on an early
        flush instead of replaying that backlog forever.
        """
        if self._attached:
            raise StorageError(f"store {self.directory} is already attached")
        self._ensure_alive()
        self._program_text = program_text
        if not self.has_state():
            self._write_snapshot(epoch, database.relations())
        self.wal.start_segment(epoch)
        self._records_since_compact = replayed_records
        self._durable_values = len(self.domain)
        self._attached = True
        self._refresh_wal_stats(scan=True)

    # ------------------------------------------------------------------
    # logging
    # ------------------------------------------------------------------
    def log_batch(self, epoch_after: int, ops: Sequence[AppliedOp]) -> None:
        """Durably append one flush batch; fsynced before this returns.

        ``ops`` are the operations the service actually applied, in
        application order.  The record carries the dictionary entries this
        batch interned (with their absolute first code, for idempotent
        recovery) and each op's rows as packed codes.
        """
        if not self._attached:
            raise StorageError("store is not attached to a service")
        self._ensure_alive()
        self._append_attempts += 1
        ordinal = self._append_attempts
        if self.crash_before_append == ordinal:
            self._die(SimulatedCrash(f"simulated crash before WAL append #{ordinal}"))
        first_code = self._durable_values
        intern = self.domain.intern
        writer = Writer()
        writer.u8(RECORD_BATCH)
        writer.i64(epoch_after)
        writer.i64(first_code)
        encoded: List[Tuple[int, str, int, int, bytes]] = []
        rows_logged = 0
        for op, name, rows in ops:
            arity = len(rows[0]) if rows else 0
            count, packed = _pack_rows(rows, arity, intern)
            encoded.append(
                (OP_DELETE if op == "delete" else OP_INSERT, name, arity, count, packed)
            )
            rows_logged += count
        writer.values(self.domain.export_values(first_code))
        writer.u32(len(encoded))
        for op, name, arity, count, packed in encoded:
            writer.u8(op)
            writer.text(name)
            writer.u32(arity)
            writer.rows(arity, count, packed)
        started = time.perf_counter()
        try:
            written = self.wal.append(writer.getvalue())
        except BaseException as exc:  # noqa: BLE001 - a failed append kills the store
            # chained via __cause__ (not just __context__) so retry policies
            # can classify the wrapped OSError as transient
            error = StorageError(f"WAL append failed: {exc}")
            error.__cause__ = exc
            self._die(error)
        self._append_seconds.observe(time.perf_counter() - started)
        self._durable_values = len(self.domain)
        self.stats.records_appended += 1
        self.stats.bytes_appended += written
        self.stats.rows_logged += rows_logged
        self._records_since_compact += 1
        self._refresh_wal_stats()
        if self.crash_after_append == ordinal:
            self._die(SimulatedCrash(f"simulated crash after WAL append #{ordinal}"))

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def should_compact(self) -> bool:
        """``True`` when the WAL backlog reached the configured interval."""
        return (
            self._attached
            and self._failure is None
            and self._records_since_compact >= self.config.snapshot_interval
        )

    def compact(self, epoch: int, relations: Iterable[Relation]) -> Path:
        """Write a covering snapshot, then reset the WAL to a fresh segment.

        A *transient* failure while writing the covering snapshot does not
        kill the store: the WAL is untouched and still appending, the
        previous snapshot is still intact on disk (the writer is atomic), so
        the store simply keeps operating WAL-only — ``should_compact`` stays
        true and the next flush retries.  The raised ``StorageError``
        carries the cause so callers can classify it.  A failure *after*
        the snapshot — during the WAL reset — still kills the store: the
        log's state is no longer trustworthy for appends.
        """
        if not self._attached:
            raise StorageError("store is not attached to a service")
        self._ensure_alive()
        started = time.perf_counter()
        with self._tracer.span("compaction", epoch=epoch):
            try:
                fire_fault("store.compact")
                path = self._write_snapshot(epoch, relations)
            except BaseException as exc:  # noqa: BLE001 - transient => postponed, else dead
                if is_transient(exc):
                    error = StorageError(
                        f"snapshot write failed; compaction postponed: {exc}"
                    )
                    error.__cause__ = exc
                    raise error
                if isinstance(exc, StorageError):
                    self._die(exc)
                self._die(StorageError(f"compaction failed: {exc}"))
            try:
                self.wal.reset(epoch)
            except BaseException as exc:  # noqa: BLE001 - a failed reset kills the store
                error = StorageError(f"WAL reset after compaction failed: {exc}")
                error.__cause__ = exc
                self._die(error)
        self._compaction_seconds.observe(time.perf_counter() - started)
        self._records_since_compact = 0
        self._durable_values = len(self.domain)
        self.stats.compactions += 1
        self._refresh_wal_stats(scan=True)
        return path

    def _write_snapshot(self, epoch: int, relations: Iterable[Relation]) -> Path:
        if self._program_text is None:
            raise StorageError("store has no program text to snapshot")
        intern = self.domain.intern
        payloads = []
        for relation in relations:
            count, packed = relation.packed_rows(intern)
            payloads.append((relation.name, relation.arity, count, packed))
        return write_snapshot(
            self.directory,
            epoch=epoch,
            program_text=self._program_text,
            values=self.domain.export_values(0),
            relations=payloads,
            fsync=self.config.fsync,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        self.wal.close()
        self._attached = False

    def __str__(self) -> str:
        return (
            f"DurableStore({self.directory}, {self.stats.records_appended} records, "
            f"{self.stats.compactions} compactions)"
        )


def _pack_rows(rows: Sequence[Row], arity: int, intern) -> Tuple[int, bytes]:
    """Pack caller rows (not a Relation) as sorted int-code rows."""
    return pack_rows(rows, intern)
