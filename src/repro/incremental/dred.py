"""DRed (delete-and-rederive) view maintenance for recursive programs.

Counting maintenance breaks on recursion: two tuples supporting each other
through a cycle keep positive counts after their last external derivation is
deleted.  DRed (Gupta–Mumick–Subrahmanian) stays exact by splitting deletion
into three phases:

1. **overestimate** — propagate the deleted base facts through every rule
   (one delta-first compiled join per affected occurrence, iterated through
   recursive strata), marking every derived tuple that has *some* derivation
   using a deleted tuple;
2. **remove** — discard the whole overestimate from the view;
3. **rederive** — for each removed tuple, check whether an alternative
   derivation survives in the pruned state (a bound-head compiled probe per
   candidate, plus the base relation when the predicate stores facts under
   its own name), and put the survivors back through the ordinary insertion
   delta round (:func:`repro.engine.seminaive.group_insert_closure`), which
   reinstates anything downstream of them.

Insertions don't need any of this: the fixpoint is monotone, so a single
seeded semi-naive delta round
(:func:`repro.engine.seminaive.propagate_insertions`) is exact.

The overestimate runs *before* the database mutates (it must see the old
state to find derivations through the dying tuples); removal and
rederivation run *after* (they must not resurrect anything through them).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from ..datalog.atoms import atoms_variables
from ..datalog.database import Database
from ..datalog.relation import Relation, Row
from ..datalog.rules import Program
from ..datalog.terms import Constant, Variable, is_variable
from ..engine.compile import PlanCache, RelationMap
from ..engine.instrumentation import EvaluationStats
from ..engine.seminaive import group_insert_closure, overlay_relations
from ..engine.strata import cached_evaluation_strata as _cached_strata
from ..engine.strata import group_is_recursive


def overestimate_deletions(
    program: Program,
    database: Database,
    derived: Dict[str, Relation],
    deltas: Mapping[str, Set[Row]],
    stats: EvaluationStats,
    cache: PlanCache,
) -> Dict[str, Set[Row]]:
    """Every derived tuple with a derivation through a deleted tuple.

    ``database``/``derived`` are the *pre-deletion* state; ``deltas`` the
    rows about to be removed.  Set semantics make this phase simple: any
    affected derivation uses at least one dying tuple, so overriding one
    occurrence at a time with the doomed delta — full old relations elsewhere
    — reaches the complete overestimate without subset enumeration.
    """
    stats.start_timer()
    relations = overlay_relations(database, derived)
    known = program.predicates()
    doomed: Dict[str, Set[Row]] = {p: set() for p in derived}
    external: Dict[str, Set[Row]] = {
        name: set(rows) for name, rows in deltas.items() if rows and name in known
    }
    for group in _cached_strata(program):
        group_set = set(group)
        frontier: Dict[str, Set[Row]] = {p: set() for p in group}
        for predicate in group:
            # base facts stored under the predicate's own name
            for row in external.get(predicate, ()):
                if row in derived[predicate] and row not in doomed[predicate]:
                    doomed[predicate].add(row)
                    frontier[predicate].add(row)
        rules = [rule for predicate in group for rule in program.rules_for(predicate)]
        changed = {name for name, rows in external.items() if rows and name not in group_set}
        for rule in rules:
            for index, atom in enumerate(rule.body):
                if atom.predicate not in changed:
                    continue
                plan = cache.get(rule, relations, first=index, stats=stats)
                overlay = Relation(
                    f"delta_{atom.predicate}", atom.arity, external[atom.predicate]
                )
                head = rule.head.predicate
                for row in plan.evaluate(relations, stats=stats, overrides={index: overlay}):
                    if row in derived[head] and row not in doomed[head]:
                        doomed[head].add(row)
                        frontier[head].add(row)
        if group_is_recursive(program, group):
            group_rules = [r for r in rules if any(p in group_set for p in r.body_predicates())]
            delta_plans = []
            for rule in group_rules:
                for index, atom in enumerate(rule.body):
                    if atom.predicate in group_set:
                        plan = cache.get(rule, relations, first=index, stats=stats)
                        delta_plans.append((atom.predicate, index, plan))
            while any(frontier[p] for p in group):
                stats.record_iteration()
                next_frontier: Dict[str, Set[Row]] = {p: set() for p in group}
                for delta_predicate, occurrence, plan in delta_plans:
                    rows = frontier[delta_predicate]
                    if not rows:
                        continue
                    overlay = Relation(
                        f"delta_{delta_predicate}", derived[delta_predicate].arity, rows
                    )
                    head = plan.rule.head.predicate
                    for row in plan.evaluate(relations, stats=stats, overrides={occurrence: overlay}):
                        if row in derived[head] and row not in doomed[head]:
                            doomed[head].add(row)
                            next_frontier[head].add(row)
                frontier = next_frontier
        for predicate in group:
            if doomed[predicate]:
                external[predicate] = doomed[predicate]
    stats.stop_timer()
    return {p: rows for p, rows in doomed.items() if rows}


def _derivable(
    program: Program,
    predicate: str,
    row: Row,
    relations: RelationMap,
    stats: EvaluationStats,
    cache: PlanCache,
) -> bool:
    """``True`` when some rule for ``predicate`` still derives ``row``.

    Compiles each rule with its head variables bound, so the probe starts
    from the candidate's constants instead of enumerating the rule's full
    join (the same selection pushdown the unfolded evaluator uses).
    """
    for rule in program.rules_for(predicate):
        head_vars: List[Variable] = list(dict.fromkeys(
            arg for arg in rule.head.args if is_variable(arg)
        ))
        if not set(head_vars) <= atoms_variables(rule.body):
            continue  # a head variable unreachable from the body never derives
        bindings: Dict[Variable, object] = {}
        consistent = True
        for position, arg in enumerate(rule.head.args):
            if isinstance(arg, Constant):
                if arg.value != row[position]:
                    consistent = False
                    break
            else:
                if arg in bindings and bindings[arg] != row[position]:
                    consistent = False
                    break
                bindings[arg] = row[position]
        if not consistent:
            continue
        plan = cache.get(rule, relations, bound=tuple(head_vars), stats=stats)
        if plan.join(relations, stats, bindings=bindings):
            return True
    return False


def apply_deletions(
    program: Program,
    database: Database,
    derived: Dict[str, Relation],
    doomed: Mapping[str, Set[Row]],
    stats: EvaluationStats,
    cache: PlanCache,
) -> Dict[str, Set[Row]]:
    """Remove the overestimate, then rederive the survivors (post-mutation).

    ``database`` is the post-deletion state.  Returns the rows that stayed
    deleted per predicate.  Only overestimated tuples can become newly
    derivable (deletion is antitone everywhere else), so the rederivation
    seeds feed the standard insertion closure and nothing outside ``doomed``
    is ever touched.
    """
    stats.start_timer()
    for predicate, rows in doomed.items():
        removed = derived[predicate].discard_all(rows)
        stats.record_deleted(removed)
    base = {p: database.relation(p) for p in derived if database.has_relation(p)}
    relations = overlay_relations(database, derived)
    external: Dict[str, Set[Row]] = {}
    rederived_total = 0
    for group in _cached_strata(program):
        seeds: Dict[str, Set[Row]] = {p: set() for p in group}
        for predicate in group:
            base_relation = base.get(predicate)
            for row in doomed.get(predicate, ()):
                if row in derived[predicate]:
                    continue
                if (base_relation is not None and row in base_relation) or _derivable(
                    program, predicate, row, relations, stats, cache
                ):
                    derived[predicate].add(row)
                    seeds[predicate].add(row)
        inserted = group_insert_closure(
            program, group, relations, derived, seeds, external, stats, cache
        )
        for predicate in group:
            if inserted[predicate]:
                external[predicate] = inserted[predicate]
                rederived_total += len(inserted[predicate])
    if rederived_total:
        stats.record_rederived(rederived_total)
    stats.stop_timer()
    return {
        p: {row for row in rows if row not in derived[p]}
        for p, rows in doomed.items()
        if any(row not in derived[p] for row in rows)
    }
