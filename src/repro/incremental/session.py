"""``repro.Session`` — the serving front door over a mutating database.

:func:`repro.answer` optimizes one query against one frozen database.  A
:class:`Session` is its counterpart for the serving workload the ROADMAP
targets: the program's IDB relations are materialized once at construction,
kept incrementally correct by the view registry as facts are inserted and
deleted, and queries against fresh views become plain indexed lookups —
no fixpoint, no rewrite chain, no per-query evaluation at all.

>>> from repro import Database, Session, parse_program
>>> program = parse_program('''
...     t(X, Y) :- a(X, Z), t(Z, Y).
...     t(X, Y) :- b(X, Y).
... ''')
>>> db = Database.from_dict({"a": [(1, 2), (2, 3)], "b": [(3, 4)]})
>>> session = Session(program, db)
>>> sorted(session.query("t(1, Y)?").answers)
[(1, 4)]
>>> session.insert("b", (2, 9))
1
>>> sorted(session.query("t(1, Y)?").answers)
[(1, 4), (1, 9)]
>>> session.delete("b", (3, 4))
1
>>> sorted(session.query("t(1, Y)?").answers)
[(1, 9)]
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Union

from ..datalog.database import Database
from ..datalog.errors import EvaluationError
from ..datalog.parser import parse_program
from ..datalog.relation import Row, Value
from ..datalog.rules import Program
from ..engine.instrumentation import EvaluationStats
from ..engine.query import QueryResult, answer, as_selection_query
from .registry import ViewRegistry
from .view import MaterializedView

RowsLike = Union[Sequence[Value], Iterable[Sequence[Value]]]


def as_rows(rows: RowsLike) -> list:
    """Accept one row (a tuple of scalars) or an iterable of rows.

    A bare string is one *value*, not an iterable of rows — iterating it
    character by character would silently insert garbage single-character
    tuples.  A flat tuple or list of scalars is one *row* (``[1, 2]`` and
    ``(1, 2)`` both mean the single pair), so multiple single-column rows
    must be spelled ``[(1,), (2,)]``.

    Mixing rows and scalars (``[(1, 2), 3]``) is ambiguous — is ``3`` a row
    or a stray value? — and raises :class:`ValueError` naming the offending
    element, instead of the bare ``TypeError`` that ``tuple(3)`` used to
    surface from deep inside the flusher.
    """
    if isinstance(rows, str):
        return [(rows,)]
    if isinstance(rows, (tuple, list)):
        if rows and all(not isinstance(value, (tuple, list)) for value in rows):
            return [tuple(rows)]
        return _rows_of(list(rows), scalars_are_rows=False)
    # other iterables (generators, sets): each element is one row; bare
    # scalar elements are single-column rows, as long as nothing is mixed
    return _rows_of(list(rows), scalars_are_rows=True)


def _rows_of(rows: list, *, scalars_are_rows: bool) -> list:
    """Each element as one row; mixing rows with scalars is an error."""
    has_row = any(isinstance(row, (tuple, list)) for row in rows)
    out = []
    for index, row in enumerate(rows):
        if isinstance(row, (tuple, list)):
            out.append(tuple(row))
        elif scalars_are_rows and not has_row:
            out.append((row,))
        else:
            raise ValueError(
                f"rows must all be tuples/lists, but element {index} is "
                f"{row!r}; pass a flat sequence of scalars for a single row, "
                f"or wrap each row (e.g. ({row!r},)) for multiple rows"
            )
    return out


class Session:
    """A database plus a maintained materialized view of one program.

    ``insert``/``delete`` go through the database's mutation hooks, so the
    view registry maintains every pinned relation in place; ``query`` routes
    selections on materialized predicates straight to indexed lookups and
    falls back to :func:`repro.answer` for anything else.

    Mutations and view-routed queries hold the registry's reentrant lock, so
    a Session may be shared between threads; for many concurrent readers use
    :class:`repro.service.DatalogService`, whose published snapshots let
    readers skip the lock entirely.
    """

    def __init__(
        self,
        program: Union[Program, str],
        database: "Database | None" = None,
        name: str = "default",
        max_unfold_depth: int = 8,
    ) -> None:
        self.program = parse_program(program) if isinstance(program, str) else program
        self.database = database if database is not None else Database()
        self.registry = ViewRegistry(self.database)
        self.view: MaterializedView = self.registry.materialize(
            self.program, name=name, max_unfold_depth=max_unfold_depth
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, name: str, rows: RowsLike) -> int:
        """Insert one row or many into relation ``name``; returns how many were new."""
        with self.registry.lock:
            # a no-op mutation fires no hooks, so clear last_stats up front lest
            # it keep reporting the previous operation's work
            self.registry.last_stats = EvaluationStats()
            return self.database.insert_facts(name, as_rows(rows))

    def delete(self, name: str, rows: RowsLike) -> int:
        """Delete one row or many from relation ``name``; returns how many were present."""
        with self.registry.lock:
            self.registry.last_stats = EvaluationStats()
            return self.database.remove_facts(name, as_rows(rows))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query, strategy: str = "view") -> QueryResult:
        """Answer a selection query, preferring the materialized view.

        With ``strategy="view"`` (the default), a query on a materialized
        predicate is a single indexed lookup against the maintained relation
        (stale views are refreshed first), a query on a stored EDB relation
        is a lookup against the database, and anything else goes through
        :func:`repro.answer`.  Any other ``strategy`` value bypasses the view
        and is handed to :func:`repro.answer` verbatim — useful for
        cross-checking the view against live evaluation.
        """
        if strategy != "view":
            # evaluation reads the live database, so it must exclude writers
            # just as the view paths below do
            with self.registry.lock:
                return answer(self.program, self.database, query, strategy=strategy)
        selection = as_selection_query(self.program, query)
        with self.registry.lock:
            view = self.registry.view_for(selection.predicate)
            if view is not None:
                if not view.fresh:
                    view.refresh(self.database)
                stats = EvaluationStats()
                stats.start_timer()
                relation = view.relation(selection.predicate)
                if relation.arity != selection.arity:
                    raise EvaluationError(
                        f"query {selection} has arity {selection.arity}, but the view "
                        f"materializes {selection.predicate}/{relation.arity}"
                    )
                rows = relation.lookup(selection.bindings_dict())
                stats.record_lookup(len(rows), restricted=bool(selection.bindings))
                stats.stop_timer()
                return QueryResult(
                    selection,
                    set(rows),
                    stats,
                    strategy=f"materialized-view ({view.strategy})",
                    provenance=view.provenance,
                )
            if self.database.has_relation(selection.predicate):
                stats = EvaluationStats()
                stats.start_timer()
                relation = self.database.relation(selection.predicate)
                rows = relation.lookup(selection.bindings_dict())
                stats.record_lookup(len(rows), restricted=bool(selection.bindings))
                stats.stop_timer()
                return QueryResult(selection, set(rows), stats, strategy="edb-lookup")
            return answer(self.program, self.database, query)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def facts(self, name: str) -> Set[Row]:
        """The decoded EDB rows currently stored under relation ``name``.

        The read counterpart of :meth:`insert`/:meth:`delete`: a copy of the
        stored tuple set in caller-value space (EDB relations are stored
        undecoded — interning only happens inside the engine — so no decode
        pass is needed).  Unknown relations return an empty set, mirroring
        how :meth:`delete` treats them as empty.
        """
        with self.registry.lock:
            if not self.database.has_relation(name):
                return set()
            return set(self.database.relation(name).rows())

    @property
    def maintenance_stats(self) -> EvaluationStats:
        """Cumulative maintenance work of the session's view."""
        return self.view.stats

    @property
    def last_stats(self) -> EvaluationStats:
        """Maintenance work of the most recent insert/delete."""
        return self.registry.last_stats

    def __str__(self) -> str:
        return f"Session({self.view!s} over {self.database!s})"
