"""The view registry: database mutation hooks fanned out to materialized views.

A :class:`ViewRegistry` attaches to one :class:`~repro.datalog.database.Database`
as a :class:`~repro.datalog.database.DatabaseListener` and owns any number of
:class:`~repro.incremental.view.MaterializedView` instances.  Every effective
fact-level mutation made through the database's fact APIs is routed to the
views whose *maintenance* program mentions the mutated relation; the two-phase
hook protocol lets each strategy read the state it needs (counting insertions
and the DRed overestimate run pre-mutation, everything else post-mutation).

Wholesale relation replacement (``Database.add_relation``) carries no delta,
so affected views are invalidated instead and rebuilt on their next use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..datalog.database import Database, DatabaseListener
from ..datalog.errors import SchemaError
from ..datalog.relation import Row
from ..datalog.rules import Program
from ..engine.instrumentation import EvaluationStats
from .view import MaterializedView


class ViewRegistry(DatabaseListener):
    """Materialized views over one database, kept fresh through its hooks."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.views: Dict[str, MaterializedView] = {}
        #: maintenance work of the most recent mutation, across all views
        self.last_stats = EvaluationStats()
        database.add_listener(self)

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def materialize(
        self,
        program: Program,
        name: str = "default",
        max_unfold_depth: int = 8,
    ) -> MaterializedView:
        """Pin ``program``'s IDB relations as a maintained view called ``name``."""
        if name in self.views:
            raise SchemaError(f"a view named {name} is already registered")
        view = MaterializedView(name, program, self.database, max_unfold_depth)
        self.views[name] = view
        return view

    def drop(self, name: str) -> None:
        """Deregister a view; unknown names raise :class:`SchemaError`."""
        if name not in self.views:
            raise SchemaError(f"no view named {name} is registered")
        del self.views[name]

    def view(self, name: str) -> MaterializedView:
        """The view called ``name``; raises :class:`SchemaError` when unknown."""
        if name not in self.views:
            raise SchemaError(f"no view named {name} is registered")
        return self.views[name]

    def view_for(self, predicate: str) -> Optional[MaterializedView]:
        """The first registered view materializing ``predicate``, if any."""
        for view in self.views.values():
            if predicate in view.predicates:
                return view
        return None

    def detach(self) -> None:
        """Stop observing the database (views stop being maintained)."""
        self.database.remove_listener(self)

    # ------------------------------------------------------------------
    # DatabaseListener protocol
    # ------------------------------------------------------------------
    def _affected(self, name: str) -> List[MaterializedView]:
        return [view for view in self.views.values() if view.relevant_to(name)]

    def before_insert(self, database: Database, name: str, rows: Tuple[Row, ...]) -> None:
        self.last_stats = EvaluationStats()
        for view in self._affected(name):
            self.last_stats.merge(view.before_insert(database, name, rows))

    def after_insert(self, database: Database, name: str, rows: Tuple[Row, ...]) -> None:
        for view in self._affected(name):
            self.last_stats.merge(view.after_insert(database, name, rows))

    def before_delete(self, database: Database, name: str, rows: Tuple[Row, ...]) -> None:
        self.last_stats = EvaluationStats()
        for view in self._affected(name):
            self.last_stats.merge(view.before_delete(database, name, rows))

    def after_delete(self, database: Database, name: str, rows: Tuple[Row, ...]) -> None:
        for view in self._affected(name):
            self.last_stats.merge(view.after_delete(database, name, rows))

    def on_relation_replaced(self, database: Database, name: str) -> None:
        for view in self._affected(name):
            view.invalidate()
